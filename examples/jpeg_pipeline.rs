//! The JPEG encoder case study: compress a synthetic image at several
//! quality settings and report size and fidelity — the datapath whose
//! DSP appetite motivates Table 1.
//!
//! ```text
//! cargo run --release --example jpeg_pipeline
//! ```

use approx_multipliers::apps::jpeg::{decode_gray, encode_gray};
use approx_multipliers::apps::reed_solomon::RsEncoder;
use approx_multipliers::susan::synthetic_test_image;

fn psnr(a: &[u8], b: &[u8]) -> f64 {
    let sse: u64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    if sse == 0 {
        return f64::INFINITY;
    }
    10.0 * (255.0f64 * 255.0 * a.len() as f64 / sse as f64).log10()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img = synthetic_test_image(160, 120, 3);
    let pixels = img.pixels().to_vec();
    println!(
        "encoding a {}x{} grayscale image ({} bytes raw)\n",
        img.width(),
        img.height(),
        pixels.len()
    );
    println!(
        "{:>7} {:>12} {:>8} {:>10}",
        "quality", "bytes", "ratio", "PSNR [dB]"
    );
    for quality in [10u8, 25, 50, 75, 90, 95] {
        let enc = encode_gray(img.width(), img.height(), &pixels, quality)?;
        let dec = decode_gray(&enc)?;
        println!(
            "{quality:>7} {:>12} {:>7.1}x {:>10.2}",
            enc.bytes.len(),
            pixels.len() as f64 / enc.bytes.len() as f64,
            psnr(&pixels, &dec)
        );
    }

    // And the other Table 1 application: protect the q75 bitstream with
    // Reed-Solomon coding, block by block.
    let enc = encode_gray(img.width(), img.height(), &pixels, 75)?;
    let rs = RsEncoder::rs_255_239();
    let blocks = enc.bytes.chunks(239).count();
    let mut protected = 0usize;
    for chunk in enc.bytes.chunks(239) {
        let mut msg = chunk.to_vec();
        msg.resize(239, 0);
        let cw = rs.encode(&msg);
        assert!(rs.syndromes_zero(&cw));
        protected += cw.len();
    }
    println!(
        "\nRS(255,239) protection: {} JPEG bytes -> {} coded bytes in {} blocks",
        enc.bytes.len(),
        protected,
        blocks
    );
    Ok(())
}
