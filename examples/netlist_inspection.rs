//! Gate-level inspection of the proposed 4×4 multiplier: the published
//! Table 3 INIT values, the re-derivation proof, bit-accurate
//! simulation, static timing, and the toggle-energy model.
//!
//! ```text
//! cargo run --example netlist_inspection
//! ```

use approx_multipliers::core::structural::{approx_4x4_netlist, verify_table3, TABLE3};
use approx_multipliers::fabric::area::AreaReport;
use approx_multipliers::fabric::power::{measure, uniform_stimulus, EnergyModel};
use approx_multipliers::fabric::timing::{analyze, DelayModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 3 of the paper, re-derived from the logic equations:\n");
    println!(
        "{:<6} {:>18} {:>10} {:>8}",
        "LUT", "INIT", "reachable", "match"
    );
    for check in verify_table3() {
        println!(
            "{:<6} {:>18} {:>10} {:>8}",
            check.name,
            format!("{:016X}", check.published.raw()),
            check.reachable,
            if check.matches { "yes" } else { "NO" }
        );
    }
    println!("\npin assignments (printed I5..I0, as in the paper):");
    for row in &TABLE3 {
        println!("  {:<6} {:?}", row.name, row.pins);
    }

    let nl = approx_4x4_netlist();
    println!("\nnetlist `{}`: {}", nl.name(), AreaReport::of(&nl));
    println!("{}", analyze(&nl, &DelayModel::virtex7()));

    // Simulate a few products straight off the gates.
    for (a, b) in [(13u64, 13u64), (15, 15), (7, 6), (6, 7)] {
        let p = nl.eval(&[a, b])?[0];
        let marker = if p == a * b { "" } else { "  <- approximation" };
        println!("  {a:>2} x {b:>2} = {p:>3} (exact {:>3}){marker}", a * b);
    }

    // Dynamic-energy proxy under uniform random stimulus.
    let stim = uniform_stimulus(&nl, 5000, 7);
    let e = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim)?;
    println!(
        "\nenergy proxy: {:.3} units/op over {} transitions, EDP {:.3}",
        e.energy_per_op, e.transitions, e.edp
    );
    Ok(())
}
