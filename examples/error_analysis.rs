//! Deep error analysis of one design: full statistics, error PMF,
//! per-bit profile, and behavior under an application-shaped operand
//! distribution — the machinery behind Table 5 and Fig. 8.
//!
//! ```text
//! cargo run --release --example error_analysis [Ca|Cc|K|W]
//! ```

use approx_multipliers::baselines::{Kulkarni, RehmanW};
use approx_multipliers::core::behavioral::{Ca, Cc};
use approx_multipliers::core::Multiplier;
use approx_multipliers::metrics::{bit_accuracy, ErrorPmf, ErrorStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "Ca".to_string());
    let m: Box<dyn Multiplier> = match which.as_str() {
        "Ca" => Box::new(Ca::new(8)?),
        "Cc" => Box::new(Cc::new(8)?),
        "K" => Box::new(Kulkarni::new(8)?),
        "W" => Box::new(RehmanW::new(8)?),
        other => return Err(format!("unknown design `{other}` (use Ca|Cc|K|W)").into()),
    };

    println!("{}", ErrorStats::exhaustive(&m));

    let pmf = ErrorPmf::exhaustive(&m);
    println!("\nerror PMF ({}):", pmf);
    for (e, count) in pmf.iter().take(20) {
        let bar = "#".repeat((count as f64).log2().max(1.0) as usize);
        println!("  e = {e:>6}: {count:>6}  {bar}");
    }
    if pmf.distinct_errors() > 20 {
        println!(
            "  ... {} more distinct error values",
            pmf.distinct_errors() - 20
        );
    }

    println!("\nper-bit error probability:");
    for (bit, p) in bit_accuracy(&m).iter().enumerate() {
        let bar = "#".repeat((p * 120.0) as usize);
        println!("  P{bit:<2} {p:.4}  {bar}");
    }

    // Application-shaped operands: small x small products dominate in
    // many DSP kernels; compare against the uniform picture.
    let narrow = (0..64u64).flat_map(|a| (0..64u64).map(move |b| (a, b)));
    let stats = ErrorStats::over_pairs(&m, narrow);
    println!(
        "\nnarrow-band operands (both < 64): ARE {:.6} vs uniform {:.6}",
        stats.avg_relative_error,
        ErrorStats::exhaustive(&m).avg_relative_error
    );
    Ok(())
}
