//! Quickstart: build the paper's approximate multipliers, multiply,
//! and characterize their error and hardware cost.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use approx_multipliers::core::behavioral::{Approx4x4, Ca, Cc};
use approx_multipliers::core::structural::ca_netlist;
use approx_multipliers::core::{Multiplier, Swapped};
use approx_multipliers::fabric::area::AreaReport;
use approx_multipliers::fabric::timing::{analyze, DelayModel};
use approx_multipliers::metrics::ErrorStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The elementary block: exact on 250 of 256 input pairs.
    let elem = Approx4x4::new();
    println!(
        "proposed 4x4: 13 * 13 = {} (exact: 169)",
        elem.multiply(13, 13)
    );
    println!("error cases:");
    for c in Approx4x4::error_cases() {
        println!(
            "  {:>2} x {:>2} -> {:>3} (exact {:>3}, off by {})",
            c.multiplier, c.multiplicand, c.computed, c.actual, c.difference
        );
    }

    // Recursive designs at any power-of-two width.
    let ca = Ca::new(8)?;
    let cc = Cc::new(8)?;
    println!(
        "\n{}: 250 * 199 = {} (exact 49750)",
        ca.name(),
        ca.multiply(250, 199)
    );
    println!(
        "{}: 250 * 199 = {} (exact 49750)",
        cc.name(),
        cc.multiply(250, 199)
    );

    // Exhaustive error characterization (Table 5).
    for m in [&ca as &dyn Multiplier, &cc] {
        println!("{}", ErrorStats::exhaustive(&m));
    }

    // The asymmetry knob: swap operands when the data favors it.
    let cas = Swapped::new(ca.clone());
    println!(
        "asymmetry: Ca(7,6) = {} but Cas(7,6) = {}",
        ca.multiply(7, 6),
        cas.multiply(7, 6)
    );

    // The same architecture as a gate-level netlist with area/timing.
    let netlist = ca_netlist(8)?;
    let area = AreaReport::of(&netlist);
    let timing = analyze(&netlist, &DelayModel::virtex7());
    println!("\nstructural Ca 8x8: {area}, {timing}");
    Ok(())
}
