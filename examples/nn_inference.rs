//! Quantized int8 neural-network inference on approximate multipliers.
//!
//! Routes every multiply of a small trained classifier through a
//! pluggable 8×8 multiplier (via a precomputed product table), compares
//! top-1 accuracy across the exact reference and the paper's designs,
//! then asks the DSE bridge for the cheapest recursive configuration
//! that keeps the network at ≥95% of baseline accuracy.
//!
//! ```text
//! cargo run --release --example nn_inference
//! ```

use approx_multipliers::core::behavioral::{Ca, Cc};
use approx_multipliers::core::{Exact, Multiplier};
use approx_multipliers::nn::{
    accuracy_search, evaluate, quick_candidates, reference_model, test_set, ProductTable,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = reference_model();
    let test = test_set();
    println!(
        "reference classifier: {} MACs/inference, {} test samples",
        model.macs_per_inference(),
        test.len()
    );

    // Accuracy with every MAC routed through a given multiplier.
    let roster: Vec<Box<dyn Multiplier>> = vec![
        Box::new(Exact::new(8, 8)),
        Box::new(Ca::new(8)?),
        Box::new(Cc::new(8)?),
    ];
    for mult in &roster {
        let table = ProductTable::new(mult.as_ref())?;
        let eval = evaluate(model, &table, &test, 2)?;
        println!(
            "{:<12} top-1 accuracy {:6.2}%  ({}/{})",
            mult.name(),
            100.0 * eval.accuracy(),
            eval.correct,
            eval.total
        );
    }

    // Cheapest recursive 8x8 configuration holding 95% of baseline
    // accuracy (homogeneous candidate set; pass `None` for all 1250).
    let search = accuracy_search(model, &test, 0.95, 2, Some(quick_candidates()))?;
    println!(
        "baseline {}: {} LUTs at {:.2}%",
        search.baseline.key,
        search.baseline.luts,
        100.0 * search.baseline.accuracy
    );
    if let Some(best) = &search.best {
        println!(
            "cheapest within floor: {} at {} LUTs, {:.2}% accuracy",
            best.key,
            best.luts,
            100.0 * best.accuracy
        );
    }
    Ok(())
}
