//! The SUSAN image-smoothing accelerator with pluggable multipliers —
//! the paper's application case study (Table 6).
//!
//! Writes the input and two smoothed outputs as PGM files into the
//! current directory so the visual difference (Fig. 11) can be
//! inspected with any image viewer.
//!
//! ```text
//! cargo run --example image_smoothing
//! ```

use std::fs;

use approx_multipliers::baselines::{Kulkarni, RehmanW};
use approx_multipliers::core::behavioral::{Ca, Cc};
use approx_multipliers::core::{Exact, Multiplier, Swapped};
use approx_multipliers::susan::{susan_smooth, synthetic_test_image, SusanParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img = synthetic_test_image(128, 128, 11);
    let params = SusanParams::default();
    println!(
        "smoothing a {}x{} synthetic image (t = {}, sigma = {}, {} mask taps)",
        img.width(),
        img.height(),
        params.brightness_threshold,
        params.sigma,
        params.spatial_mask().len()
    );

    let golden = susan_smooth(&img, &params, &Exact::new(8, 8));
    fs::write("susan_input.pgm", img.to_pgm())?;
    fs::write("susan_exact.pgm", golden.to_pgm())?;

    let ca = Ca::new(8)?;
    let cc = Cc::new(8)?;
    let multipliers: Vec<Box<dyn Multiplier>> = vec![
        Box::new(ca.clone()),
        Box::new(cc.clone()),
        Box::new(RehmanW::new(8)?),
        Box::new(Kulkarni::new(8)?),
        Box::new(Swapped::new(ca)),
        Box::new(Swapped::new(cc)),
    ];
    println!("\n{:<10} {:>10}", "multiplier", "PSNR [dB]");
    for m in &multipliers {
        let out = susan_smooth(&img, &params, m);
        println!("{:<10} {:>10.3}", m.name(), golden.psnr(&out));
        if m.name() == "Ca 8x8" {
            fs::write("susan_ca.pgm", out.to_pgm())?;
        }
    }
    println!("\nwrote susan_input.pgm, susan_exact.pgm, susan_ca.pgm");
    Ok(())
}
