//! Design-space exploration with the `axmul-dse` engine.
//!
//! Sweeps all 1250 heterogeneous 8×8 recursive configurations
//! (per-quadrant kernel choice × summation scheme) on a sharded worker
//! pool with a memoized characterization cache, prints both Pareto
//! fronts and the verdict on the paper's named approx-Ca / approx-Cc
//! points, then runs a seeded hill-climb through the 16×16 space where
//! exhaustive enumeration is intractable.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use approx_multipliers::dse::{run, text_report, DseOptions, PruneOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Exhaustive 8x8: every per-quadrant choice of {exact, approx-4x4,
    // truncated-k} under both Ca and Cc summation.
    let opts = DseOptions::exhaustive_8x8();
    let result = run(&opts)?;
    print!("{}", text_report(&result));

    // 16x16 is doubly exponential (each quadrant is itself an 8x8
    // configuration), so explore it with a multi-restart hill-climb.
    // Sub-block characterizations are shared through the cache, so the
    // climb mostly re-combines already-characterized 8x8 blocks. The
    // static error bounds from `axmul-absint` screen each mutant first:
    // anything provably over the worst-case-error budget (or provably
    // dominated on the LUT/error plane) is skipped without simulation.
    let opts16 = DseOptions {
        bits: 16,
        strategy: Strategy::HillClimb {
            budget: 40,
            restarts: 4,
            seed: 0xDAC18,
        },
        prune: Some(PruneOptions {
            max_wce: Some(1 << 20),
            dominance: true,
        }),
        ..DseOptions::exhaustive_8x8()
    };
    let result16 = run(&opts16)?;
    println!();
    print!("{}", text_report(&result16));
    Ok(())
}
