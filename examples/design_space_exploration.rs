//! Design-space exploration: sweep every 8×8 multiplier in the library
//! (proposed, baselines, and the EvoApprox-style cloud), characterize
//! accuracy against hardware cost, and print the Pareto front — the
//! workflow behind Figs. 9 and 10.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use approx_multipliers::baselines::evo::library;
use approx_multipliers::baselines::{
    kulkarni_netlist, rehman_netlist, IpOpt, Kulkarni, RehmanW, VivadoIp,
};
use approx_multipliers::core::behavioral::{Ca, Cc};
use approx_multipliers::core::structural::{ca_netlist, cc_netlist};
use approx_multipliers::core::Multiplier;
use approx_multipliers::fabric::timing::{analyze, DelayModel};
use approx_multipliers::fabric::Netlist;
use approx_multipliers::metrics::{pareto_front, DesignPoint, ErrorStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let delay = DelayModel::virtex7();
    let mut points = Vec::new();
    let mut latencies = Vec::new();

    let mut add = |name: &str, are: f64, nl: &Netlist| {
        points.push(DesignPoint::new(name, are, nl.lut_count() as f64));
        latencies.push(analyze(nl, &delay).critical_path_ns);
    };

    let ca = Ca::new(8)?;
    add("Ca 8x8", ErrorStats::exhaustive(&ca).avg_relative_error, &ca_netlist(8)?);
    let cc = Cc::new(8)?;
    add("Cc 8x8", ErrorStats::exhaustive(&cc).avg_relative_error, &cc_netlist(8)?);
    let w = RehmanW::new(8)?;
    add("W 8x8", ErrorStats::exhaustive(&w).avg_relative_error, &rehman_netlist(8)?);
    let k = Kulkarni::new(8)?;
    add("K 8x8", ErrorStats::exhaustive(&k).avg_relative_error, &kulkarni_netlist(8)?);
    for opt in [IpOpt::Area, IpOpt::Speed] {
        let ip = VivadoIp::new(8, opt);
        add(ip.name(), 0.0, &ip.netlist());
    }
    for design in library() {
        let are = ErrorStats::exhaustive(&design).avg_relative_error;
        add(design.name(), are, &design.netlist());
    }

    let front = pareto_front(&points);
    println!(
        "{:<22} {:>12} {:>6} {:>8}  pareto",
        "design", "avg rel err", "LUTs", "ns"
    );
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| points[i].cost.partial_cmp(&points[j].cost).expect("finite"));
    for i in order {
        println!(
            "{:<22} {:>12.6} {:>6} {:>8.3}  {}",
            points[i].name,
            points[i].error,
            points[i].cost as usize,
            latencies[i],
            if front[i] { "*" } else { "" }
        );
    }
    let survivors = front.iter().filter(|&&f| f).count();
    println!("\n{survivors} Pareto-optimal designs of {}", points.len());
    Ok(())
}
