//! Cross-crate integration tests: pipelines that exercise several
//! workspace crates together through the facade.

use approx_multipliers::apps::jpeg::{decode_gray, encode_gray};
use approx_multipliers::apps::reed_solomon::RsEncoder;
use approx_multipliers::core::behavioral::{Ca, Cc, Summation};
use approx_multipliers::core::structural::compose_netlist;
use approx_multipliers::core::{Exact, Multiplier};
use approx_multipliers::fabric::area::AreaReport;
use approx_multipliers::fabric::power::{measure, uniform_stimulus, EnergyModel};
use approx_multipliers::fabric::sim::WideSim;
use approx_multipliers::fabric::timing::{analyze, DelayModel};
use approx_multipliers::metrics::{ErrorPmf, ErrorStats};
use approx_multipliers::susan::{
    operand_histogram, susan_smooth, synthetic_test_image, Image, Recording, SusanParams,
};

/// Image → SUSAN (traced) → operand histogram → error stats over the
/// real application trace: the full Fig. 12 / §5 analysis loop.
#[test]
fn trace_driven_error_analysis() {
    let img = synthetic_test_image(48, 48, 5);
    let rec = Recording::new(Exact::new(8, 8));
    let _ = susan_smooth(&img, &SusanParams::default(), &rec);
    let trace = rec.into_trace();
    assert!(!trace.is_empty());

    // The histogram covers exactly the traced operations.
    let hist = operand_histogram(&trace, 16);
    let total: u64 = hist.iter().flatten().sum();
    assert_eq!(total as usize, trace.len());

    // Error statistics over the application trace differ from uniform:
    // the trace is weight-biased, which is the basis for swapping.
    let ca = Ca::new(8).expect("valid");
    let on_trace = ErrorStats::over_pairs(&ca, trace.iter().copied());
    let uniform = ErrorStats::exhaustive(&ca);
    assert!(on_trace.samples > 0);
    assert!(
        (on_trace.error_probability - uniform.error_probability).abs() > 1e-4,
        "application trace should not look uniform"
    );
}

/// Netlist-level pipeline: compose a multiplier, simulate it wide,
/// time it, and measure energy — every fabric service on one design.
#[test]
fn fabric_services_compose() {
    let kernel = approx_multipliers::core::structural::approx_4x4_netlist();
    let nl = compose_netlist(&kernel, 8, Summation::Accurate).expect("valid");
    let area = AreaReport::of(&nl);
    assert_eq!(area.luts, 57);

    let mut sim = WideSim::new(&nl);
    let a: Vec<u64> = (0..64).collect();
    let b: Vec<u64> = (0..64).map(|i| 255 - i).collect();
    let out = sim.eval(&[&a, &b]).expect("simulates");
    let ca = Ca::new(8).expect("valid");
    for i in 0..64 {
        assert_eq!(
            out[0][i as usize],
            ca.multiply(a[i as usize], b[i as usize])
        );
    }

    let t = analyze(&nl, &DelayModel::virtex7());
    assert!(t.critical_path_ns > 0.0);
    let stim = uniform_stimulus(&nl, 500, 1);
    let e = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).expect("measures");
    assert!(e.edp > 0.0);
}

/// JPEG + RS together: compress an image, protect the bitstream,
/// verify, corrupt, detect — the two Table 1 applications chained.
#[test]
fn jpeg_then_reed_solomon() {
    let img = synthetic_test_image(64, 48, 9);
    let enc = encode_gray(img.width(), img.height(), img.pixels(), 75).expect("encodes");
    let dec = decode_gray(&enc).expect("decodes");
    let decoded = Image::from_fn(img.width(), img.height(), |x, y| dec[y * img.width() + x]);
    assert!(img.psnr(&decoded) > 28.0, "JPEG q75 fidelity");

    let rs = RsEncoder::rs_255_239();
    for chunk in enc.bytes.chunks(239) {
        let mut msg = chunk.to_vec();
        msg.resize(239, 0);
        let mut cw = rs.encode(&msg);
        assert!(rs.syndromes_zero(&cw));
        cw[17] ^= 0x40;
        assert!(!rs.syndromes_zero(&cw), "corruption detected");
    }
}

/// The metrics crate agrees with itself: PMF mass, stats, and the
/// multiplier's own error method are mutually consistent on Cc.
#[test]
fn metrics_are_self_consistent() {
    let cc = Cc::new(8).expect("valid");
    let stats = ErrorStats::exhaustive(&cc);
    let pmf = ErrorPmf::exhaustive(&cc);
    let pmf_occurrences: u64 = pmf.iter().map(|(_, c)| c).sum();
    assert_eq!(pmf_occurrences, stats.error_occurrences);
    let pmf_mass: f64 = pmf
        .iter()
        .map(|(e, c)| e.unsigned_abs() as f64 * c as f64)
        .sum();
    assert!((pmf_mass / 65536.0 - stats.avg_error).abs() < 1e-9);
    // Spot-check against the trait's own error accessor.
    let manual: i64 = (0..256u64)
        .flat_map(|a| (0..256u64).map(move |b| (a, b)))
        .map(|(a, b)| cc.error(a, b).abs())
        .sum();
    assert!((manual as f64 / 65536.0 - stats.avg_error).abs() < 1e-9);
}

/// Smoothing with a netlist-backed multiplier: wrap the structural Ca
/// in the `Multiplier` trait and push an image through it — proving
/// the gate-level model is usable as an application component.
#[test]
fn application_on_gate_level_multiplier() {
    struct NetlistMul(approx_multipliers::fabric::Netlist);
    impl Multiplier for NetlistMul {
        fn a_bits(&self) -> u32 {
            8
        }
        fn b_bits(&self) -> u32 {
            8
        }
        fn multiply(&self, a: u64, b: u64) -> u64 {
            self.0.eval(&[a & 0xFF, b & 0xFF]).expect("simulates")[0]
        }
        fn name(&self) -> &str {
            "Ca 8x8 (netlist)"
        }
    }
    let gate_level =
        NetlistMul(approx_multipliers::core::structural::ca_netlist(8).expect("valid"));
    let img = synthetic_test_image(24, 24, 3);
    let params = SusanParams::default();
    let behavioral = susan_smooth(&img, &params, &Ca::new(8).expect("valid"));
    let structural = susan_smooth(&img, &params, &gate_level);
    assert_eq!(behavioral, structural, "bit-identical through the gates");
}
