//! Satellite property test: table-lookup products are bit-identical to
//! direct `multiply()` for **every 8×8 kernel in the roster** — the
//! proposed designs, every baseline family, the EvoApprox-style
//! library, and composed DSE configurations — over the *entire* 256×256
//! operand space (exhaustive subsumes sampling).

use approx_multipliers::baselines::{evo, Drum, IpOpt, Kulkarni, RehmanW, Truncated, VivadoIp};
use approx_multipliers::core::behavioral::{Ca, Cc, Summation};
use approx_multipliers::core::{Exact, Multiplier, Swapped, TableMultiplier};
use approx_multipliers::dse::{CharCache, Config, Leaf};
use approx_multipliers::fabric::cost::Characterizer;

fn roster() -> Vec<Box<dyn Multiplier>> {
    let mut r: Vec<Box<dyn Multiplier>> = vec![
        Box::new(Exact::new(8, 8)),
        Box::new(Ca::new(8).unwrap()),
        Box::new(Cc::new(8).unwrap()),
        Box::new(Swapped::new(Ca::new(8).unwrap())),
        Box::new(Swapped::new(Cc::new(8).unwrap())),
        Box::new(Kulkarni::new(8).unwrap()),
        Box::new(RehmanW::new(8).unwrap()),
        Box::new(Truncated::new(8, 1)),
        Box::new(Truncated::new(8, 2)),
        Box::new(Truncated::new(8, 3)),
        Box::new(Drum::new(8, 4)),
        Box::new(VivadoIp::new(8, IpOpt::Area)),
        Box::new(VivadoIp::new(8, IpOpt::Speed)),
    ];
    for design in evo::library() {
        r.push(Box::new(design));
    }
    r
}

fn assert_bit_identical(m: &dyn Multiplier) {
    let table = TableMultiplier::new(m);
    assert_eq!(table.a_bits(), 8);
    assert_eq!(table.b_bits(), 8);
    assert_eq!(table.name(), m.name(), "wrapper must be a drop-in");
    for a in 0..=255u64 {
        for b in 0..=255u64 {
            assert_eq!(
                table.multiply(a, b),
                m.multiply(a, b),
                "{}: {a}*{b}",
                m.name()
            );
        }
    }
}

#[test]
fn table_lookup_matches_direct_multiply_across_the_roster() {
    let designs = roster();
    assert!(designs.len() > 40, "roster covers the evo library too");
    for m in &designs {
        assert_bit_identical(m.as_ref());
    }
}

#[test]
fn table_lookup_matches_composed_dse_configurations() {
    let cache = CharCache::new(Characterizer::virtex7());
    for summation in [Summation::Accurate, Summation::CarryFree] {
        for leaf in Leaf::ALL {
            let cfg = Config::uniform(Config::Leaf(leaf), summation);
            let composed = cache.characterize(&cfg).unwrap().multiplier();
            assert_bit_identical(&composed);
        }
    }
}
