//! Satellite bit-identity test for the packed wide-lane energy path:
//! for every structural netlist in the roster — the paper's designs,
//! the baseline families, adders — and a stride of the 1 250
//! enumerated recursive 8×8 configurations, the packed integer-toggle
//! measurement ([`measure_packed`]) produces an [`EnergyReport`] whose
//! `energy_per_op` and `edp` are **bit-identical** to the scalar
//! interpretive reference ([`measure_reference`]) for every worker
//! count, and the production `characterize` path agrees with both.

use approx_multipliers::adders::{carry_free_adder_netlist, exact_adder_netlist, loa_netlist};
use approx_multipliers::baselines::{
    array_mult_netlist, csa_tree_mult_netlist, kulkarni_netlist, pp_truncated_netlist,
    rehman_netlist, IpOpt, VivadoIp,
};
use approx_multipliers::core::structural::{ca_netlist, cc_netlist};
use approx_multipliers::dse::{CharCache, Config};
use approx_multipliers::fabric::compile::CompiledNetlist;
use approx_multipliers::fabric::cost::Characterizer;
use approx_multipliers::fabric::power::{
    measure_packed, measure_reference, measure_with, uniform_stimulus, PackedStimulus,
};
use approx_multipliers::fabric::timing::analyze;
use approx_multipliers::fabric::Netlist;

fn roster() -> Vec<Netlist> {
    vec![
        ca_netlist(4).unwrap(),
        ca_netlist(8).unwrap(),
        cc_netlist(4).unwrap(),
        cc_netlist(8).unwrap(),
        kulkarni_netlist(8).unwrap(),
        rehman_netlist(8).unwrap(),
        pp_truncated_netlist(8, 8, 3),
        array_mult_netlist(8, 8),
        csa_tree_mult_netlist(8, 8),
        VivadoIp::new(8, IpOpt::Area).netlist(),
        VivadoIp::new(8, IpOpt::Speed).netlist(),
        exact_adder_netlist(8),
        loa_netlist(8, 3),
        carry_free_adder_netlist(8),
    ]
}

/// Steps that straddle the 64-step lane word and the 256-step pass.
const LENGTHS: &[usize] = &[1, 65, 300];

fn assert_bit_identical(netlist: &Netlist) {
    let ch = Characterizer::virtex7();
    let prog = CompiledNetlist::compile(netlist);
    let critical_path_ns = analyze(netlist, &ch.delay).critical_path_ns;
    for &steps in LENGTHS {
        let stimulus = uniform_stimulus(netlist, steps, ch.stimulus_seed);
        let reference = measure_reference(netlist, &ch.energy, &ch.delay, &stimulus)
            .expect("reference measures");
        let compat = measure_with(netlist, &prog, &ch.energy, &ch.delay, &stimulus)
            .expect("compat wrapper measures");
        assert_eq!(
            compat.energy_per_op.to_bits(),
            reference.energy_per_op.to_bits(),
            "{}: measure_with diverged at {} steps",
            netlist.name(),
            steps
        );
        let packed = PackedStimulus::uniform(netlist, steps, ch.stimulus_seed);
        for workers in [1usize, 2, 3] {
            let wide = measure_packed(
                netlist,
                &prog,
                &ch.energy,
                critical_path_ns,
                &packed,
                workers,
            )
            .expect("packed measure");
            assert_eq!(
                wide.energy_per_op.to_bits(),
                reference.energy_per_op.to_bits(),
                "{}: energy diverged at {} steps, {} workers",
                netlist.name(),
                steps,
                workers
            );
            assert_eq!(
                wide.edp.to_bits(),
                reference.edp.to_bits(),
                "{}: EDP diverged at {} steps, {} workers",
                netlist.name(),
                steps,
                workers
            );
        }
    }
}

#[test]
fn roster_energy_reports_are_bit_identical_to_reference() {
    for nl in roster() {
        assert_bit_identical(&nl);
    }
}

/// The production characterization (1024-step stimulus, hoisted STA)
/// reports the same energy/EDP bits as the scalar reference on the
/// full stimulus, for a stride of the DSE's enumerated quad netlists.
#[test]
fn dse_configs_characterize_bit_identical_to_reference() {
    let cache = CharCache::new(Characterizer::virtex7());
    let ch = Characterizer::virtex7();
    let configs = Config::enumerate(8);
    for cfg in configs.iter().step_by(97) {
        let block = cache.characterize(cfg).expect("config characterizes");
        let nl = &*block.netlist;
        let stimulus = uniform_stimulus(nl, ch.stimulus_len, ch.stimulus_seed);
        let reference =
            measure_reference(nl, &ch.energy, &ch.delay, &stimulus).expect("reference measures");
        assert_eq!(
            block.cost.energy_per_op.to_bits(),
            reference.energy_per_op.to_bits(),
            "{}: characterize energy diverged from scalar reference",
            cfg.key()
        );
        assert_eq!(
            block.cost.edp.to_bits(),
            reference.edp.to_bits(),
            "{}: characterize EDP diverged from scalar reference",
            cfg.key()
        );
    }
}
