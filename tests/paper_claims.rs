//! End-to-end assertions of the paper's headline claims, spanning all
//! workspace crates through the facade.

use approx_multipliers::baselines::{IpOpt, Kulkarni, RehmanW, Truncated, VivadoIp};
use approx_multipliers::core::behavioral::{Approx4x4, Ca, Cc};
use approx_multipliers::core::structural::{approx_4x4_netlist, ca_netlist, cc_netlist};
use approx_multipliers::core::{Exact, Multiplier, Swapped};
use approx_multipliers::fabric::sim::for_each_operand_pair;
use approx_multipliers::fabric::timing::{analyze, DelayModel};
use approx_multipliers::metrics::ErrorStats;
use approx_multipliers::susan::{susan_smooth, synthetic_test_image, SusanParams};

/// Abstract §1: "up to 30%, 53%, and 67% gains in terms of area,
/// latency, and energy ... below 1% average relative error".
#[test]
fn abstract_headline_gains() {
    let delay = DelayModel::virtex7();
    // Area: Ca 8x8 (57 LUTs) vs the accurate IP.
    let ip = VivadoIp::new(8, IpOpt::Speed).netlist();
    let area_gain = 1.0 - 57.0 / ip.lut_count() as f64;
    assert!(
        area_gain > 0.25,
        "area gain {area_gain:.2} should approach the paper's 30%"
    );
    // Latency: Cc 16x16 vs the area-optimized IP (the slow default).
    let ip16 = VivadoIp::new(16, IpOpt::Area).netlist();
    let cc16 = cc_netlist(16).expect("valid");
    let lat_gain =
        1.0 - analyze(&cc16, &delay).critical_path_ns / analyze(&ip16, &delay).critical_path_ns;
    assert!(
        lat_gain > 0.5,
        "latency gain {lat_gain:.2} should approach the paper's 53%"
    );
    // Accuracy: below 1% average relative error for Ca.
    let are = ErrorStats::exhaustive(&Ca::new(8).expect("valid")).avg_relative_error;
    assert!(are < 0.01, "Ca ARE {are} must stay below 1%");
}

/// §3.2: the proposed 4×4 has 6 error cases of fixed magnitude 8, and
/// the published Table 3 netlist implements exactly that behavior.
#[test]
fn elementary_block_contract() {
    assert_eq!(Approx4x4::error_cases().len(), 6);
    let nl = approx_4x4_netlist();
    let m = Approx4x4::new();
    let mut mismatches = 0;
    for_each_operand_pair(&nl, |a, b, out| {
        if out[0] != m.multiply(a, b) {
            mismatches += 1;
        }
    })
    .expect("simulates");
    assert_eq!(mismatches, 0, "netlist ≡ behavioral on all 256 pairs");
}

/// Table 4: LUT counts of every proposed design, at every published
/// size, exactly.
#[test]
fn table4_lut_counts() {
    for (bits, ca, cc) in [(4u32, 12, 12), (8, 57, 56), (16, 245, 240)] {
        assert_eq!(ca_netlist(bits).expect("valid").lut_count(), ca);
        assert_eq!(cc_netlist(bits).expect("valid").lut_count(), cc);
    }
}

/// Table 5, reproduced through the public metrics API for all five
/// architectures at once.
#[test]
fn table5_full_reproduction() {
    type Expectation = (&'static str, Box<dyn Multiplier>, i64, u64, u64);
    let expect: [Expectation; 5] = [
        ("Ca", Box::new(Ca::new(8).expect("valid")), 2312, 5482, 14),
        ("Cc", Box::new(Cc::new(8).expect("valid")), 8288, 52731, 1),
        (
            "W",
            Box::new(RehmanW::new(8).expect("valid")),
            7225,
            53375,
            31,
        ),
        (
            "K",
            Box::new(Kulkarni::new(8).expect("valid")),
            14450,
            30625,
            1,
        ),
        ("Mult(8,4)", Box::new(Truncated::new(8, 4)), 15, 53248, 2048),
    ];
    for (name, m, max, occ, max_occ) in expect {
        let s = ErrorStats::exhaustive(&m);
        assert_eq!(s.max_error, max, "{name} max");
        assert_eq!(s.error_occurrences, occ, "{name} occurrences");
        assert_eq!(s.max_error_occurrences, max_occ, "{name} max occurrences");
    }
}

/// §5: the full application pipeline — synthetic image through the
/// SUSAN accelerator with every multiplier — preserves the paper's
/// robust quality orderings.
#[test]
fn susan_quality_orderings() {
    let img = synthetic_test_image(96, 96, 11);
    let params = SusanParams::default();
    let golden = susan_smooth(&img, &params, &Exact::new(8, 8));
    let psnr = |m: &dyn Multiplier| golden.psnr(&susan_smooth(&img, &params, &m));

    let ca = Ca::new(8).expect("valid");
    let cc = Cc::new(8).expect("valid");
    let p_ca = psnr(&ca);
    let p_cc = psnr(&cc);
    let p_k = psnr(&Kulkarni::new(8).expect("valid"));
    let p_cas = psnr(&Swapped::new(ca));
    let p_ccs = psnr(&Swapped::new(cc));

    assert!(p_ca > p_k, "proposed Ca ({p_ca:.1}) beats K ({p_k:.1})");
    assert!(p_ca > p_cc, "Ca ({p_ca:.1}) beats Cc ({p_cc:.1})");
    assert!(
        p_cas > p_ca,
        "swapping improves Ca: {p_cas:.1} vs {p_ca:.1}"
    );
    assert!(
        p_ccs >= p_cc,
        "swapping does not hurt Cc: {p_ccs:.1} vs {p_cc:.1}"
    );
    assert!(p_ca > 30.0, "Ca stays visually usable: {p_ca:.1} dB");
}

/// Fig. 1's architectural claim: the ASIC-oriented designs lose their
/// area advantage on the LUT fabric (they cost at least as much as the
/// strongest accurate array multiplier), while the proposed design is
/// strictly smaller.
#[test]
fn asic_designs_lose_area_advantage_on_fpga() {
    let accurate = approx_multipliers::baselines::array_mult_netlist(8, 8).lut_count();
    let k = approx_multipliers::baselines::kulkarni_netlist(8)
        .expect("valid")
        .lut_count();
    let w = approx_multipliers::baselines::rehman_netlist(8)
        .expect("valid")
        .lut_count();
    let ca_nl = ca_netlist(8).expect("valid");
    assert!(k >= accurate, "K ({k}) vs accurate ({accurate})");
    assert!(w >= accurate, "W ({w}) vs accurate ({accurate})");
    // Against the strongest accurate array, Ca matches its area (57 vs
    // 57) and wins decisively on latency (the array ripples serially).
    assert!(
        ca_nl.lut_count() <= accurate,
        "Ca ({}) vs accurate ({accurate})",
        ca_nl.lut_count()
    );
    let delay = DelayModel::virtex7();
    let t_ca = analyze(&ca_nl, &delay).critical_path_ns;
    let t_acc = analyze(
        &approx_multipliers::baselines::array_mult_netlist(8, 8),
        &delay,
    )
    .critical_path_ns;
    assert!(t_ca < 0.8 * t_acc, "Ca {t_ca:.2}ns vs array {t_acc:.2}ns");
}
