//! Satellite property test for the compiled bit-sliced simulator: for
//! **every structural netlist in the roster** — the paper's designs,
//! every baseline family, the EvoApprox-style library, the adder
//! netlists and a stride of the 1 250 enumerated recursive 8×8
//! configurations — the compiled program's outputs and *per-net* words
//! are bit-identical to the scalar [`Netlist::eval`] reference and the
//! interpretive [`WideSim`]. Net-word equality over all nets subsumes
//! toggle-count equality, so the energy proxy is covered too.

use approx_multipliers::adders::{carry_free_adder_netlist, exact_adder_netlist, loa_netlist};
use approx_multipliers::baselines::{
    array_mult_netlist, csa_tree_mult_netlist, evo, kulkarni_kernel_netlist, kulkarni_netlist,
    pp_truncated_netlist, rehman_kernel_netlist, rehman_netlist, IpOpt, VivadoIp,
};
use approx_multipliers::core::correction::correctable_4x4_netlist;
use approx_multipliers::core::structural::{
    approx_4x2_netlist, approx_4x4_accsum_netlist, approx_4x4_netlist, ca_netlist, cc_netlist,
};
use approx_multipliers::dse::Config;
use approx_multipliers::fabric::compile::{CompiledNetlist, CompiledSim};
use approx_multipliers::fabric::sim::WideSim;
use approx_multipliers::fabric::{NetId, Netlist};

fn roster() -> Vec<Netlist> {
    let mut r = vec![
        approx_4x2_netlist(),
        approx_4x4_netlist(),
        approx_4x4_accsum_netlist(),
        correctable_4x4_netlist(),
        ca_netlist(4).unwrap(),
        ca_netlist(8).unwrap(),
        cc_netlist(4).unwrap(),
        cc_netlist(8).unwrap(),
        kulkarni_kernel_netlist(),
        kulkarni_netlist(8).unwrap(),
        rehman_kernel_netlist(),
        rehman_netlist(8).unwrap(),
        pp_truncated_netlist(8, 8, 1),
        pp_truncated_netlist(8, 8, 2),
        pp_truncated_netlist(8, 8, 3),
        array_mult_netlist(8, 8),
        csa_tree_mult_netlist(8, 8),
        VivadoIp::new(8, IpOpt::Area).netlist(),
        VivadoIp::new(8, IpOpt::Speed).netlist(),
        exact_adder_netlist(8),
        loa_netlist(8, 3),
        carry_free_adder_netlist(8),
    ];
    for design in evo::library() {
        r.push(design.netlist());
    }
    r
}

/// Deterministic SplitMix64 stream (same generator the fabric's
/// stimulus uses; no external RNG dependency).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 128 lanes per bus: corners first, then a deterministic random fill,
/// each masked to the bus width.
fn lanes_for(netlist: &Netlist, seed: u64) -> Vec<Vec<u64>> {
    let mut state = seed;
    netlist
        .input_buses()
        .iter()
        .map(|(_, bits)| {
            let w = bits.len() as u32;
            let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            let mut lanes = vec![0, mask, 1 & mask, mask >> 1];
            while lanes.len() < 128 {
                lanes.push(splitmix(&mut state) & mask);
            }
            lanes
        })
        .collect()
}

/// Asserts the compiled program reproduces `Netlist::eval` outputs and
/// every `WideSim` net word exactly, on a 128-lane stimulus.
fn assert_compiled_matches(netlist: &Netlist) {
    let name = netlist.name();
    let lanes = lanes_for(netlist, 0x0D0C_5EED ^ netlist.net_count() as u64);
    let refs: Vec<&[u64]> = lanes.iter().map(Vec::as_slice).collect();

    let prog = CompiledNetlist::compile(netlist);
    let mut sim: CompiledSim<'_, 2> = prog.simulator();
    let loaded = sim.load(&refs).unwrap();
    assert_eq!(loaded, 128);
    sim.run();

    // Outputs versus the scalar reference, lane by lane.
    for lane in 0..128 {
        let vector: Vec<u64> = lanes.iter().map(|bus| bus[lane]).collect();
        let expect = netlist.eval(&vector).unwrap();
        for (bus, &want) in expect.iter().enumerate() {
            let mut got = 0u64;
            for bit in 0..netlist.output_buses()[bus].1.len() {
                let w = sim.output_word(bus, bit);
                got |= ((w[lane / 64] >> (lane % 64)) & 1) << bit;
            }
            assert_eq!(got, want, "{name}: output bus {bus}, lane {lane}");
        }
    }

    // Every net word versus the interpretive WideSim, 64 lanes at a
    // time (equality over all nets subsumes toggle-count equality).
    let mut wide = WideSim::new(netlist);
    for half in 0..2 {
        let half_refs: Vec<&[u64]> = lanes
            .iter()
            .map(|bus| &bus[64 * half..64 * (half + 1)])
            .collect();
        let nets = wide.eval_nets(&half_refs).unwrap();
        for (net, &want) in nets.iter().enumerate() {
            let got = sim.net_word(NetId::new(net as u32))[half];
            assert_eq!(got, want, "{name}: net {net}, half {half}");
        }
    }
}

#[test]
fn compiled_sim_matches_reference_across_the_roster() {
    let designs = roster();
    assert!(designs.len() > 40, "roster covers the evo library too");
    for nl in &designs {
        assert_compiled_matches(nl);
    }
}

#[test]
fn compiled_sim_matches_reference_on_enumerated_recursive_configs() {
    let configs = Config::enumerate(8);
    assert_eq!(configs.len(), 1250);
    let sampled: Vec<&Config> = configs.iter().step_by(83).collect();
    assert!(sampled.len() >= 15);
    for cfg in sampled {
        assert_compiled_matches(&cfg.assemble());
    }
}
