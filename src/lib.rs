//! # approx-multipliers
//!
//! A complete, from-scratch Rust reproduction of the DAC'18 paper
//! *"Area-Optimized Low-Latency Approximate Multipliers for FPGA-based
//! Hardware Accelerators"* (Ullah, Rehman, Prabakaran, Kriebel, Hanif,
//! Shafique, Kumar — DOI 10.1145/3195970.3195996).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`fabric`] — bit-accurate Xilinx-7-series-style fabric model
//!   (`LUT6_2`, `CARRY4`, netlists, simulation, timing, area, energy).
//! * [`core`] — the paper's contribution: behavioral and structural
//!   models of the approximate 4×2/4×4 elementary blocks and the
//!   recursive `Ca`/`Cc` multiplier families.
//! * [`baselines`] — every comparison point of the evaluation: exact,
//!   Kulkarni (`K`), Rehman (`W`), truncated, EvoApprox-style library,
//!   and Vivado-IP-like accurate soft multipliers.
//! * [`metrics`] — exhaustive/sampled error characterization, PMFs,
//!   per-bit accuracy, Pareto fronts (Tables 2/5, Figs. 8–10).
//! * [`susan`] — the SUSAN image-smoothing accelerator case study with
//!   pluggable multipliers and PSNR evaluation (Table 6, Figs. 11–12).
//! * [`apps`] — the Reed-Solomon and JPEG encoder case study mapped
//!   through the device cost model (Table 1).
//! * [`adders`] — the approximate-adder substrate (LOA, truncated,
//!   carry-free) behind the summation design space.
//! * [`dse`] — parallel design-space exploration over the recursive
//!   configuration space with memoized error composition and Pareto
//!   reporting (exhaustive at 8×8, random/hill-climb at 16×16).
//! * [`nn`] — quantized int8 neural-network inference on pluggable
//!   approximate multipliers: product-table MACs, a self-contained
//!   trained classification task, accuracy-constrained DSE, and
//!   stuck-at fault robustness sweeps.
//! * [`lint`] — multi-pass static analysis over elaborated netlists:
//!   structural sanity, dead-logic and fold detection, 7-series packing
//!   legality, and static checks of the paper's Table 2/3 claims.
//! * [`absint`] — sound static error/range analysis by abstract
//!   interpretation: known-bits, value-interval and error-interval
//!   domains over configuration trees and netlists, machine-checkable
//!   certificates, and the bound-guided pruning behind the 16×16 DSE.
//! * [`serve`] — the characterization-and-inference daemon: a std-only
//!   multi-threaded server speaking a length-prefixed JSON protocol
//!   over TCP and Unix sockets, backed by a persistent on-disk
//!   characterization store for zero-rebuild warm starts.
//! * [`sat`] — SAT-based formal verification: a dependency-free CDCL
//!   solver, Tseitin encoding of fabric netlists, combinational
//!   equivalence checking via miters with replayed counterexamples,
//!   and exact worst-case-error proofs at any width — certifying (or
//!   refuting) the [`absint`] brackets where exhaustive simulation
//!   cannot reach.
//! * [`netio`] — netlist interchange: a structural-Verilog importer
//!   for the exported `LUT6_2`/`CARRY4` dialect (export → import →
//!   export is a byte-level fixpoint) and the versioned `axnl-v1`
//!   JSON schema, with typed source-located errors and the canonical
//!   content fingerprint shared with the characterization cache.
//!
//! ## Quickstart
//!
//! ```
//! use approx_multipliers::core::behavioral::Ca;
//! use approx_multipliers::core::Multiplier;
//! use approx_multipliers::metrics::ErrorStats;
//!
//! let ca8 = Ca::new(8)?;
//! let stats = ErrorStats::exhaustive(&ca8);
//! assert_eq!(stats.max_error, 2312);            // Table 5
//! assert_eq!(stats.error_occurrences, 5482);    // Table 5
//! # Ok::<(), approx_multipliers::core::WidthError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use axmul_absint as absint;
pub use axmul_adders as adders;
pub use axmul_apps as apps;
pub use axmul_baselines as baselines;
pub use axmul_core as core;
pub use axmul_dse as dse;
pub use axmul_fabric as fabric;
pub use axmul_lint as lint;
pub use axmul_metrics as metrics;
pub use axmul_netio as netio;
pub use axmul_nn as nn;
pub use axmul_sat as sat;
pub use axmul_serve as serve;
pub use axmul_susan as susan;
