//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the subset of proptest it uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: integer ranges (half-open and inclusive),
//!   [`prelude::any`] for primitives and byte arrays, tuples,
//!   [`collection::vec`], [`sample::select`], [`strategy::Just`], and
//!   [`strategy::Strategy::prop_map`].
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. A failing case panics with the case number and the
//! generating seed, which (with the deterministic per-test stream) is
//! enough to reproduce it. Case counts respect
//! [`test_runner::ProptestConfig::with_cases`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-loop configuration and error plumbing.

    use std::fmt;

    /// Subset of proptest's run configuration: the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (carries the rendered assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random stream (SplitMix64).
    ///
    /// Seeded from the test's name so each property gets an independent
    /// but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the stream for the named test.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (rejection-free Lemire reduction).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = n.wrapping_neg() % n;
            loop {
                let x = self.next_u64();
                let m = u128::from(x) * u128::from(n);
                #[allow(clippy::cast_possible_truncation)]
                let low = m as u64;
                if low >= zone {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy of "any value of `T`" — see [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the type's full range.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let word = rng.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
            out
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of `element` values with lengths drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use super::strategy::{Any, Arbitrary, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    use std::marker::PhantomData;

    /// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}", stringify!($left), stringify!($right)),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}: {}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges honor their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -5i16..=5, n in 1usize..9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((1..9).contains(&n));
        }

        /// Tuples, vec, select and prop_map compose.
        #[test]
        fn combinators(
            v in prop::collection::vec((0u64..10, any::<u8>()), 2..6),
            pick in prop::sample::select(vec![2u64, 4, 8]),
            mapped in (0u32..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (x, _) in &v {
                prop_assert!(*x < 10);
            }
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(mapped, 11);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1000;
        let mut r1 = TestRng::deterministic("x");
        let mut r2 = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
