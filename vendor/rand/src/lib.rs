//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the workspace vendors the *subset* of the rand 0.9 API
//! it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], and [`Rng::random_range`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms and statistically strong enough for the Monte-Carlo
//! sampling and synthetic-stimulus generation the workspace does.
//!
//! The stream is **not** bit-compatible with the real `rand` crate's
//! `StdRng` (which is ChaCha12); no test in this workspace depends on
//! specific stream values, only on determinism and uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A type that can be produced uniformly at random, mirroring the role
/// of `rand::distr::StandardUniform`.
pub trait Random {
    /// Draws one uniform value from `rng`.
    fn random_from(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe core of a random generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Returns a uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random_from(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random_from(rng: &mut dyn RngCore) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        out
    }
}

/// Rejection-sampled uniform draw from `[0, n)`.
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply rejection (Lemire); bias-free.
    let zone = n.wrapping_neg() % n; // 2^64 mod n
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(n);
        #[allow(clippy::cast_possible_truncation)]
        let low = m as u64;
        if low >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64 (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i16 = rng.random_range(-10i16..=10);
            assert!((-10..=10).contains(&v));
            let u: u64 = rng.random_range(0u64..17);
            assert!(u < 17);
            let w: usize = rng.random_range(3usize..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bin count {c}");
        }
    }

    #[test]
    fn array_and_float_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        let bytes: [u8; 6] = rng.random();
        assert_eq!(bytes.len(), 6);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
