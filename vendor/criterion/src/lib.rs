//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the criterion 0.5 API for this workspace's
//! `harness = false` benches: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up
//! briefly, then timed over `sample_size` samples with
//! [`std::time::Instant`], and the per-iteration mean / min are printed
//! as plain text. There are no plots, no statistics beyond mean/min,
//! and no baseline comparisons — but `cargo bench` runs, measures, and
//! reports real numbers with zero external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How per-iteration setup output is batched in
/// [`Bencher::iter_batched`]. The shim times one routine call per
/// setup call regardless of the variant, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: self.default_sample_size,
        }
    }
}

/// A group of benchmarks sharing a prefix and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Ends the group (printing nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Runs and times the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that runs at
        // least ~1 ms per sample to keep timer noise down.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_secs_f64() / *n as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        println!(
            "  {id:<40} mean {:>12}  min {:>12}  ({} samples)",
            format_time(mean),
            format_time(min),
            per_iter.len()
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(4);
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
