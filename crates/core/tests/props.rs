//! Property-based tests of the multiplier architectures' invariants.

use axmul_core::behavioral::{approx_4x4, Ca, Cc, Recursive, Summation};
use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_core::{mask_for, Multiplier, Swapped};
use proptest::prelude::*;

/// Sum of elementary-block weights for a `bits`-wide Ca multiplier:
/// every 4×4 block at nibble positions (i, j) has weight `16^(i+j)`.
fn error_weight_sum(bits: u32) -> u64 {
    let n = bits / 4;
    (0..n)
        .flat_map(|i| (0..n).map(move |j| 1u64 << (4 * (i + j))))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Ca only underestimates, by at most 8 per elementary block at its
    /// weight (the composition of the fixed-magnitude-8 error).
    #[test]
    fn ca_error_bounded(bits in prop::sample::select(vec![4u32, 8, 16, 32]), a in any::<u64>(), b in any::<u64>()) {
        let m = Ca::new(bits).unwrap();
        let (a, b) = (a & mask_for(bits), b & mask_for(bits));
        let err = m.error(a, b);
        prop_assert!(err >= 0, "Ca never overestimates");
        prop_assert!(err as u64 <= 8 * error_weight_sum(bits));
        prop_assert_eq!(err % 8, 0, "errors are multiples of 8");
    }

    /// Cc never exceeds the exact product and agrees with the exact
    /// product on the low nibble of each 8-bit block boundary.
    #[test]
    fn cc_underestimates(bits in prop::sample::select(vec![8u32, 16, 32]), a in any::<u64>(), b in any::<u64>()) {
        let m = Cc::new(bits).unwrap();
        let (a, b) = (a & mask_for(bits), b & mask_for(bits));
        prop_assert!(m.multiply(a, b) <= a * b);
        // The bottom nibble passes through LL untouched at every level;
        // within the elementary block only P3 can err (the fixed -8),
        // so bits 0..3 always match the exact product.
        prop_assert_eq!(m.multiply(a, b) & 0x7, (a * b) & 0x7);
    }

    /// Multiplying by zero or one is always exact, at any width.
    #[test]
    fn identities(bits in prop::sample::select(vec![4u32, 8, 16, 32]), a in any::<u64>()) {
        let a = a & mask_for(bits);
        for m in [&Ca::new(bits).unwrap() as &dyn Multiplier, &Cc::new(bits).unwrap()] {
            prop_assert_eq!(m.multiply(a, 0), 0);
            prop_assert_eq!(m.multiply(0, a), 0);
            prop_assert_eq!(m.multiply(a, 1), a);
            prop_assert_eq!(m.multiply(1, a), a);
        }
    }

    /// Operands whose multiplier nibbles avoid {5, 6, 7, 13, 15} never
    /// trigger the elementary error, so Ca is exact on them.
    #[test]
    fn ca_exact_on_safe_multipliers(a in any::<u64>(), nibbles in prop::collection::vec(prop::sample::select(vec![0u64,1,2,3,4,8,9,10,11,12,14]), 4)) {
        let b = nibbles.iter().enumerate().fold(0u64, |acc, (i, &n)| acc | n << (4 * i));
        let m = Ca::new(16).unwrap();
        prop_assert_eq!(m.error(a & 0xFFFF, b), 0, "b = {:#x}", b);
    }

    /// Double-swapping restores the original behavior.
    #[test]
    fn swap_is_involutive(a in 0u64..256, b in 0u64..256) {
        let m = Ca::new(8).unwrap();
        let ss = Swapped::new(Swapped::new(m.clone()));
        prop_assert_eq!(ss.multiply(a, b), m.multiply(a, b));
    }

    /// The generic recursion with an exact kernel is exact for every
    /// width/kernel combination.
    #[test]
    fn recursive_exact_kernel(
        bits in prop::sample::select(vec![4u32, 8, 16, 32]),
        kernel_bits in prop::sample::select(vec![2u32, 4]),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let m = Recursive::new("X", bits, kernel_bits, |x, y| x * y, Summation::Accurate).unwrap();
        let (a, b) = (a & mask_for(bits), b & mask_for(bits));
        prop_assert_eq!(m.multiply(a, b), a * b);
    }

    /// Structural and behavioral Ca/Cc agree on random 16×16 operands.
    #[test]
    fn structural_matches_behavioral_16(a in 0u64..65536, b in 0u64..65536) {
        use std::sync::LazyLock;
        static CA_NL: LazyLock<axmul_fabric::Netlist> =
            LazyLock::new(|| ca_netlist(16).unwrap());
        static CC_NL: LazyLock<axmul_fabric::Netlist> =
            LazyLock::new(|| cc_netlist(16).unwrap());
        let ca = Ca::new(16).unwrap();
        let cc = Cc::new(16).unwrap();
        prop_assert_eq!(CA_NL.eval(&[a, b]).unwrap()[0], ca.multiply(a, b));
        prop_assert_eq!(CC_NL.eval(&[a, b]).unwrap()[0], cc.multiply(a, b));
    }

    /// The elementary error condition is exactly the closed form used
    /// everywhere: PP0<2> & PP0<3> & PP1<0> & PP1<1>.
    #[test]
    fn elementary_error_closed_form(a in 0u64..16, b in 0u64..16) {
        let pp0 = a * (b & 3);
        let pp1 = a * (b >> 2);
        let saturated = pp0 >> 2 & 1 == 1 && pp0 >> 3 & 1 == 1 && pp1 & 1 == 1 && pp1 >> 1 & 1 == 1;
        let expected = a * b - if saturated { 8 } else { 0 };
        prop_assert_eq!(approx_4x4(a, b), expected);
    }
}
