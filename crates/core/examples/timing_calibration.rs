//! Prints STA results of the Ca/Cc netlists against the paper's
//! Table 4 latencies, for delay-model calibration.

use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_fabric::timing::{analyze, DelayModel};

fn main() {
    let model = DelayModel::virtex7();
    let paper_ca = [5.846, 7.746, 10.765];
    let paper_cc = [5.846, 6.946, 7.613];
    for (i, bits) in [4u32, 8, 16].into_iter().enumerate() {
        let ca = analyze(&ca_netlist(bits).unwrap(), &model).critical_path_ns;
        let cc = analyze(&cc_netlist(bits).unwrap(), &model).critical_path_ns;
        println!(
            "{bits:>2}x{bits:<2}  Ca model {ca:6.3} paper {:6.3} ({:+5.1}%)   Cc model {cc:6.3} paper {:6.3} ({:+5.1}%)",
            paper_ca[i],
            (ca / paper_ca[i] - 1.0) * 100.0,
            paper_cc[i],
            (cc / paper_cc[i] - 1.0) * 100.0,
        );
    }
}

#[allow(dead_code)]
fn debug_arrivals() {}
