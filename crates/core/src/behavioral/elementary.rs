//! The elementary 4×2 and 4×4 multiplier modules (paper §3).

use crate::mul::mask;
use crate::Multiplier;

/// Computes the six product bits of an *accurate* 4×2 multiplication
/// using the optimized logic equations (1)–(6) of the paper, rather
/// than integer arithmetic.
///
/// `a` is the 4-bit multiplicand `A3..A0`, `b` the 2-bit multiplier
/// `B1..B0`. Returns `[P0, P1, P2, P3, P4, P5]`.
///
/// This function exists to validate the paper's equations: a unit test
/// proves it equals `a * b` for all 64 operand combinations, and the
/// Table 3 INIT derivation builds on the same equations.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::accurate_4x2_product_bits;
/// let p = accurate_4x2_product_bits(0b1111, 0b11); // 15 * 3 = 45
/// let value: u64 = p.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
/// assert_eq!(value, 45);
/// ```
#[must_use]
pub fn accurate_4x2_product_bits(a: u64, b: u64) -> [bool; 6] {
    let a0 = a & 1 == 1;
    let a1 = a >> 1 & 1 == 1;
    let a2 = a >> 2 & 1 == 1;
    let a3 = a >> 3 & 1 == 1;
    let b0 = b & 1 == 1;
    let b1 = b >> 1 & 1 == 1;

    // Eq. (1)
    let p0 = b0 && a0;
    // Eq. (2)
    let p1 = (!b1 && b0 && a1) || (b1 && !b0 && a0) || (b1 && !a1 && a0) || (b0 && a1 && !a0);
    // Eq. (3)
    let p2 = (!b1 && b0 && a2)
        || (b1 && !b0 && a1)
        || (b0 && a2 && !a1)
        || (b1 && !a2 && a1 && !a0)
        || (b1 && a2 && a1 && a0);
    // Eq. (4). The paper's text prints the last term as "B0 A3 A1 A0";
    // the prime on A0 is lost in transcription — with A0 unprimed the
    // equation misses the minterm a=1010, b=11 (10·3 = 30 has P3 = 1)
    // and wrongly covers a=1011, b=11 (11·3 = 33 has P3 = 0). A unit
    // test proves this corrected form equals integer multiplication.
    let p3 = (!b1 && b0 && a3)
        || (b1 && !b0 && a2)
        || (b1 && !a3 && a2 && !a1)
        || (b0 && a3 && !a2 && !a1)
        || (b1 && b0 && !a3 && !a2 && a1 && a0)
        || (b0 && a3 && a2 && a1)
        || (b0 && a3 && a1 && !a0);
    // Eq. (5)
    let p4 = (b1 && !b0 && a3)
        || (b1 && a3 && !a2 && !a1)
        || (b1 && a3 && !a2 && !a0)
        || (b1 && b0 && !a3 && a2 && a1);
    // Eq. (6)
    let p5 = (b1 && b0 && a3 && a2) || (b1 && b0 && a3 && a1 && a0);

    [p0, p1, p2, p3, p4, p5]
}

/// The approximate 4×2 product: the accurate product with `P0`
/// truncated to zero (§3.1).
///
/// Truncating `P0` is the unique single-bit approximation that packs
/// all remaining product bits into one slice (4 LUTs): `P1` and `P2`
/// share five inputs and fit one `LUT6_2`, and the error is bounded by
/// 1 for every input combination.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::approx_4x2;
/// assert_eq!(approx_4x2(15, 3), 44); // 45 with P0 dropped
/// assert_eq!(approx_4x2(15, 2), 30); // even products are exact
/// ```
#[must_use]
pub fn approx_4x2(a: u64, b: u64) -> u64 {
    ((a & 0xF) * (b & 0x3)) & !1
}

/// The approximate 4×4 product built from two approximate 4×2
/// multipliers with *accurate* summation of the partial products — the
/// 16-LUT design point of §3.2 (black box of Fig. 3).
///
/// Both `PP0 = A·B[1:0]` and `PP1 = A·B[3:2]` lose their `P0`; the
/// summation itself is exact. Average relative error 0.049, error
/// probability 0.375 under uniform inputs (asserted by tests).
#[must_use]
pub fn approx_4x4_accsum(a: u64, b: u64) -> u64 {
    let a = a & 0xF;
    let b = b & 0xF;
    approx_4x2(a, b & 3) + (approx_4x2(a, b >> 2) << 2)
}

/// The proposed optimized approximate 4×4 product (§3.2, Tables 2–3).
///
/// FPGA-specific optimizations — recovering a LUT from the implicit
/// computation of `PP1⟨4⟩`/`PP1⟨5⟩` and spending it on accurate `P0`
/// and `P2` — reduce the error cases to exactly **six input pairs**,
/// each with fixed error magnitude **8** on product bit `P3`.
///
/// The closed form: with `PP0 = A·B[1:0]` and `PP1 = A·B[3:2]`, the
/// result is `A·B − 8` iff `PP0⟨2⟩ ∧ PP0⟨3⟩ ∧ PP1⟨0⟩ ∧ PP1⟨1⟩`
/// (the three-operand column at bit 3 saturates and only the carry
/// *generate* is computed correctly), else `A·B` exactly.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::approx_4x4;
/// assert_eq!(approx_4x4(13, 13), 161); // Table 2: 169 - 8
/// assert_eq!(approx_4x4(7, 6), 34);    // Table 2: 42 - 8
/// assert_eq!(approx_4x4(6, 7), 42);    // asymmetric: swapped is exact
/// ```
#[must_use]
pub fn approx_4x4(a: u64, b: u64) -> u64 {
    let a = a & 0xF;
    let b = b & 0xF;
    let pp0 = a * (b & 3);
    let pp1 = a * (b >> 2);
    let saturated = pp0 >> 2 & 1 == 1 && pp0 >> 3 & 1 == 1 && pp1 & 1 == 1 && pp1 >> 1 & 1 == 1;
    a * b - if saturated { 8 } else { 0 }
}

/// One erroneous input pair of an elementary multiplier, in the layout
/// of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ErrorCase {
    /// The multiplier operand (`B`).
    pub multiplier: u64,
    /// The multiplicand operand (`A`).
    pub multiplicand: u64,
    /// The true product.
    pub actual: u64,
    /// The approximate result.
    pub computed: u64,
    /// `actual - computed`.
    pub difference: i64,
}

/// The elementary approximate 4×2 multiplier as a [`Multiplier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Approx4x2;

impl Approx4x2 {
    /// Creates the approximate 4×2 multiplier.
    #[must_use]
    pub fn new() -> Self {
        Approx4x2
    }
}

impl Multiplier for Approx4x2 {
    fn a_bits(&self) -> u32 {
        4
    }
    fn b_bits(&self) -> u32 {
        2
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        approx_4x2(a, b)
    }
    fn name(&self) -> &str {
        "Approx4x2"
    }
}

/// The 16-LUT approximate 4×4 multiplier (accurate summation of two
/// approximate 4×2 partial products) as a [`Multiplier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Approx4x4AccSum;

impl Approx4x4AccSum {
    /// Creates the accurate-summation approximate 4×4 multiplier.
    #[must_use]
    pub fn new() -> Self {
        Approx4x4AccSum
    }
}

impl Multiplier for Approx4x4AccSum {
    fn a_bits(&self) -> u32 {
        4
    }
    fn b_bits(&self) -> u32 {
        4
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        approx_4x4_accsum(a, b)
    }
    fn name(&self) -> &str {
        "Approx4x4AccSum"
    }
}

/// The proposed optimized approximate 4×4 multiplier (12 LUTs, six
/// error cases of magnitude 8) as a [`Multiplier`].
///
/// This is the elementary block of every `Ca`/`Cc` design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Approx4x4;

impl Approx4x4 {
    /// Creates the proposed approximate 4×4 multiplier.
    #[must_use]
    pub fn new() -> Self {
        Approx4x4
    }

    /// Enumerates all erroneous input pairs, reproducing Table 2 of the
    /// paper (six cases, each with difference 8).
    #[must_use]
    pub fn error_cases() -> Vec<ErrorCase> {
        let m = Approx4x4::new();
        let mut cases = Vec::new();
        for b in 0..16u64 {
            for a in 0..16u64 {
                let diff = m.error(a, b);
                if diff != 0 {
                    cases.push(ErrorCase {
                        multiplier: b,
                        multiplicand: a,
                        actual: a * b,
                        computed: m.multiply(a, b),
                        difference: diff,
                    });
                }
            }
        }
        cases
    }
}

impl Multiplier for Approx4x4 {
    fn a_bits(&self) -> u32 {
        4
    }
    fn b_bits(&self) -> u32 {
        4
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        approx_4x4(a, b)
    }
    fn name(&self) -> &str {
        "Approx4x4"
    }
}

/// Masks helper re-export for sibling modules.
#[allow(unused)]
pub(crate) fn mask_bits(bits: u32) -> u64 {
    mask(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_equations_equal_integer_multiply() {
        for a in 0..16u64 {
            for b in 0..4u64 {
                let bits = accurate_4x2_product_bits(a, b);
                let value: u64 = bits.iter().enumerate().map(|(i, &x)| (x as u64) << i).sum();
                assert_eq!(value, a * b, "equations (1)-(6) at a={a} b={b}");
            }
        }
    }

    #[test]
    fn p0_p1_p2_depend_only_on_low_bits() {
        // The paper packs P1/P2 into one LUT6_2 because P0..P2 depend
        // only on A0..A2, B0, B1.
        for a in 0..16u64 {
            for b in 0..4u64 {
                let base = accurate_4x2_product_bits(a, b);
                let with_a3 = accurate_4x2_product_bits(a ^ 8, b);
                assert_eq!(base[0], with_a3[0]);
                assert_eq!(base[1], with_a3[1]);
                assert_eq!(base[2], with_a3[2]);
            }
        }
    }

    #[test]
    fn approx_4x2_error_is_exactly_a0_and_b0() {
        // 75% accuracy, max error 1 (paper §3.1).
        let mut errors = 0;
        for a in 0..16u64 {
            for b in 0..4u64 {
                let e = a * b - approx_4x2(a, b);
                assert!(e <= 1);
                let expect = (a & 1 == 1 && b & 1 == 1) as u64;
                assert_eq!(e, expect);
                errors += e;
            }
        }
        assert_eq!(errors, 16, "25% of the 64 combinations err by 1");
    }

    #[test]
    fn accsum_matches_paper_statistics() {
        // §3.2: average relative error 0.049, error probability 0.375.
        let mut occurrences = 0u64;
        let mut rel = 0.0f64;
        for a in 0..16u64 {
            for b in 0..16u64 {
                let e = a * b - approx_4x4_accsum(a, b);
                if e != 0 {
                    occurrences += 1;
                    rel += e as f64 / (a * b) as f64;
                }
            }
        }
        assert_eq!(occurrences, 96, "error probability 96/256 = 0.375");
        let are = rel / 256.0;
        assert!((are - 0.049).abs() < 5e-4, "ARE {are} != 0.049");
    }

    #[test]
    fn table2_reproduced_exactly() {
        // (multiplier, multiplicand, actual, computed, diff)
        let expected = [
            (5u64, 15u64, 75u64, 67u64),
            (6, 7, 42, 34),
            (6, 15, 90, 82),
            (7, 15, 105, 97),
            (13, 13, 169, 161),
            (15, 5, 75, 67),
        ];
        let mut cases = Approx4x4::error_cases();
        cases.sort_by_key(|c| (c.multiplier, c.multiplicand));
        assert_eq!(cases.len(), 6, "exactly six error cases");
        for (case, (b, a, actual, computed)) in cases.iter().zip(expected) {
            assert_eq!(case.multiplier, b);
            assert_eq!(case.multiplicand, a);
            assert_eq!(case.actual, actual);
            assert_eq!(case.computed, computed);
            assert_eq!(case.difference, 8, "fixed error magnitude 8");
        }
    }

    #[test]
    fn highlighted_swaps_are_exact() {
        // Paper: the highlighted Table 2 inputs produce no error with
        // multiplier and multiplicand mutually swapped.
        let m = Approx4x4::new();
        // (6,7) errs; (7,6) is exact.
        assert_eq!(m.error(7, 6), 8);
        assert_eq!(m.error(6, 7), 0);
        // (13,13) is symmetric: erroneous both ways.
        assert_eq!(m.error(13, 13), 8);
    }

    #[test]
    fn operands_are_masked() {
        let m = Approx4x4::new();
        assert_eq!(m.multiply(0x1F, 0x12), Approx4x4::new().multiply(0xF, 0x2));
    }

    #[test]
    fn error_magnitude_is_always_8_or_0() {
        let m = Approx4x4::new();
        for a in 0..16u64 {
            for b in 0..16u64 {
                let e = m.error(a, b);
                assert!(e == 0 || e == 8, "a={a} b={b} e={e}");
            }
        }
    }
}
