//! Recursive construction of higher-order multipliers (paper §4).
//!
//! A `2M×2M` multiplier decomposes into four `M×M` partial products
//! (Fig. 5a):
//!
//! ```text
//! A·B = AL·BL + (AH·BL + AL·BH)·2^M + AH·BH·2^2M
//! ```
//!
//! The paper explores two ways of summing them:
//!
//! * **Accurate summation ([`Summation::Accurate`], designs `Ca`)** —
//!   the three overlapping partial products are added exactly with
//!   carry-chain ternary adders (Fig. 5b).
//! * **Carry-free summation ([`Summation::CarryFree`], designs `Cc`)** —
//!   overlapping bits are combined per column *without any carries*
//!   (3-input XOR per bit, Fig. 6); the bottom `M` and top `M` product
//!   bits need no addition at all.

use std::fmt;

use crate::behavioral::elementary::approx_4x4;
use crate::mul::mask;
use crate::{Multiplier, WidthError};

/// Partial-product summation strategy for recursive multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Summation {
    /// Exact addition of the four partial products (the `Ca` family).
    Accurate,
    /// Column-wise carry-free (XOR) combination of overlapping bits
    /// (the `Cc` family). Bits `[0, M)` pass `AL·BL` through and bits
    /// `[3M, 4M)` pass the top of `AH·BH` through unchanged.
    CarryFree,
}

impl fmt::Display for Summation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Summation::Accurate => f.write_str("accurate"),
            Summation::CarryFree => f.write_str("carry-free"),
        }
    }
}

fn check_width(bits: u32, kernel_bits: u32) -> Result<(), WidthError> {
    let ok = bits >= kernel_bits
        && bits <= 32
        && bits.is_power_of_two()
        && kernel_bits.is_power_of_two()
        && kernel_bits >= 2;
    if ok {
        Ok(())
    } else {
        Err(WidthError { bits })
    }
}

fn recurse(
    kernel: &dyn Fn(u64, u64) -> u64,
    kernel_bits: u32,
    bits: u32,
    summation: Summation,
    a: u64,
    b: u64,
) -> u64 {
    if bits == kernel_bits {
        return kernel(a, b);
    }
    let m = bits / 2;
    let lo = mask(m);
    let (al, ah) = (a & lo, a >> m);
    let (bl, bh) = (b & lo, b >> m);
    let ll = recurse(kernel, kernel_bits, m, summation, al, bl);
    let hl = recurse(kernel, kernel_bits, m, summation, ah, bl);
    let lh = recurse(kernel, kernel_bits, m, summation, al, bh);
    let hh = recurse(kernel, kernel_bits, m, summation, ah, bh);
    match summation {
        Summation::Accurate => ll + ((hl + lh) << m) + (hh << (2 * m)),
        Summation::CarryFree => {
            // Fig. 6: per-column combination without carry-outs.
            // Bits [0, m): LL only. Bits [m, 3m): LL-high ^ HL ^ LH ^
            // HH-low (each column has at most three contributors plus
            // HH from bit 2m up). Bits [3m, 4m): HH-high only.
            let low = ll & lo;
            let mid = ((ll >> m) ^ hl ^ lh ^ ((hh & lo) << m)) & mask(2 * m);
            let high = hh >> m;
            low | (mid << m) | (high << (3 * m))
        }
    }
}

/// A recursive multiplier over an arbitrary elementary kernel.
///
/// This is the generic machinery behind [`Ca`] and [`Cc`]; it is public
/// so that the baselines crate can express the Kulkarni and Rehman
/// multipliers (2×2 kernels, accurate summation) and so that ablation
/// experiments can mix kernels and summation strategies.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::{Recursive, Summation};
/// use axmul_core::Multiplier;
///
/// // An exact 16x16 multiplier from an exact 2x2 kernel.
/// let m = Recursive::new("Grid", 16, 2, |a, b| a * b, Summation::Accurate)?;
/// assert_eq!(m.multiply(1234, 567), 1234 * 567);
/// assert_eq!(m.name(), "Grid 16x16");
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Clone)]
pub struct Recursive<F> {
    kernel: F,
    kernel_bits: u32,
    bits: u32,
    summation: Summation,
    name: String,
}

impl<F: Fn(u64, u64) -> u64> Recursive<F> {
    /// Builds a `bits`×`bits` multiplier from `kernel_bits`-wide
    /// elementary blocks combined with the given summation.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] unless `bits` and `kernel_bits` are
    /// powers of two with `2 <= kernel_bits <= bits <= 32`.
    pub fn new(
        family: &str,
        bits: u32,
        kernel_bits: u32,
        kernel: F,
        summation: Summation,
    ) -> Result<Self, WidthError> {
        check_width(bits, kernel_bits)?;
        Ok(Recursive {
            kernel,
            kernel_bits,
            bits,
            summation,
            name: format!("{family} {bits}x{bits}"),
        })
    }

    /// The summation strategy in use.
    #[must_use]
    pub fn summation(&self) -> Summation {
        self.summation
    }
}

impl<F> fmt::Debug for Recursive<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recursive")
            .field("name", &self.name)
            .field("bits", &self.bits)
            .field("kernel_bits", &self.kernel_bits)
            .field("summation", &self.summation)
            .finish()
    }
}

impl<F: Fn(u64, u64) -> u64> Multiplier for Recursive<F> {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        recurse(
            &self.kernel,
            self.kernel_bits,
            self.bits,
            self.summation,
            a & mask(self.bits),
            b & mask(self.bits),
        )
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Combines four already-computed `M×M` partial products into the
/// `2M×2M` product under the given summation — the closed-form twin of
/// [`crate::structural::combine_partial_products`].
///
/// `ll`, `hl`, `lh`, `hh` are the (possibly approximate) products
/// `AL·BL`, `AH·BL`, `AL·BH`, `AH·BH`, each at most `2M` bits wide.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::{combine_products, Summation};
///
/// // 13 * 11 = (1*0b1101)·... via 2-bit halves: al=1, ah=3, bl=3, bh=2.
/// let (al, ah, bl, bh) = (1u64, 3, 3, 2);
/// let p = combine_products(al * bl, ah * bl, al * bh, ah * bh, 2, Summation::Accurate);
/// assert_eq!(p, 13 * 11);
/// ```
#[must_use]
#[inline]
pub fn combine_products(ll: u64, hl: u64, lh: u64, hh: u64, m: u32, summation: Summation) -> u64 {
    match summation {
        Summation::Accurate => ll + ((hl + lh) << m) + (hh << (2 * m)),
        Summation::CarryFree => {
            let lo = mask(m);
            let low = ll & lo;
            let mid = ((ll >> m) ^ hl ^ lh ^ ((hh & lo) << m)) & mask(2 * m);
            let high = hh >> m;
            low | (mid << m) | (high << (3 * m))
        }
    }
}

/// A heterogeneous `2M×2M` multiplier: four *independent* `M×M`
/// sub-multipliers (one per quadrant of Fig. 5a) combined with either
/// summation strategy.
///
/// Where [`Recursive`] applies one kernel uniformly, `Quad` lets every
/// quadrant differ — the configuration space the design-space
/// exploration engine (`axmul-dse`) searches: e.g. an accurate `AH·BH`
/// quadrant (where errors weigh `2^2M`) over approximate low quadrants.
/// `Quad` nodes nest, so arbitrary recursive configurations are
/// expressible.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::{Approx4x4, Quad, Summation};
/// use axmul_core::{Exact, Multiplier};
///
/// // Approximate everywhere except the most significant quadrant.
/// let m = Quad::new(
///     Box::new(Approx4x4::new()) as Box<dyn Multiplier>,
///     Box::new(Approx4x4::new()),
///     Box::new(Approx4x4::new()),
///     Box::new(Exact::new(4, 4)),
///     Summation::Accurate,
/// )?;
/// assert_eq!(m.a_bits(), 8);
/// assert_eq!(m.multiply(0xD0, 0xD0), 0xD0 * 0xD0); // hh exact: no error here
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Quad<M> {
    ll: M,
    hl: M,
    lh: M,
    hh: M,
    summation: Summation,
    bits: u32,
    name: String,
}

impl<M: Multiplier> Quad<M> {
    /// Builds a `2M×2M` multiplier from four `M×M` quadrants
    /// (`AL·BL`, `AH·BL`, `AL·BH`, `AH·BH`) and a summation strategy.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] unless all four quadrants are square
    /// multipliers of one common width `M` (a power of two ≥ 2) with
    /// `2M <= 32`.
    pub fn new(ll: M, hl: M, lh: M, hh: M, summation: Summation) -> Result<Self, WidthError> {
        let m = ll.a_bits();
        let square = |q: &M| q.a_bits() == m && q.b_bits() == m;
        if !(square(&ll) && square(&hl) && square(&lh) && square(&hh)) {
            return Err(WidthError { bits: 2 * m });
        }
        let bits = 2 * m;
        check_width(bits, m.max(2))?;
        let tag = match summation {
            Summation::Accurate => "a",
            Summation::CarryFree => "c",
        };
        Ok(Quad {
            ll,
            hl,
            lh,
            hh,
            summation,
            bits,
            name: format!("Quad{tag} {bits}x{bits}"),
        })
    }

    /// Replaces the derived name (e.g. with a DSE configuration key).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The summation strategy in use.
    #[must_use]
    pub fn summation(&self) -> Summation {
        self.summation
    }

    /// The four quadrants in `(ll, hl, lh, hh)` order.
    #[must_use]
    pub fn quadrants(&self) -> (&M, &M, &M, &M) {
        (&self.ll, &self.hl, &self.lh, &self.hh)
    }
}

impl<M: Multiplier> Multiplier for Quad<M> {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let m = self.bits / 2;
        let lo = mask(m);
        let (a, b) = (a & mask(self.bits), b & mask(self.bits));
        let (al, ah) = (a & lo, a >> m);
        let (bl, bh) = (b & lo, b >> m);
        combine_products(
            self.ll.multiply(al, bl),
            self.hl.multiply(ah, bl),
            self.lh.multiply(al, bh),
            self.hh.multiply(ah, bh),
            m,
            self.summation,
        )
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// The paper's `Ca` design: all sub-multipliers are the proposed
/// approximate 4×4 block; partial products are summed **accurately**
/// with carry-chain ternary adders.
///
/// Published 8×8 error profile (Table 5, asserted by tests): maximum
/// error 2 312, average error 54.1875, average relative error 0.0029,
/// 5 482 error occurrences, 14 maximum-error occurrences.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Ca;
/// use axmul_core::Multiplier;
///
/// let m = Ca::new(16)?;
/// assert_eq!(m.multiply(40000, 50000), 2_000_000_000); // usually exact
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ca {
    bits: u32,
    name: String,
}

impl Ca {
    /// Creates a `bits`×`bits` Ca multiplier (`bits` ∈ {4, 8, 16, 32}).
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] for other widths.
    pub fn new(bits: u32) -> Result<Self, WidthError> {
        check_width(bits, 4)?;
        Ok(Ca {
            bits,
            name: format!("Ca {bits}x{bits}"),
        })
    }

    /// Operand width.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl Multiplier for Ca {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        recurse(
            &approx_4x4,
            4,
            self.bits,
            Summation::Accurate,
            a & mask(self.bits),
            b & mask(self.bits),
        )
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// The paper's `Cc` design: the same approximate 4×4 sub-multipliers as
/// [`Ca`], but with the **highly-inaccurate carry-free summation** of
/// Fig. 6 at every recursion level, trading accuracy for area/latency.
///
/// Published 8×8 error profile (Table 5, asserted by tests): maximum
/// error 8 288 occurring exactly once, average error 1 592.265, average
/// relative error 0.1294, 52 731 error occurrences.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Cc;
/// use axmul_core::Multiplier;
///
/// let m = Cc::new(8)?;
/// // Carry-free summation can lose inter-column carries:
/// assert!(m.multiply(255, 255) <= 255 * 255);
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cc {
    bits: u32,
    name: String,
}

impl Cc {
    /// Creates a `bits`×`bits` Cc multiplier (`bits` ∈ {4, 8, 16, 32}).
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] for other widths.
    pub fn new(bits: u32) -> Result<Self, WidthError> {
        check_width(bits, 4)?;
        Ok(Cc {
            bits,
            name: format!("Cc {bits}x{bits}"),
        })
    }

    /// Operand width.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl Multiplier for Cc {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        recurse(
            &approx_4x4,
            4,
            self.bits,
            Summation::CarryFree,
            a & mask(self.bits),
            b & mask(self.bits),
        )
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table5_stats(m: &dyn Multiplier) -> (i64, f64, f64, u64, u64) {
        let mut occ = 0u64;
        let mut max = 0i64;
        let mut max_occ = 0u64;
        let mut sum = 0i64;
        let mut rel = 0.0f64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = m.error(a, b).abs();
                if e != 0 {
                    occ += 1;
                    sum += e;
                    rel += e as f64 / (a * b) as f64;
                    if e > max {
                        max = e;
                        max_occ = 1;
                    } else if e == max {
                        max_occ += 1;
                    }
                }
            }
        }
        (max, sum as f64 / 65536.0, rel / 65536.0, occ, max_occ)
    }

    #[test]
    fn ca8_matches_table5_exactly() {
        let m = Ca::new(8).unwrap();
        let (max, avg, are, occ, max_occ) = table5_stats(&m);
        assert_eq!(max, 2312);
        assert!((avg - 54.1875).abs() < 1e-9);
        assert!((are - 0.002917).abs() < 2e-6);
        assert_eq!(occ, 5482);
        assert_eq!(max_occ, 14);
    }

    #[test]
    fn cc8_matches_table5_exactly() {
        let m = Cc::new(8).unwrap();
        let (max, avg, are, occ, max_occ) = table5_stats(&m);
        assert_eq!(max, 8288);
        assert!((avg - 1592.265).abs() < 1e-3);
        assert!((are - 0.129390).abs() < 1e-6);
        assert_eq!(occ, 52731);
        assert_eq!(max_occ, 1);
    }

    #[test]
    fn ca_max_error_composes_from_sub_blocks() {
        // Max error = 8 + 2*8*16 + 8*256 = 2312: every sub-block errs.
        assert_eq!(8 + 2 * 8 * 16 + 8 * 256, 2312);
        let m = Ca::new(8).unwrap();
        // (multiplier 13, multiplicand 13) errs in the elementary block,
        // so 0xDD * 0xDD must collect the error in all four quadrants.
        assert_eq!(m.error(0xDD, 0xDD), 2312);
    }

    #[test]
    fn ca_with_4_bits_is_the_elementary_block() {
        let m = Ca::new(4).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(m.multiply(a, b), approx_4x4(a, b));
            }
        }
    }

    #[test]
    fn ca16_error_bound() {
        // Each of the 16 elementary blocks can err by at most 8 at its
        // weight; the exact sum bound for 16x16 is 8 * (sum of weights).
        let weights: u64 = (0..4)
            .flat_map(|i| (0..4).map(move |j| 1u64 << (4 * (i + j))))
            .sum();
        let bound = 8 * weights;
        let m = Ca::new(16).unwrap();
        let mut worst = 0i64;
        // Operands built from erroneous nibble pairs maximize error.
        for &a in &[0xDDDDu64, 0xFFFF, 0xF5F5, 0xDFDF] {
            for &b in &[0xDDDDu64, 0xFFFF, 0x5F5F, 0xDFDF] {
                worst = worst.max(m.error(a, b));
            }
        }
        assert_eq!(worst, bound as i64, "0xDDDD x 0xDDDD errs everywhere");
    }

    #[test]
    fn cc_never_overestimates_by_more_than_dropped_carries() {
        // Cc only drops carries and elementary -8s, so result <= exact.
        let m = Cc::new(8).unwrap();
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert!(m.multiply(a, b) <= a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn zero_operands_are_exact_everywhere() {
        for bits in [4u32, 8, 16, 32] {
            let ca = Ca::new(bits).unwrap();
            let cc = Cc::new(bits).unwrap();
            let top = mask(bits);
            for m in [&ca as &dyn Multiplier, &cc as &dyn Multiplier] {
                assert_eq!(m.multiply(0, top), 0);
                assert_eq!(m.multiply(top, 0), 0);
                assert_eq!(m.multiply(1, 1), 1);
            }
        }
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(Ca::new(3).is_err());
        assert!(Ca::new(6).is_err());
        assert!(Ca::new(2).is_err(), "below the 4-bit kernel");
        assert!(Ca::new(64).is_err(), "product would overflow u64");
        assert!(Cc::new(12).is_err());
    }

    #[test]
    fn generic_recursive_with_exact_kernel_is_exact() {
        let m = Recursive::new("X", 8, 2, |a, b| a * b, Summation::Accurate).unwrap();
        for a in (0..256u64).step_by(7) {
            for b in (0..256u64).step_by(5) {
                assert_eq!(m.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn quad_of_four_approx_blocks_is_ca() {
        use crate::behavioral::Approx4x4;
        let q = Quad::new(
            Approx4x4::new(),
            Approx4x4::new(),
            Approx4x4::new(),
            Approx4x4::new(),
            Summation::Accurate,
        )
        .unwrap();
        let ca = Ca::new(8).unwrap();
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(q.multiply(a, b), ca.multiply(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn quad_of_four_approx_blocks_carry_free_is_cc() {
        use crate::behavioral::Approx4x4;
        let q = Quad::new(
            Approx4x4::new(),
            Approx4x4::new(),
            Approx4x4::new(),
            Approx4x4::new(),
            Summation::CarryFree,
        )
        .unwrap();
        let cc = Cc::new(8).unwrap();
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(q.multiply(a, b), cc.multiply(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn heterogeneous_quad_confines_errors_to_approximate_quadrants() {
        use crate::behavioral::Approx4x4;
        use crate::Exact;
        // Only the LL quadrant is approximate: errors never exceed the
        // elementary block's magnitude-8 error at weight 1.
        let q = Quad::new(
            Box::new(Approx4x4::new()) as Box<dyn Multiplier>,
            Box::new(Exact::new(4, 4)),
            Box::new(Exact::new(4, 4)),
            Box::new(Exact::new(4, 4)),
            Summation::Accurate,
        )
        .unwrap();
        let mut worst = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                worst = worst.max(q.error(a, b).abs());
            }
        }
        assert_eq!(worst, 8);
    }

    #[test]
    fn quad_nests_to_16_bits() {
        use crate::behavioral::Approx4x4;
        let leaf = || -> Box<dyn Multiplier> { Box::new(Approx4x4::new()) };
        let node8 = || {
            Box::new(Quad::new(leaf(), leaf(), leaf(), leaf(), Summation::Accurate).unwrap())
                as Box<dyn Multiplier>
        };
        let q16 = Quad::new(node8(), node8(), node8(), node8(), Summation::Accurate).unwrap();
        let ca16 = Ca::new(16).unwrap();
        assert_eq!(q16.a_bits(), 16);
        for &a in &[0u64, 1, 0xDDDD, 0xFFFF, 40_000, 12_345] {
            for &b in &[0u64, 1, 0xDDDD, 0xFFFF, 50_000, 54_321] {
                assert_eq!(q16.multiply(a, b), ca16.multiply(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn quad_rejects_mismatched_quadrants() {
        use crate::Exact;
        let q = Quad::new(
            Exact::new(4, 4),
            Exact::new(4, 4),
            Exact::new(2, 2),
            Exact::new(4, 4),
            Summation::Accurate,
        );
        assert!(q.is_err());
        let rect = Quad::new(
            Exact::new(4, 2),
            Exact::new(4, 2),
            Exact::new(4, 2),
            Exact::new(4, 2),
            Summation::Accurate,
        );
        assert!(rect.is_err(), "rectangular quadrants rejected");
    }

    #[test]
    fn quad_names_and_renaming() {
        use crate::Exact;
        let q = Quad::new(
            Exact::new(4, 4),
            Exact::new(4, 4),
            Exact::new(4, 4),
            Exact::new(4, 4),
            Summation::CarryFree,
        )
        .unwrap();
        assert_eq!(q.name(), "Quadc 8x8");
        assert_eq!(q.summation(), Summation::CarryFree);
        let named = q.with_name("cfg:(c X X X X)");
        assert_eq!(named.name(), "cfg:(c X X X X)");
    }

    #[test]
    fn summation_display() {
        assert_eq!(Summation::Accurate.to_string(), "accurate");
        assert_eq!(Summation::CarryFree.to_string(), "carry-free");
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(Ca::new(16).unwrap().name(), "Ca 16x16");
        assert_eq!(Cc::new(8).unwrap().name(), "Cc 8x8");
    }
}
