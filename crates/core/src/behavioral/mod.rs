//! Bit-exact behavioral models of the paper's multiplier architectures.
//!
//! These are the closed-form "golden" models: fast enough for exhaustive
//! characterization and application-level simulation, and proven
//! equivalent to the structural LUT netlists (see [`crate::structural`])
//! by exhaustive tests.

mod elementary;
mod recursive;

pub use elementary::{
    accurate_4x2_product_bits, approx_4x2, approx_4x4, approx_4x4_accsum, Approx4x2, Approx4x4,
    Approx4x4AccSum, ErrorCase,
};
pub use recursive::{combine_products, Ca, Cc, Quad, Recursive, Summation};
