//! Run-time switchable error correction (paper §5.2).
//!
//! Fig. 8's observation that the proposed designs have *few distinct
//! errors* means "such type of architectures ... can be easily
//! configured to have an error-correction circuitry that can be turned
//! on/off according to applications' requirements". For the elementary
//! 4×4 block the entire error set is one condition with one fixed
//! magnitude, so the corrector is a single detector LUT plus a 5-bit
//! conditional increment:
//!
//! * detector: `fix = EN ∧ A0 ∧ B2 ∧ PP0⟨2⟩ ∧ PP0⟨3⟩ ∧ PP1⟨1⟩`
//!   (the saturated three-operand column at bit 3);
//! * correction: `P[7:3] += fix` via one carry chain.
//!
//! With `EN = 1` the block is exact on all 256 operand pairs; with
//! `EN = 0` it behaves identically to the plain approximate block.

use axmul_fabric::{Init, Netlist, NetlistBuilder};

use crate::behavioral::approx_4x4;
use crate::Multiplier;

/// Behavioral model of the correctable 4×4 block.
///
/// # Examples
///
/// ```
/// use axmul_core::correction::CorrectableApprox4x4;
/// use axmul_core::Multiplier;
///
/// let off = CorrectableApprox4x4::new(false);
/// let on = CorrectableApprox4x4::new(true);
/// assert_eq!(off.multiply(13, 13), 161); // approximate
/// assert_eq!(on.multiply(13, 13), 169);  // corrected
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrectableApprox4x4 {
    enabled: bool,
}

impl CorrectableApprox4x4 {
    /// Creates the block with the correction circuit on or off.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        CorrectableApprox4x4 { enabled }
    }

    /// Whether correction is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

impl Multiplier for CorrectableApprox4x4 {
    fn a_bits(&self) -> u32 {
        4
    }
    fn b_bits(&self) -> u32 {
        4
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        if self.enabled {
            (a & 0xF) * (b & 0xF)
        } else {
            approx_4x4(a, b)
        }
    }
    fn name(&self) -> &str {
        if self.enabled {
            "Approx4x4+corr(on)"
        } else {
            "Approx4x4+corr(off)"
        }
    }
}

/// Builds the correctable 4×4 netlist: the Table 3 block plus the
/// detector LUT, a correction carry chain, and an `en` input.
///
/// Structure: 13 LUTs (12 + detector) and 3 `CARRY4`s (the block's own
/// chain plus the 5-bit conditional increment); on the device the
/// increment's pass-through `S` pins ride the slice bypass inputs.
///
/// # Examples
///
/// ```
/// use axmul_core::correction::correctable_4x4_netlist;
///
/// let nl = correctable_4x4_netlist();
/// assert_eq!(nl.eval(&[13, 13, 0])?, vec![161]); // en = 0: approximate
/// assert_eq!(nl.eval(&[13, 13, 1])?, vec![169]); // en = 1: exact
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[must_use]
pub fn correctable_4x4_netlist() -> Netlist {
    let base = crate::structural::approx_4x4_netlist();
    let mut bld = NetlistBuilder::new("approx4x4_correctable");
    let a = bld.inputs("a", 4);
    let b = bld.inputs("b", 4);
    let en = bld.inputs("en", 1);
    let p = bld.instantiate(&base, &[&a, &b]).remove(0);
    let zero = bld.constant(false);

    // Detector: fix = en & A0 & B2 & PP0<2> & PP0<3> & PP1<1>.
    // Recompute the three partial-product bits from primary inputs
    // (they are 5-input functions; folding the conjunction of all
    // three conditions with A0/B2/EN needs A0..A3, B0..B3, EN = 9
    // inputs, so the detector re-derives the condition directly from
    // the full operands: fix = en AND [the 6 Table 2 input pairs]).
    // A 9-input function needs two LUTs: one for the 8-input operand
    // condition restricted to A (I5..I0 = B operand is folded in by
    // the second LUT). Simplest exact mapping: one LUT6 computes the
    // condition on (A3..A0, B1, B0); a second folds (B3, B2, en).
    let cond_ab = |a_val: u64, b_lo: u64, b_hi: u64| -> bool {
        let bv = (b_hi << 2) | b_lo;
        let pp0 = a_val * b_lo;
        let pp1 = a_val * b_hi;
        let _ = bv;
        pp0 >> 2 & 1 == 1 && pp0 >> 3 & 1 == 1 && pp1 & 1 == 1 && pp1 >> 1 & 1 == 1
    };
    // First LUT: for each B-high pattern the condition differs, so
    // summarize per (A, B-low) whether the condition holds for b_hi in
    // {1, 3} (the only patterns with PP1<0> = 1 require B2 = 1; B3
    // distinguishes 1 from 3).
    let c_b2 = Init::from_fn(|i| {
        let a_val = u64::from(i) & 0xF;
        let b_lo = (u64::from(i) >> 4) & 3;
        cond_ab(a_val, b_lo, 1)
    });
    let c_b2b3 = Init::from_fn(|i| {
        let a_val = u64::from(i) & 0xF;
        let b_lo = (u64::from(i) >> 4) & 3;
        cond_ab(a_val, b_lo, 3)
    });
    let cond_if_b2 = bld.lut6(c_b2, [a[0], a[1], a[2], a[3], b[0], b[1]]);
    let cond_if_b2b3 = bld.lut6(c_b2b3, [a[0], a[1], a[2], a[3], b[0], b[1]]);
    // Fold: fix = en & B2 & (B3 ? cond_if_b2b3 : cond_if_b2).
    let fold = Init::from_fn(|i| {
        let en_v = i & 1 == 1;
        let b2 = i >> 1 & 1 == 1;
        let b3 = i >> 2 & 1 == 1;
        let c1 = i >> 3 & 1 == 1; // cond for b_hi = 1
        let c3 = i >> 4 & 1 == 1; // cond for b_hi = 3
        en_v && b2 && if b3 { c3 } else { c1 }
    });
    let fix = bld.lut6(fold, [en[0], b[2], b[3], cond_if_b2, cond_if_b2b3, zero]);

    // Correction: P[7:3] += fix (carry-in driven increment).
    let props: Vec<_> = p[3..8].to_vec();
    let gens = vec![zero; 5];
    let (sums, _) = bld.carry_chain(fix, &props, &gens);
    let mut out = p[..3].to_vec();
    out.extend(sums);
    bld.output_bus("p", &out);
    bld.finish().expect("correctable netlist is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_contract() {
        let off = CorrectableApprox4x4::new(false);
        let on = CorrectableApprox4x4::new(true);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(off.multiply(a, b), approx_4x4(a, b));
                assert_eq!(on.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn netlist_matches_both_modes_exhaustively() {
        let nl = correctable_4x4_netlist();
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    nl.eval(&[a, b, 0]).unwrap()[0],
                    approx_4x4(a, b),
                    "en=0 a={a} b={b}"
                );
                assert_eq!(nl.eval(&[a, b, 1]).unwrap()[0], a * b, "en=1 a={a} b={b}");
            }
        }
    }

    #[test]
    fn correction_overhead_is_three_luts() {
        let base = crate::structural::approx_4x4_netlist();
        let corr = correctable_4x4_netlist();
        assert_eq!(corr.lut_count(), base.lut_count() + 3);
    }

    #[test]
    fn names_reflect_mode() {
        use crate::Multiplier;
        assert!(CorrectableApprox4x4::new(true).name().contains("on"));
        assert!(CorrectableApprox4x4::new(false).name().contains("off"));
    }
}
