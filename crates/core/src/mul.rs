use std::fmt;

/// Error returned when constructing a multiplier with an unsupported
/// operand width.
///
/// The recursive constructions of the paper require power-of-two widths
/// of at least 4 bits (4, 8, 16, 32, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthError {
    /// The rejected width.
    pub bits: u32,
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported operand width {} (need a power of two >= 4, <= 32)",
            self.bits
        )
    }
}

impl std::error::Error for WidthError {}

/// An unsigned integer multiplier with fixed operand widths.
///
/// This is the interface every architecture in the library — proposed,
/// baseline, exact — implements, and the interface the error-metrics
/// engine, the SUSAN accelerator, and the benchmark harness consume.
///
/// Operands wider than the declared widths are truncated (masked) to
/// the declared widths, so `multiply` never panics on value range.
///
/// # Examples
///
/// ```
/// use axmul_core::{Exact, Multiplier};
///
/// let m = Exact::new(8, 8);
/// assert_eq!(m.multiply(255, 255), 65025);
/// assert_eq!(m.error(255, 255), 0);
/// ```
pub trait Multiplier {
    /// Width of the first (multiplicand, `A`) operand in bits.
    fn a_bits(&self) -> u32;

    /// Width of the second (multiplier, `B`) operand in bits.
    fn b_bits(&self) -> u32;

    /// Computes the (possibly approximate) product of `a` and `b`.
    ///
    /// Operands are masked to [`Multiplier::a_bits`] /
    /// [`Multiplier::b_bits`] bits first.
    fn multiply(&self, a: u64, b: u64) -> u64;

    /// Short architecture name, e.g. `"Ca 8x8"`, used in reports.
    fn name(&self) -> &str;

    /// The exact product of the masked operands.
    fn exact(&self, a: u64, b: u64) -> u64 {
        (a & mask(self.a_bits())) * (b & mask(self.b_bits()))
    }

    /// Signed error `exact - approximate` for the given operands.
    ///
    /// Positive means the approximate result is *smaller* than the true
    /// product (the convention of the paper's Table 2 "Difference"
    /// column).
    fn error(&self, a: u64, b: u64) -> i64 {
        self.exact(a, b) as i64 - self.multiply(a, b) as i64
    }

    /// Exhaustive product table, indexed `table[(b << a_bits) | a]` —
    /// the same layout the DSE characterization cache uses.
    ///
    /// One lookup replaces one (possibly deeply recursive) `multiply`
    /// call, which is what makes table-driven consumers like the
    /// `axmul-nn` inference engine practical: an 8×8 table is 65 536
    /// entries built once per multiplier configuration.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2²⁰ pairs (the table would
    /// stop fitting comfortably in memory; wider multipliers should be
    /// sampled, not tabulated).
    fn product_table(&self) -> Vec<u64> {
        let (wa, wb) = (self.a_bits(), self.b_bits());
        assert!(
            wa + wb <= 20,
            "product table over {wa}x{wb} operands would need 2^{} entries",
            wa + wb
        );
        let mut table = Vec::with_capacity(1usize << (wa + wb));
        for b in 0..=mask_for(wb) {
            for a in 0..=mask_for(wa) {
                table.push(self.multiply(a, b));
            }
        }
        table
    }
}

/// A multiplier frozen into its exhaustive product table.
///
/// Behaviorally a drop-in replacement for the wrapped design (same
/// widths, same `name`, bit-identical products — property-tested across
/// the whole roster in `tests/product_table.rs`), but every `multiply`
/// is one indexed load instead of a model evaluation. This is the fast
/// path behind batch consumers such as the `axmul-nn` inference engine
/// and trace-driven error analysis.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Ca;
/// use axmul_core::{Multiplier, TableMultiplier};
///
/// let ca = Ca::new(8)?;
/// let t = TableMultiplier::new(&ca);
/// assert_eq!(t.name(), ca.name());
/// assert_eq!(t.multiply(200, 100), ca.multiply(200, 100));
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMultiplier {
    a_bits: u32,
    b_bits: u32,
    name: String,
    table: std::sync::Arc<Vec<u64>>,
}

impl TableMultiplier {
    /// Tabulates `m` exhaustively. The name is preserved so reports and
    /// statistics stay attributable to the underlying architecture.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2²⁰ pairs (see
    /// [`Multiplier::product_table`]).
    #[must_use]
    pub fn new(m: &(impl Multiplier + ?Sized)) -> Self {
        TableMultiplier {
            a_bits: m.a_bits(),
            b_bits: m.b_bits(),
            name: m.name().to_string(),
            table: std::sync::Arc::new(m.product_table()),
        }
    }

    /// The raw table, indexed `table[(b << a_bits) | a]`.
    #[must_use]
    pub fn table(&self) -> &[u64] {
        &self.table
    }
}

impl Multiplier for TableMultiplier {
    fn a_bits(&self) -> u32 {
        self.a_bits
    }
    fn b_bits(&self) -> u32 {
        self.b_bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & mask(self.a_bits), b & mask(self.b_bits));
        self.table[((b << self.a_bits) | a) as usize]
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Bit mask with the low `bits` bits set (saturating at 64 bits).
///
/// # Examples
///
/// ```
/// assert_eq!(axmul_core::mask_for(4), 0xF);
/// assert_eq!(axmul_core::mask_for(64), u64::MAX);
/// ```
#[must_use]
pub const fn mask_for(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

pub(crate) use mask_for as mask;

impl<M: Multiplier + ?Sized> Multiplier for &M {
    fn a_bits(&self) -> u32 {
        (**self).a_bits()
    }
    fn b_bits(&self) -> u32 {
        (**self).b_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        (**self).multiply(a, b)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<M: Multiplier + ?Sized> Multiplier for Box<M> {
    fn a_bits(&self) -> u32 {
        (**self).a_bits()
    }
    fn b_bits(&self) -> u32 {
        (**self).b_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        (**self).multiply(a, b)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<M: Multiplier + ?Sized> Multiplier for std::sync::Arc<M> {
    fn a_bits(&self) -> u32 {
        (**self).a_bits()
    }
    fn b_bits(&self) -> u32 {
        (**self).b_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        (**self).multiply(a, b)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The exact (error-free) multiplier; the reference every approximate
/// design is characterized against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exact {
    a_bits: u32,
    b_bits: u32,
    name: String,
}

impl Exact {
    /// Creates an exact `a_bits`×`b_bits` multiplier.
    ///
    /// # Panics
    ///
    /// Panics if a width is 0 or the product would overflow `u64`
    /// (`a_bits + b_bits > 64`).
    #[must_use]
    pub fn new(a_bits: u32, b_bits: u32) -> Self {
        assert!(a_bits > 0 && b_bits > 0, "widths must be nonzero");
        assert!(a_bits + b_bits <= 64, "product must fit in u64");
        Exact {
            a_bits,
            b_bits,
            name: format!("Exact {a_bits}x{b_bits}"),
        }
    }
}

impl Multiplier for Exact {
    fn a_bits(&self) -> u32 {
        self.a_bits
    }
    fn b_bits(&self) -> u32 {
        self.b_bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        (a & mask(self.a_bits)) * (b & mask(self.b_bits))
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Operand-swapping adapter: `Swapped(m).multiply(a, b) == m.multiply(b, a)`.
///
/// The paper's proposed 4×4 block is *asymmetric*: its error cases
/// depend on which operand plays multiplicand. Section 5 exploits this
/// by swapping operands (`Cas`, `Ccs`) when the application's operand
/// distribution favors it, improving SUSAN PSNR from 33.7 dB to
/// 59.1 dB.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Approx4x4;
/// use axmul_core::{Multiplier, Swapped};
///
/// let m = Approx4x4::new();
/// let ms = Swapped::new(m.clone());
/// assert_eq!(m.multiply(7, 6), 34);  // erroneous orientation
/// assert_eq!(ms.multiply(7, 6), 42); // swapped: exact
/// assert_eq!(ms.name(), "Approx4x4s");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Swapped<M> {
    inner: M,
    name: String,
}

impl<M: Multiplier> Swapped<M> {
    /// Wraps `inner`, swapping its operands. The name gains an `s`
    /// suffix on the architecture token (`"Ca 8x8"` → `"Cas 8x8"`).
    #[must_use]
    pub fn new(inner: M) -> Self {
        let name = match inner.name().split_once(' ') {
            Some((arch, rest)) => format!("{arch}s {rest}"),
            None => format!("{}s", inner.name()),
        };
        Swapped { inner, name }
    }

    /// Returns the wrapped multiplier.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Multiplier> Multiplier for Swapped<M> {
    fn a_bits(&self) -> u32 {
        self.inner.b_bits()
    }
    fn b_bits(&self) -> u32 {
        self.inner.a_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.inner.multiply(b, a)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Signed-arithmetic adapter: drives an unsigned approximate core with
/// operand magnitudes and reapplies the sign — the standard way the
/// paper's unsigned library extends to two's-complement datapaths
/// (as its authors later did in their follow-up signed library).
///
/// An `n`-bit signed operand has magnitude at most `2^(n-1)`, which
/// fits the same `n`-bit unsigned core.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Ca;
/// use axmul_core::Signed;
///
/// let m = Signed::new(Ca::new(8)?);
/// assert_eq!(m.multiply_signed(-100, 3), -300);
/// assert_eq!(m.multiply_signed(-13, -13), 169 - 8); // approximation carries over
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signed<M> {
    inner: M,
    name: String,
}

impl<M: Multiplier> Signed<M> {
    /// Wraps an unsigned core.
    #[must_use]
    pub fn new(inner: M) -> Self {
        let name = format!("signed {}", inner.name());
        Signed { inner, name }
    }

    /// Signed operand range of the first operand:
    /// `-(2^(n-1)) ..= 2^(n-1) - 1`.
    #[must_use]
    pub fn a_range(&self) -> (i64, i64) {
        let h = 1i64 << (self.inner.a_bits() - 1);
        (-h, h - 1)
    }

    /// Signed operand range of the second operand.
    #[must_use]
    pub fn b_range(&self) -> (i64, i64) {
        let h = 1i64 << (self.inner.b_bits() - 1);
        (-h, h - 1)
    }

    /// Computes the (possibly approximate) signed product.
    ///
    /// # Panics
    ///
    /// Panics if an operand is outside its two's-complement range.
    #[must_use]
    pub fn multiply_signed(&self, a: i64, b: i64) -> i64 {
        let (alo, ahi) = self.a_range();
        let (blo, bhi) = self.b_range();
        assert!((alo..=ahi).contains(&a), "a = {a} out of [{alo}, {ahi}]");
        assert!((blo..=bhi).contains(&b), "b = {b} out of [{blo}, {bhi}]");
        let mag = self.inner.multiply(a.unsigned_abs(), b.unsigned_abs()) as i64;
        if (a < 0) != (b < 0) {
            -mag
        } else {
            mag
        }
    }

    /// The exact signed product.
    #[must_use]
    pub fn exact_signed(&self, a: i64, b: i64) -> i64 {
        a * b
    }

    /// The wrapped unsigned core.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Adapter name (`"signed <core>"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_masks_operands() {
        let m = Exact::new(4, 4);
        assert_eq!(m.multiply(0x1F, 2), 30, "0x1F masks to 0xF");
        assert_eq!(m.exact(0x1F, 2), 30);
        assert_eq!(m.error(0x1F, 2), 0);
    }

    #[test]
    #[should_panic(expected = "fit in u64")]
    fn exact_rejects_overflowing_widths() {
        let _ = Exact::new(40, 40);
    }

    #[test]
    fn swapped_swaps() {
        #[derive(Debug)]
        struct Sub;
        impl Multiplier for Sub {
            fn a_bits(&self) -> u32 {
                4
            }
            fn b_bits(&self) -> u32 {
                2
            }
            fn multiply(&self, a: u64, b: u64) -> u64 {
                (a & 0xF).wrapping_sub(b & 3) // deliberately asymmetric
            }
            fn name(&self) -> &str {
                "Sub 4x2"
            }
        }
        let s = Swapped::new(Sub);
        assert_eq!(s.a_bits(), 2);
        assert_eq!(s.b_bits(), 4);
        assert_eq!(s.multiply(1, 5), 4); // = Sub.multiply(5, 1)
        assert_eq!(s.name(), "Subs 4x2");
    }

    #[test]
    fn trait_objects_and_refs_work() {
        let m = Exact::new(8, 8);
        let r: &dyn Multiplier = &m;
        assert_eq!(r.multiply(3, 4), 12);
        let b: Box<dyn Multiplier> = Box::new(m);
        assert_eq!(b.multiply(5, 5), 25);
        assert_eq!(b.name(), "Exact 8x8");
    }

    #[test]
    fn width_error_display() {
        let e = WidthError { bits: 5 };
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn mask_is_correct() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(4), 0xF);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn signed_exact_core_is_exact_everywhere() {
        let m = Signed::new(Exact::new(8, 8));
        for a in -128i64..=127 {
            for b in -128i64..=127 {
                assert_eq!(m.multiply_signed(a, b), a * b, "{a}x{b}");
            }
        }
    }

    #[test]
    fn signed_error_magnitude_matches_unsigned() {
        use crate::behavioral::Approx4x4;
        let m = Signed::new(Approx4x4::new());
        // (-7) * 6: magnitude path hits the (7, 6) error case.
        assert_eq!(m.multiply_signed(-7, 6), -(42 - 8));
        assert_eq!(m.multiply_signed(7, -6), -(42 - 8));
        assert_eq!(m.multiply_signed(-7, -6), 42 - 8);
        assert_eq!(m.multiply_signed(-6, 7), -42, "swapped magnitudes exact");
    }

    #[test]
    fn signed_full_range_including_minimum() {
        let m = Signed::new(Exact::new(8, 8));
        assert_eq!(m.a_range(), (-128, 127));
        assert_eq!(m.multiply_signed(-128, -128), 16384);
        assert_eq!(m.multiply_signed(-128, 127), -16256);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn signed_rejects_out_of_range() {
        let m = Signed::new(Exact::new(8, 8));
        let _ = m.multiply_signed(128, 0);
    }

    #[test]
    fn product_table_layout_matches_dse_convention() {
        let m = Exact::new(3, 2);
        let t = m.product_table();
        assert_eq!(t.len(), 32);
        for b in 0..4u64 {
            for a in 0..8u64 {
                assert_eq!(t[((b << 3) | a) as usize], a * b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "product table")]
    fn product_table_rejects_wide_operands() {
        let _ = Exact::new(16, 16).product_table();
    }

    #[test]
    fn table_multiplier_is_a_drop_in_replacement() {
        use crate::behavioral::{Approx4x4, Ca};
        let ca = Ca::new(8).unwrap();
        let t = TableMultiplier::new(&ca);
        assert_eq!(t.name(), "Ca 8x8");
        assert_eq!((t.a_bits(), t.b_bits()), (8, 8));
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(t.multiply(a, b), ca.multiply(a, b), "{a}x{b}");
            }
        }
        // Masking semantics carry over too.
        assert_eq!(t.multiply(0x1FF, 0x1FF), ca.multiply(0xFF, 0xFF));
        // Works through a trait object as well.
        let dyn_m: &dyn Multiplier = &Approx4x4::new();
        let td = TableMultiplier::new(dyn_m);
        assert_eq!(td.multiply(7, 6), 34);
        assert_eq!(td.table().len(), 256);
    }
}
