//! # axmul-core
//!
//! The primary contribution of the DAC'18 paper *"Area-Optimized
//! Low-Latency Approximate Multipliers for FPGA-based Hardware
//! Accelerators"* (Ullah, Rehman, Prabakaran, Kriebel, Hanif, Shafique,
//! Kumar), in two coupled representations.
//!
//! ## Behavioral models ([`behavioral`])
//!
//! Closed-form, bit-exact models of every architecture the paper
//! proposes:
//!
//! * [`behavioral::Approx4x2`] — the elementary 4×2 multiplier with
//!   product bit `P0` truncated (fits one slice: 4 LUTs).
//! * [`behavioral::Approx4x4AccSum`] — two approximate 4×2 multipliers
//!   with accurate partial-product summation (the 16-LUT reference
//!   point of §3.2).
//! * [`behavioral::Approx4x4`] — the proposed optimized, asymmetric
//!   4×4 multiplier: 12 LUTs, exactly six erroneous input pairs, fixed
//!   error magnitude 8 (Tables 2 and 3).
//! * [`behavioral::Ca`] / [`behavioral::Cc`] — recursive 2M×2M
//!   multipliers with accurate (Ca) or carry-free approximate (Cc)
//!   summation of the approximate partial products (Figs. 5 and 6).
//! * [`Swapped`] — operand-swapped variants (the paper's `Cas`/`Ccs`),
//!   exploiting the asymmetry of the elementary block.
//!
//! ## Structural netlists ([`structural`])
//!
//! The same architectures as LUT6_2/CARRY4 netlists on the
//! [`axmul_fabric`] fabric model, including the paper's published
//! Table 3 INIT values verbatim. Tests prove structural ≡ behavioral
//! exhaustively.
//!
//! ## Quick example
//!
//! ```
//! use axmul_core::behavioral::{Approx4x4, Ca};
//! use axmul_core::Multiplier;
//!
//! let m = Approx4x4::new();
//! assert_eq!(m.multiply(6, 7), 42);  // exact for most inputs...
//! assert_eq!(m.multiply(7, 6), 34);  // ...but 7·6 -> 42-8 (Table 2)
//!
//! let ca8 = Ca::new(8)?;
//! assert_eq!(ca8.multiply(200, 100), 20000); // usually exact
//! # Ok::<(), axmul_core::WidthError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavioral;
pub mod correction;
mod mul;
pub mod structural;

pub use mul::{mask_for, Exact, Multiplier, Signed, Swapped, TableMultiplier, WidthError};
