//! The proposed approximate 4×4 multiplier exactly as published in
//! Table 3 of the paper: twelve `LUT6_2` instances (INIT values and pin
//! assignments verbatim) plus a single `CARRY4` computing `P3..P7`.
//!
//! [`verify_table3`] independently *re-derives* every INIT value from
//! the multiplier's logic equations and compares it against the
//! published constant on all reachable truth-table indices (pins tied
//! to constant `1` make part of the table unreachable; the published
//! constants contain don't-care zeros there).

use axmul_fabric::{Init, NetId, Netlist, NetlistBuilder};

/// Symbolic name of a LUT input pin in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pin {
    /// Tied to logic `1`.
    One,
    /// Multiplicand bit `A<i>`.
    A(u8),
    /// Multiplier bit `B<i>`.
    B(u8),
    /// Partial product bit `PP0<i>` (first 4×2 result).
    Pp0(u8),
    /// Partial product bit `PP1<i>` (second 4×2 result).
    Pp1(u8),
}

/// One row of Table 3: LUT name, pin assignment (`I5..I0`, as printed),
/// and the published INIT value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Row {
    /// LUT instance name, `LUT0`..`LUT11`.
    pub name: &'static str,
    /// Pins in the paper's printed order `[I5, I4, I3, I2, I1, I0]`.
    pub pins: [Pin; 6],
    /// Published INIT value.
    pub init: u64,
}

use Pin::{One, Pp0, Pp1, A, B};

/// Table 3 of the paper, verbatim.
pub const TABLE3: [Table3Row; 12] = [
    Table3Row {
        name: "LUT0",
        pins: [One, B(1), B(0), A(2), A(1), A(0)],
        init: 0xB4CC_F000_66AA_CC00,
    },
    Table3Row {
        name: "LUT1",
        pins: [B(1), B(0), A(3), A(2), A(1), A(0)],
        init: 0xC738_F0F0_FF00_0000,
    },
    Table3Row {
        name: "LUT2",
        pins: [B(1), B(0), A(3), A(2), A(1), A(0)],
        init: 0x07C0_FF00_0000_0000,
    },
    Table3Row {
        name: "LUT3",
        pins: [B(1), B(0), A(3), A(2), A(1), A(0)],
        init: 0xF800_0000_0000_0000,
    },
    Table3Row {
        name: "LUT4",
        pins: [One, B(3), B(2), A(2), A(1), A(0)],
        init: 0xB4CC_F000_66AA_CC00,
    },
    Table3Row {
        name: "LUT5",
        pins: [B(3), B(2), A(3), A(2), A(1), A(0)],
        init: 0xC738_F0F0_FF00_0000,
    },
    Table3Row {
        name: "LUT6",
        pins: [B(3), B(2), A(3), A(2), A(1), A(0)],
        init: 0xF800_0000_0000_0000,
    },
    Table3Row {
        name: "LUT7",
        pins: [One, One, Pp0(2), B(2), B(0), A(0)],
        init: 0x5FA0_5FA0_8888_8888,
    },
    Table3Row {
        name: "LUT8",
        pins: [One, Pp1(1), Pp0(3), B(2), A(0), Pp0(2)],
        init: 0x007F_7F80_FF80_8000,
    },
    Table3Row {
        name: "LUT9",
        pins: [One, One, One, One, Pp1(2), Pp0(4)],
        init: 0x6666_6666_8888_8880,
    },
    Table3Row {
        name: "LUT10",
        pins: [One, One, One, One, Pp1(3), Pp0(5)],
        init: 0x6666_6666_8888_8880,
    },
    Table3Row {
        name: "LUT11",
        pins: [B(3), B(2), A(3), A(2), A(1), A(0)],
        init: 0x07C0_FF00_0000_0000,
    },
];

/// Builds the proposed approximate 4×4 multiplier netlist from the
/// published Table 3 constants: 12 LUTs and one `CARRY4`.
///
/// Input buses `a` and `b` (4 bits each), output bus `p` (8 bits).
/// A `cargo test` exhaustively proves the netlist equal to
/// [`crate::behavioral::approx_4x4`] on all 256 operand pairs.
///
/// # Examples
///
/// ```
/// use axmul_core::structural::approx_4x4_netlist;
///
/// let nl = approx_4x4_netlist();
/// assert_eq!(nl.lut_count(), 12);   // Table 4: 12 LUTs at 4x4
/// assert_eq!(nl.carry4_count(), 1); // "one single carry chain"
/// assert_eq!(nl.eval(&[13, 13])?, vec![161]); // Table 2: 169 - 8
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[must_use]
pub fn approx_4x4_netlist() -> Netlist {
    let mut bld = NetlistBuilder::new("approx4x4_table3");
    let a = bld.inputs("a", 4);
    let b = bld.inputs("b", 4);
    let one = bld.constant(true);
    let zero = bld.constant(false);

    // Resolve a symbolic pin to a net. PP0/PP1 bits must already have
    // been produced by earlier LUTs (Table 3 is in dependency order).
    let resolve = |pin: Pin, pp0: &[Option<NetId>; 6], pp1: &[Option<NetId>; 6]| -> NetId {
        match pin {
            One => one,
            A(i) => a[i as usize],
            B(i) => b[i as usize],
            Pp0(i) => pp0[i as usize].expect("PP0 bit produced by an earlier LUT"),
            Pp1(i) => pp1[i as usize].expect("PP1 bit produced by an earlier LUT"),
        }
    };

    let mut pp0: [Option<NetId>; 6] = [None; 6];
    let mut pp1: [Option<NetId>; 6] = [None; 6];

    let pins_of = |row: &Table3Row, pp0: &[Option<NetId>; 6], pp1: &[Option<NetId>; 6]| {
        // Table prints I5..I0; the fabric expects [I0..I5].
        let p = row.pins;
        [
            resolve(p[5], pp0, pp1),
            resolve(p[4], pp0, pp1),
            resolve(p[3], pp0, pp1),
            resolve(p[2], pp0, pp1),
            resolve(p[1], pp0, pp1),
            resolve(p[0], pp0, pp1),
        ]
    };

    let lut = |bld: &mut NetlistBuilder, row: &Table3Row, pp0: &_, pp1: &_| {
        bld.lut6_2(Init::from_raw(row.init), pins_of(row, pp0, pp1))
    };
    let lut_o6 = |bld: &mut NetlistBuilder, row: &Table3Row, pp0: &_, pp1: &_| {
        bld.lut6(Init::from_raw(row.init), pins_of(row, pp0, pp1))
    };

    // LUT0: O6 = PP0<2>, O5 = PP0<1> (= P1).
    let (o6, o5) = lut(&mut bld, &TABLE3[0], &pp0, &pp1);
    pp0[2] = Some(o6);
    pp0[1] = Some(o5);
    // LUT1..LUT3: PP0<3..5>.
    pp0[3] = Some(lut_o6(&mut bld, &TABLE3[1], &pp0, &pp1));
    pp0[4] = Some(lut_o6(&mut bld, &TABLE3[2], &pp0, &pp1));
    pp0[5] = Some(lut_o6(&mut bld, &TABLE3[3], &pp0, &pp1));
    // LUT4: PP1<2>, PP1<1>.
    let (o6, o5) = lut(&mut bld, &TABLE3[4], &pp0, &pp1);
    pp1[2] = Some(o6);
    pp1[1] = Some(o5);
    // LUT5: PP1<3>.
    pp1[3] = Some(lut_o6(&mut bld, &TABLE3[5], &pp0, &pp1));
    // LUT6: Gen3 (implicit PP1<5>).
    let gen3 = lut_o6(&mut bld, &TABLE3[6], &pp0, &pp1);
    // LUT7: O6 = P2, O5 = P0 (the LUT recovered by the optimization).
    let (p2, p0) = lut(&mut bld, &TABLE3[7], &pp0, &pp1);
    // LUT8: O6 = Prop0, O5 = Gen0 (carry-compensated bit 3).
    let (prop0, gen0) = lut(&mut bld, &TABLE3[8], &pp0, &pp1);
    // LUT9/LUT10: Prop1/Gen1, Prop2/Gen2.
    let (prop1, gen1) = lut(&mut bld, &TABLE3[9], &pp0, &pp1);
    let (prop2, gen2) = lut(&mut bld, &TABLE3[10], &pp0, &pp1);
    // LUT11: Prop3 (implicit PP1<4>).
    let prop3 = lut_o6(&mut bld, &TABLE3[11], &pp0, &pp1);

    // One CARRY4: P3..P6 sums, P7 = final carry out.
    let (sums, p7) = bld.carry4(zero, [prop0, prop1, prop2, prop3], [gen0, gen1, gen2, gen3]);
    let p1 = pp0[1].expect("set by LUT0");
    bld.output_bus("p", &[p0, p1, p2, sums[0], sums[1], sums[2], sums[3], p7]);
    bld.finish().expect("table3 netlist is well-formed")
}

/// Outcome of re-deriving one Table 3 INIT from the logic equations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Check {
    /// LUT name.
    pub name: &'static str,
    /// Published INIT.
    pub published: Init,
    /// Derived INIT with zeros at unreachable (don't-care) indices.
    pub derived: Init,
    /// Whether published and derived agree on every reachable index of
    /// both `O6` and `O5`.
    pub matches: bool,
    /// Number of truth-table indices reachable given the constant ties.
    pub reachable: u32,
}

// The signal each Table 3 LUT computes, as a function of the 4-bit
// operands. Returns (o6, o5) where o5 is `None` for single-output LUTs.
fn expected_outputs(name: &str, a: u64, b: u64) -> (bool, Option<bool>) {
    let pp0 = a * (b & 3);
    let pp1 = a * (b >> 2);
    let bit = |v: u64, i: u32| v >> i & 1 == 1;
    // The carry dropped between P2 and P3 (PP1<0> = A0 & B2).
    let c2 = bit(pp0, 2) && bit(a, 0) && bit(b, 2);
    let digit3 = u32::from(bit(pp0, 3)) + u32::from(bit(pp1, 1)) + u32::from(c2);
    match name {
        "LUT0" => (bit(pp0, 2), Some(bit(pp0, 1))),
        "LUT1" => (bit(pp0, 3), None),
        "LUT2" => (bit(pp0, 4), None),
        "LUT3" => (bit(pp0, 5), None),
        "LUT4" => (bit(pp1, 2), Some(bit(pp1, 1))),
        "LUT5" => (bit(pp1, 3), None),
        "LUT6" => (bit(pp1, 5), None), // Gen3
        "LUT7" => (
            bit(pp0, 2) ^ (bit(a, 0) && bit(b, 2)), // P2 (sum, carry deferred)
            Some(bit(a, 0) && bit(b, 0)),           // P0
        ),
        // Prop0/Gen0: three-operand column at bit 3; the saturated case
        // (digit 3) computes only the generate correctly (prop = 0).
        "LUT8" => (digit3 == 1, Some(digit3 >= 2)),
        "LUT9" => (bit(pp0, 4) ^ bit(pp1, 2), Some(bit(pp0, 4) && bit(pp1, 2))),
        "LUT10" => (bit(pp0, 5) ^ bit(pp1, 3), Some(bit(pp0, 5) && bit(pp1, 3))),
        "LUT11" => (bit(pp1, 4), None), // Prop3
        _ => unreachable!("unknown Table 3 LUT `{name}`"),
    }
}

fn pin_value(pin: Pin, a: u64, b: u64) -> bool {
    let pp0 = a * (b & 3);
    let pp1 = a * (b >> 2);
    match pin {
        One => true,
        A(i) => a >> i & 1 == 1,
        B(i) => b >> i & 1 == 1,
        Pp0(i) => pp0 >> i & 1 == 1,
        Pp1(i) => pp1 >> i & 1 == 1,
    }
}

/// Re-derives every Table 3 INIT value from the multiplier's logic
/// equations and compares it with the published constant.
///
/// For each of the 256 operand pairs, the pin values select a
/// truth-table index whose required `O6`/`O5` outputs are computed from
/// first principles; indices never selected are don't-cares (the
/// published constants hold zeros there). A `matches == true` result
/// for all twelve rows proves that the published table implements
/// exactly the behavioral model.
#[must_use]
pub fn verify_table3() -> Vec<Table3Check> {
    TABLE3
        .iter()
        .map(|row| {
            let published = Init::from_raw(row.init);
            let mut derived = 0u64;
            let mut reach6 = 0u64;
            let mut reach5 = 0u32;
            let mut derived5 = 0u32;
            let mut ok = true;
            for a in 0..16u64 {
                for b in 0..16u64 {
                    // Printed order is I5..I0.
                    let mut idx = 0u8;
                    for (k, pin) in row.pins.iter().enumerate() {
                        if pin_value(*pin, a, b) {
                            idx |= 1 << (5 - k);
                        }
                    }
                    let (o6, o5) = expected_outputs(row.name, a, b);
                    // Consistency: a reachable index must demand one value.
                    if reach6 >> idx & 1 == 1 {
                        if (derived >> idx & 1 == 1) != o6 {
                            ok = false;
                        }
                    } else {
                        reach6 |= 1 << idx;
                        if o6 {
                            derived |= 1 << idx;
                        }
                    }
                    if published.o6(idx) != o6 {
                        ok = false;
                    }
                    if let Some(o5) = o5 {
                        let idx5 = idx & 0x1F;
                        if reach5 >> idx5 & 1 == 1 {
                            if (derived5 >> idx5 & 1 == 1) != o5 {
                                ok = false;
                            }
                        } else {
                            reach5 |= 1 << idx5;
                            if o5 {
                                derived5 |= 1 << idx5;
                            }
                        }
                        if published.o5(idx5) != o5 {
                            ok = false;
                        }
                    }
                }
            }
            Table3Check {
                name: row.name,
                published,
                derived: Init::from_raw(derived | u64::from(derived5)),
                matches: ok,
                reachable: reach6.count_ones(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::approx_4x4;
    use axmul_fabric::sim::for_each_operand_pair;

    #[test]
    fn netlist_structure_matches_paper() {
        let nl = approx_4x4_netlist();
        assert_eq!(nl.lut_count(), 12);
        assert_eq!(nl.carry4_count(), 1);
    }

    #[test]
    fn published_inits_equal_behavioral_model_exhaustively() {
        // The strongest claim: the netlist built from Table 3's
        // published constants equals the behavioral model on every
        // operand pair.
        let nl = approx_4x4_netlist();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], approx_4x4(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn every_published_init_rederives_from_equations() {
        let checks = verify_table3();
        assert_eq!(checks.len(), 12);
        for c in &checks {
            assert!(
                c.matches,
                "{}: published {} disagrees with derivation {} on reachable indices",
                c.name, c.published, c.derived
            );
            assert!(c.reachable > 0);
        }
    }

    #[test]
    fn constant_ties_limit_reachability() {
        let checks = verify_table3();
        // LUT9 ties I2..I5 to 1: only 4 of 64 indices are reachable.
        let lut9 = checks.iter().find(|c| c.name == "LUT9").unwrap();
        assert_eq!(lut9.reachable, 4);
        // LUT1 has six live pins: all indices reachable.
        let lut1 = checks.iter().find(|c| c.name == "LUT1").unwrap();
        assert_eq!(lut1.reachable, 64);
    }

    #[test]
    fn table2_error_cases_on_the_netlist() {
        let nl = approx_4x4_netlist();
        // (multiplier b, multiplicand a) -> erroneous product
        for (b, a, want) in [
            (5u64, 15u64, 67u64),
            (6, 7, 34),
            (6, 15, 82),
            (7, 15, 97),
            (13, 13, 161),
            (15, 5, 67),
        ] {
            assert_eq!(nl.eval(&[a, b]).unwrap()[0], want);
        }
    }
}
