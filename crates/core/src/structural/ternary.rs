//! The carry-chain ternary adder of Fig. 5(b): three operands added in
//! a single pass using one LUT per bit and the `CARRY4` chain.
//!
//! Per column `i` with operand bits `x_i, y_i, z_i`, the identity
//! `x + y + z = Σ (x_i⊕y_i⊕z_i)·2^i + Σ MAJ(x_i,y_i,z_i)·2^{i+1}`
//! splits the sum into an XOR word `U` and a left-shifted majority
//! word `V`; the carry chain then adds `U + V`. Following the standard
//! Xilinx mapping (and Fig. 5(b) of the paper), each `LUT6_2` has `I5`
//! tied high and computes **two 5-input functions of shared inputs**:
//!
//! * `O6` (carry **propagate**, upper table half) =
//!   `x_i ⊕ y_i ⊕ z_i ⊕ v` where `v = MAJ(column i−1)` arrives on `I3`
//!   from the previous column's `O5` via general routing;
//! * `O5` (lower table half) = `MAJ(x_i, y_i, z_i)`, exported to the
//!   next column and to this stage's `DI` (carry generate) bypass pin
//!   of the *next* stage.
//!
//! The `DI` of stage `i` is the routed `v` itself (when the propagate
//! is 0, the stage's carry-out equals `v`).

use axmul_fabric::{Init, NetId, NetlistBuilder};

/// The single INIT value used by every ternary-adder LUT.
///
/// `I5` is tied to `1`. Pins: `I0..I2` = current column
/// (`x_i, y_i, z_i`), `I3` = incoming majority `v` of column `i−1`,
/// `I4` unused (tied low).
/// Upper half (`O6`): `I0⊕I1⊕I2⊕I3`. Lower half (`O5`):
/// `MAJ(I0, I1, I2)`.
pub const TERNARY_INIT: Init = Init::from_raw(ternary_raw());

const fn ternary_raw() -> u64 {
    let mut raw = 0u64;
    let mut i = 0u8;
    while i < 32 {
        let ones = (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1);
        let maj = ones >= 2;
        let xor4 = ((i & 1) ^ ((i >> 1) & 1) ^ ((i >> 2) & 1) ^ ((i >> 3) & 1)) == 1;
        if maj {
            raw |= 1 << i; // lower half: O5
        }
        if xor4 {
            raw |= 1 << (32 + i); // upper half: O6 (I5 = 1)
        }
        i += 1;
    }
    raw
}

/// Adds three equally-weighted bit vectors with one LUT per active bit
/// plus a carry chain, returning `width` sum bits.
///
/// Operand bit slices may contain `None` for absent (zero) bits, which
/// consume no LUT inputs. Columns where at most one contributor exists
/// and the previous column produces no majority are wired straight to
/// the carry chain without a LUT (routed through the slice bypass pins
/// on the device) — the recursive Ca construction relies on this to
/// reproduce the paper's Table 4 LUT counts.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn ternary_add(
    bld: &mut NetlistBuilder,
    x: &[Option<NetId>],
    y: &[Option<NetId>],
    z: &[Option<NetId>],
    width: usize,
) -> Vec<NetId> {
    assert!(width > 0, "ternary_add needs at least one output bit");
    let zero = bld.constant(false);
    let one = bld.constant(true);
    let col = |v: &[Option<NetId>], i: usize| v.get(i).copied().flatten();
    let count = |i: usize| {
        usize::from(col(x, i).is_some())
            + usize::from(col(y, i).is_some())
            + usize::from(col(z, i).is_some())
    };

    let mut props = Vec::with_capacity(width);
    let mut gens = Vec::with_capacity(width);
    // Majority of the previous column, routed column to column.
    let mut v_prev: Option<NetId> = None;
    for i in 0..width {
        let cur = [col(x, i), col(y, i), col(z, i)];
        let n_cur = count(i);
        if v_prev.is_none() && n_cur <= 1 {
            // Single contributor, no incoming majority: the bit itself
            // is the propagate and the generate is zero.
            props.push(cur.iter().flatten().next().copied().unwrap_or(zero));
            gens.push(zero);
            v_prev = None;
        } else {
            let pin = |v: Option<NetId>| v.unwrap_or(zero);
            let v_in = v_prev.unwrap_or(zero);
            let (o6, o5) = bld.lut6_2(
                TERNARY_INIT,
                [pin(cur[0]), pin(cur[1]), pin(cur[2]), v_in, zero, one],
            );
            props.push(o6);
            gens.push(v_in);
            // This column's majority feeds the next column — but only
            // if it can ever be nonzero.
            v_prev = (n_cur >= 2).then_some(o5);
        }
    }
    let (sums, _cout) = bld.carry_chain(zero, &props, &gens);
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_init_truth_table() {
        for i in 0..32u8 {
            let ones = u32::from(i & 1) + u32::from(i >> 1 & 1) + u32::from(i >> 2 & 1);
            let xor4 = (i & 1) ^ (i >> 1 & 1) ^ (i >> 2 & 1) ^ (i >> 3 & 1) == 1;
            assert_eq!(TERNARY_INIT.o5(i), ones >= 2, "O5 at {i}");
            assert_eq!(TERNARY_INIT.o6(32 + i), xor4, "O6 (I5=1) at {i}");
        }
    }

    #[test]
    fn dual_output_is_physically_consistent() {
        // With I5 tied high, O6 reads only the upper half; the lower
        // half is free for O5. No index is shared.
        for i in 0..32u8 {
            // The builder always drives I5 = 1, so indices < 32 are
            // unreachable for O6; nothing to check there beyond O5.
            assert_eq!(TERNARY_INIT.o5(i), TERNARY_INIT.o5(i | 0x20));
        }
    }

    #[test]
    fn adds_three_words_exhaustively() {
        // 3-bit operands, 5-bit result: 512 combinations.
        let mut bld = NetlistBuilder::new("t3");
        let a = bld.inputs("a", 3);
        let b = bld.inputs("b", 3);
        let c = bld.inputs("c", 3);
        let wrap = |v: &[NetId]| v.iter().map(|&n| Some(n)).collect::<Vec<_>>();
        let sums = ternary_add(&mut bld, &wrap(&a), &wrap(&b), &wrap(&c), 5);
        bld.output_bus("s", &sums);
        let nl = bld.finish().unwrap();
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    let got = nl.eval(&[x, y, z]).unwrap()[0];
                    assert_eq!(got, x + y + z, "{x}+{y}+{z}");
                }
            }
        }
    }

    #[test]
    fn one_lut_per_active_bit() {
        let mut bld = NetlistBuilder::new("t3");
        let a = bld.inputs("a", 4);
        let b = bld.inputs("b", 4);
        let c = bld.inputs("c", 4);
        let wrap = |v: &[NetId]| v.iter().map(|&n| Some(n)).collect::<Vec<_>>();
        let sums = ternary_add(&mut bld, &wrap(&a), &wrap(&b), &wrap(&c), 6);
        bld.output_bus("s", &sums);
        let nl = bld.finish().unwrap();
        // Bits 0..3 have 3 contributors (4 LUTs); bit 4 folds in the
        // majority of column 3 (1 LUT); bit 5 is carry-only (no LUT).
        assert_eq!(nl.lut_count(), 5);
    }

    #[test]
    fn ragged_operands_with_holes() {
        // x = bits 0..3, y = bits 2..5 (offset), z absent.
        let mut bld = NetlistBuilder::new("t3");
        let a = bld.inputs("a", 4);
        let b = bld.inputs("b", 4);
        let x: Vec<Option<NetId>> = a.iter().map(|&n| Some(n)).collect();
        let mut y: Vec<Option<NetId>> = vec![None, None];
        y.extend(b.iter().map(|&n| Some(n)));
        let sums = ternary_add(&mut bld, &x, &y, &[], 7);
        bld.output_bus("s", &sums);
        let nl = bld.finish().unwrap();
        for xa in 0..16u64 {
            for yb in 0..16u64 {
                let got = nl.eval(&[xa, yb]).unwrap()[0];
                assert_eq!(got, xa + (yb << 2), "x={xa} y={yb}");
            }
        }
    }
}
