//! Structural netlists of the elementary 4×2 block and the
//! accurate-summation 4×4 reference design of §3.2.

use axmul_fabric::{Init, NetId, Netlist, NetlistBuilder};

use super::table3::TABLE3;

/// Builds the approximate 4×2 multiplier netlist: exactly **4 LUTs**
/// (one slice), the paper's motivation for the whole architecture.
///
/// `P0` is truncated (constant 0); `P1`/`P2` share one `LUT6_2`
/// (they depend on the same five variables `A0..A2, B0, B1`); `P3`,
/// `P4`, `P5` take one LUT each. The INIT values are the first four
/// rows of Table 3, which encode exactly these product-bit equations.
///
/// # Examples
///
/// ```
/// use axmul_core::structural::approx_4x2_netlist;
///
/// let nl = approx_4x2_netlist();
/// assert_eq!(nl.lut_count(), 4);
/// assert_eq!(nl.eval(&[15, 3])?, vec![44]); // 45 with P0 dropped
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[must_use]
pub fn approx_4x2_netlist() -> Netlist {
    let mut bld = NetlistBuilder::new("approx4x2");
    let a = bld.inputs("a", 4);
    let b = bld.inputs("b", 2);
    let (p, _) = build_approx_4x2(&mut bld, &a, &b);
    bld.output_bus("p", &p);
    bld.finish().expect("approx4x2 netlist is well-formed")
}

/// Emits the 4 LUTs of one approximate 4×2 block into `bld`.
///
/// Returns the six product-bit nets (bit 0 is the constant-zero
/// truncation) and the number of LUTs emitted.
pub(crate) fn build_approx_4x2(
    bld: &mut NetlistBuilder,
    a: &[NetId],
    b: &[NetId],
) -> ([NetId; 6], usize) {
    assert_eq!(a.len(), 4);
    assert_eq!(b.len(), 2);
    let one = bld.constant(true);
    let zero = bld.constant(false);
    // Table 3 pins are printed I5..I0; fabric order is [I0..I5].
    // LUT0 row: [1, B1, B0, A2, A1, A0] -> O6 = P2, O5 = P1.
    let (p2, p1) = bld.lut6_2(
        Init::from_raw(TABLE3[0].init),
        [a[0], a[1], a[2], b[0], b[1], one],
    );
    let full = [a[0], a[1], a[2], a[3], b[0], b[1]];
    let p3 = bld.lut6(Init::from_raw(TABLE3[1].init), full);
    let p4 = bld.lut6(Init::from_raw(TABLE3[2].init), full);
    let p5 = bld.lut6(Init::from_raw(TABLE3[3].init), full);
    ([zero, p1, p2, p3, p4, p5], 4)
}

/// Builds the §3.2 reference design: two approximate 4×2 blocks whose
/// partial products are summed **accurately** over a 6-stage carry
/// chain (the black box of Fig. 3).
///
/// The netlist instantiates 14 LUTs; on the device the 6-stage chain
/// occupies two `CARRY4`s whose second slice strands two LUT sites,
/// which is how the paper arrives at its "16 LUTs (2 LUTs wasted by
/// the second carry chain)" figure. See
/// [`axmul_fabric::area::AreaReport`] for the site accounting.
///
/// # Examples
///
/// ```
/// use axmul_core::structural::approx_4x4_accsum_netlist;
///
/// let nl = approx_4x4_accsum_netlist();
/// assert_eq!(nl.lut_count(), 14);
/// assert_eq!(nl.carry4_count(), 2);
/// // 7 * 7: PP0 = 7*3 = 21 -> 20, PP1 = 7*1 = 7 -> 6; 20 + 6*4 = 44.
/// assert_eq!(nl.eval(&[7, 7])?, vec![44]);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[must_use]
pub fn approx_4x4_accsum_netlist() -> Netlist {
    let mut bld = NetlistBuilder::new("approx4x4_accsum");
    let a = bld.inputs("a", 4);
    let b = bld.inputs("b", 4);
    let zero = bld.constant(false);
    let (pp0, _) = build_approx_4x2(&mut bld, &a, &b[0..2]);
    let (pp1, _) = build_approx_4x2(&mut bld, &a, &b[2..4]);

    // Accurate summation of PP0 + (PP1 << 2) over bits 2..7.
    // X = PP0<2..5>, Y = PP1<0..5> (PP1<0> is the truncated zero).
    let mut props = Vec::new();
    let mut gens = Vec::new();
    for i in 2..8usize {
        let x = if i < 6 { Some(pp0[i]) } else { None };
        let y = pp1[i - 2];
        let y = if i == 2 { None } else { Some(y) }; // PP1<0> truncated
        match (x, y) {
            (Some(x), Some(y)) => {
                let (o6, _) = bld.lut2(Init::XOR2, x, y);
                props.push(o6);
                gens.push(x);
            }
            (Some(v), None) | (None, Some(v)) => {
                // Single operand: a route-through LUT feeds the S pin.
                let o6 = bld.lut1(Init::BUF, v);
                props.push(o6);
                gens.push(zero);
            }
            (None, None) => unreachable!("bits 2..7 always have an operand"),
        }
    }
    let (sums, _) = bld.carry_chain(zero, &props, &gens);
    let p: Vec<NetId> = [pp0[0], pp0[1]]
        .into_iter()
        .chain(sums.iter().copied())
        .collect();
    bld.output_bus("p", &p);
    bld.finish().expect("accsum netlist is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::{approx_4x2, approx_4x4_accsum};
    use axmul_fabric::sim::for_each_operand_pair;

    #[test]
    fn approx_4x2_matches_behavioral_exhaustively() {
        let nl = approx_4x2_netlist();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], approx_4x2(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn approx_4x2_is_one_slice() {
        let nl = approx_4x2_netlist();
        assert_eq!(nl.lut_count(), 4);
        assert_eq!(nl.carry4_count(), 0);
    }

    #[test]
    fn accsum_matches_behavioral_exhaustively() {
        let nl = approx_4x4_accsum_netlist();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], approx_4x4_accsum(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn accsum_uses_two_carry_chains() {
        // The paper's point: accurate summation of the two partial
        // products costs a second carry chain (and strands two LUT
        // sites), which the proposed optimized design eliminates.
        let nl = approx_4x4_accsum_netlist();
        assert_eq!(nl.carry4_count(), 2);
        assert_eq!(nl.lut_count(), 14);
    }
}
