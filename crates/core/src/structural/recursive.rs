//! Structural recursive multipliers: `Ca` (accurate ternary-adder
//! summation, Fig. 5) and `Cc` (carry-free XOR summation, Fig. 6), plus
//! the generic composition machinery ([`compose_netlist`]) that builds
//! a `2M×2M` multiplier netlist from *any* `M×M` kernel netlist — used
//! by the baselines crate to construct the Kulkarni and Rehman
//! multipliers on the same fabric.
//!
//! The LUT counts follow the recurrences the paper's Table 4 implies:
//!
//! ```text
//! LUTs_Ca(2M) = 4·LUTs_Ca(M) + (2M + 1)     -> 12, 57, 245, ...
//! LUTs_Cc(2M) = 4·LUTs_Cc(M) + 2M           -> 12, 56, 240, ...
//! ```
//!
//! In the accurate summation, the topmost `M − 1` columns have a single
//! contributor (`AH·BH`'s upper bits) and are wired straight onto the
//! carry chain without LUTs — on the device these use the slice bypass
//! pins, which is how the paper's counts come out.

use axmul_fabric::{Init, NetId, Netlist, NetlistBuilder};

use super::table3::approx_4x4_netlist;
use super::ternary::ternary_add;
use crate::behavioral::Summation;
use crate::WidthError;

fn check_bits(bits: u32, kernel_bits: u32) -> Result<(), WidthError> {
    if bits >= kernel_bits && bits <= 32 && bits.is_power_of_two() && kernel_bits.is_power_of_two()
    {
        Ok(())
    } else {
        Err(WidthError { bits })
    }
}

/// Builds the structural `Ca bits×bits` netlist: approximate 4×4
/// elementary blocks (Table 3), partial products summed **accurately**
/// with carry-chain ternary adders.
///
/// # Errors
///
/// Returns [`WidthError`] unless `bits` ∈ {4, 8, 16, 32}.
///
/// # Examples
///
/// ```
/// use axmul_core::structural::ca_netlist;
///
/// let nl = ca_netlist(8)?;
/// assert_eq!(nl.lut_count(), 57); // Table 4
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
pub fn ca_netlist(bits: u32) -> Result<Netlist, WidthError> {
    compose_netlist(&approx_4x4_netlist(), bits, Summation::Accurate)
}

/// Builds the structural `Cc bits×bits` netlist: the same elementary
/// blocks with the **carry-free** column summation of Fig. 6.
///
/// # Errors
///
/// Returns [`WidthError`] unless `bits` ∈ {4, 8, 16, 32}.
///
/// # Examples
///
/// ```
/// use axmul_core::structural::cc_netlist;
///
/// let nl = cc_netlist(16)?;
/// assert_eq!(nl.lut_count(), 240); // Table 4
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
pub fn cc_netlist(bits: u32) -> Result<Netlist, WidthError> {
    compose_netlist(&approx_4x4_netlist(), bits, Summation::CarryFree)
}

/// Composes a `bits×bits` multiplier netlist from an `M×M` kernel
/// netlist by repeated doubling (Fig. 5a), using the given
/// partial-product summation at every level.
///
/// The kernel must have two input buses of equal width `M` (a power of
/// two) and one output bus of width `2M`. This is the generic engine
/// behind [`ca_netlist`]/[`cc_netlist`]; the baselines crate feeds it
/// 2×2 kernels to build the Kulkarni (`K`) and Rehman (`W`) multipliers
/// structurally on the same fabric.
///
/// # Errors
///
/// Returns [`WidthError`] unless `bits` is a power of two with
/// `kernel width <= bits <= 32`.
///
/// # Panics
///
/// Panics if the kernel's bus shape is not `M`/`M` in, `2M` out.
pub fn compose_netlist(
    kernel: &Netlist,
    bits: u32,
    summation: Summation,
) -> Result<Netlist, WidthError> {
    let kb = kernel_width(kernel);
    check_bits(bits, kb)?;
    let mut current = kernel.clone();
    let mut width = kb;
    while width < bits {
        current = double(&current, width, summation);
        width *= 2;
    }
    Ok(current)
}

fn kernel_width(kernel: &Netlist) -> u32 {
    let ins = kernel.input_buses();
    assert_eq!(ins.len(), 2, "kernel must have exactly two input buses");
    assert_eq!(
        ins[0].1.len(),
        ins[1].1.len(),
        "kernel operand widths must match"
    );
    let outs = kernel.output_buses();
    assert_eq!(outs.len(), 1, "kernel must have one output bus");
    assert_eq!(
        outs[0].1.len(),
        2 * ins[0].1.len(),
        "kernel output must be twice the operand width"
    );
    ins[0].1.len() as u32
}

fn double(sub: &Netlist, sub_bits: u32, summation: Summation) -> Netlist {
    let tag = match summation {
        Summation::Accurate => "acc",
        Summation::CarryFree => "cfree",
    };
    let bits = 2 * sub_bits;
    let name = format!("{}_{tag}_{bits}x{bits}", sub.name());
    quad_netlist(name, sub, sub, sub, sub, summation)
}

/// Builds a `2M×2M` multiplier netlist from four *independent* `M×M`
/// quadrant netlists (`AL·BL`, `AH·BL`, `AL·BH`, `AH·BH` in that
/// order), combined with the given summation — the structural twin of
/// [`crate::behavioral::Quad`], and the assembly step of the
/// `axmul-dse` design-space explorer.
///
/// Each quadrant must have two equal-width input buses of one common
/// width `M` and a single `2M`-bit output bus. Quadrant netlists may
/// themselves be quad compositions, so arbitrary recursive
/// configurations are expressible.
///
/// # Panics
///
/// Panics if any quadrant's bus shape is not `M`/`M` in, `2M` out, or
/// if the quadrant widths disagree.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Summation;
/// use axmul_core::structural::{approx_4x4_netlist, compose_quad_netlist};
///
/// let k = approx_4x4_netlist();
/// let nl = compose_quad_netlist("ca8", &k, &k, &k, &k, Summation::Accurate);
/// assert_eq!(nl.lut_count(), 57); // identical to ca_netlist(8)
/// ```
pub fn compose_quad_netlist(
    name: impl Into<String>,
    ll: &Netlist,
    hl: &Netlist,
    lh: &Netlist,
    hh: &Netlist,
    summation: Summation,
) -> Netlist {
    let m = kernel_width(ll);
    for (quadrant, nl) in [("hl", hl), ("lh", lh), ("hh", hh)] {
        assert_eq!(
            kernel_width(nl),
            m,
            "quadrant `{quadrant}` width disagrees with `ll`"
        );
    }
    quad_netlist(name.into(), ll, hl, lh, hh, summation)
}

fn quad_netlist(
    name: String,
    ll: &Netlist,
    hl: &Netlist,
    lh: &Netlist,
    hh: &Netlist,
    summation: Summation,
) -> Netlist {
    let m = kernel_width(ll) as usize;
    let bits = 2 * m;
    let mut bld = NetlistBuilder::new(name);
    let a = bld.inputs("a", bits);
    let b = bld.inputs("b", bits);
    let (al, ah) = a.split_at(m);
    let (bl, bh) = b.split_at(m);
    let ll = bld.instantiate(ll, &[al, bl]).remove(0);
    let hl = bld.instantiate(hl, &[ah, bl]).remove(0);
    let lh = bld.instantiate(lh, &[al, bh]).remove(0);
    let hh = bld.instantiate(hh, &[ah, bh]).remove(0);
    let p = combine_partial_products(&mut bld, &ll, &hl, &lh, &hh, summation);
    debug_assert_eq!(p.len(), 2 * bits);
    bld.output_bus("p", &p);
    bld.finish().expect("recursive netlist is well-formed")
}

/// Combines the four `M×M` partial products of a `2M×2M` multiplier
/// (Fig. 5a) into the `4M` product bits, using either the accurate
/// ternary-adder summation (Fig. 5b) or the carry-free XOR columns of
/// Fig. 6.
///
/// `ll`, `hl`, `lh`, `hh` are the `2M`-bit outputs of the `AL·BL`,
/// `AH·BL`, `AL·BH` and `AH·BH` sub-multipliers. Exposed so that
/// heterogeneous designs (mixing exact and approximate quadrants, as in
/// the EvoApprox-style library) can share the paper's summation
/// hardware.
///
/// # Panics
///
/// Panics if the partial products are not all the same even length.
pub fn combine_partial_products(
    bld: &mut NetlistBuilder,
    ll: &[NetId],
    hl: &[NetId],
    lh: &[NetId],
    hh: &[NetId],
    summation: Summation,
) -> Vec<NetId> {
    let two_m = ll.len();
    assert!(
        two_m >= 2 && two_m.is_multiple_of(2),
        "partial products must be 2M bits"
    );
    assert!(
        hl.len() == two_m && lh.len() == two_m && hh.len() == two_m,
        "partial products must have equal widths"
    );
    let m = two_m / 2;
    let mut p: Vec<NetId> = ll[..m].to_vec();
    match summation {
        Summation::Accurate => {
            // Columns m..4m-1, relative r = column - m:
            //   x[r] = LL[m + r]        for r <  m   (LL upper half)
            //   x[r] = HH[r - m]        for r >= m   (disjoint ranges)
            //   y[r] = HL[r], z[r] = LH[r] for r < 2m.
            let width = 3 * m;
            let mut x: Vec<Option<NetId>> = vec![None; width];
            let mut y: Vec<Option<NetId>> = vec![None; width];
            let mut z: Vec<Option<NetId>> = vec![None; width];
            for r in 0..m {
                x[r] = Some(ll[m + r]);
            }
            for r in 0..2 * m {
                x[m + r] = Some(hh[r]);
                y[r] = Some(hl[r]);
                z[r] = Some(lh[r]);
            }
            let sums = ternary_add(bld, &x, &y, &z, width);
            p.extend(sums);
        }
        Summation::CarryFree => {
            // Fig. 6: columns m..3m-1 are 3-input XORs without carry;
            // the top m bits pass HH's upper half through.
            for r in 0..2 * m {
                let (i0, i1, i2) = if r < m {
                    (ll[m + r], hl[r], lh[r])
                } else {
                    (hl[r], lh[r], hh[r - m])
                };
                let o6 = bld.lut3(Init::XOR3, i0, i1, i2);
                p.push(o6);
            }
            p.extend_from_slice(&hh[m..2 * m]);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::{Ca, Cc};
    use crate::Multiplier;
    use axmul_fabric::sim::{for_each_operand_pair, WideSim};

    #[test]
    fn lut_counts_reproduce_table4() {
        assert_eq!(ca_netlist(4).unwrap().lut_count(), 12);
        assert_eq!(ca_netlist(8).unwrap().lut_count(), 57);
        assert_eq!(ca_netlist(16).unwrap().lut_count(), 245);
        assert_eq!(cc_netlist(4).unwrap().lut_count(), 12);
        assert_eq!(cc_netlist(8).unwrap().lut_count(), 56);
        assert_eq!(cc_netlist(16).unwrap().lut_count(), 240);
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(ca_netlist(6).is_err());
        assert!(cc_netlist(2).is_err());
        assert!(ca_netlist(64).is_err());
    }

    #[test]
    fn ca8_equals_behavioral_exhaustively() {
        let nl = ca_netlist(8).unwrap();
        let m = Ca::new(8).unwrap();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], m.multiply(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn cc8_equals_behavioral_exhaustively() {
        let nl = cc_netlist(8).unwrap();
        let m = Cc::new(8).unwrap();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], m.multiply(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn ca16_equals_behavioral_on_samples() {
        let nl = ca_netlist(16).unwrap();
        let m = Ca::new(16).unwrap();
        check_16(&nl, &m);
    }

    #[test]
    fn cc16_equals_behavioral_on_samples() {
        let nl = cc_netlist(16).unwrap();
        let m = Cc::new(16).unwrap();
        check_16(&nl, &m);
    }

    #[test]
    fn quad_of_identical_kernels_matches_double() {
        // compose_quad_netlist with four copies of the 4x4 kernel must be
        // exactly the homogeneous recursive step.
        let kernel = crate::structural::approx_4x4_netlist();
        for (summation, reference) in [
            (Summation::Accurate, ca_netlist(8).unwrap()),
            (Summation::CarryFree, cc_netlist(8).unwrap()),
        ] {
            let quad = compose_quad_netlist("quad8", &kernel, &kernel, &kernel, &kernel, summation);
            assert_eq!(quad.lut_count(), reference.lut_count());
            let m: Box<dyn Multiplier> = match summation {
                Summation::Accurate => Box::new(Ca::new(8).unwrap()),
                Summation::CarryFree => Box::new(Cc::new(8).unwrap()),
            };
            for_each_operand_pair(&quad, |a, b, out| {
                assert_eq!(out[0], m.multiply(a, b), "a={a} b={b}");
            })
            .unwrap();
        }
    }

    #[test]
    fn heterogeneous_quad_matches_behavioral_quad() {
        use crate::behavioral::{Approx4x4, Quad};
        // Mix the approximate 4x4 with its accurate-summation variant in
        // one recursion level and cross-check against the behavioral Quad.
        let ax = crate::structural::approx_4x4_netlist();
        let acc = crate::structural::approx_4x4_accsum_netlist();
        let nl = compose_quad_netlist("mixed8", &ax, &acc, &ax, &acc, Summation::Accurate);
        let model = Quad::new(
            Box::new(Approx4x4::new()) as Box<dyn Multiplier>,
            Box::new(crate::behavioral::Approx4x4AccSum::new()),
            Box::new(Approx4x4::new()),
            Box::new(crate::behavioral::Approx4x4AccSum::new()),
            Summation::Accurate,
        )
        .unwrap();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], model.multiply(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "width disagrees")]
    fn quad_rejects_mismatched_kernels() {
        let k4 = crate::structural::approx_4x4_netlist();
        let k8 = ca_netlist(8).unwrap();
        let _ = compose_quad_netlist("bad", &k4, &k4, &k8, &k4, Summation::Accurate);
    }

    #[test]
    fn compose_with_exact_2x2_kernel_is_exact() {
        // A 2x2 exact kernel built directly from four product-bit LUTs.
        let mut bld = NetlistBuilder::new("exact2x2");
        let a = bld.inputs("a", 2);
        let b = bld.inputs("b", 2);
        let (p1, p0) = {
            let z = bld.constant(false);
            let one = bld.constant(true);
            // O6 (upper) = a1b0 XOR a0b1, O5 = a0 & b0.
            let init = axmul_fabric::Init::from_dual(
                |i| {
                    let (a0, a1, b0, b1) = (
                        i & 1 == 1,
                        i >> 1 & 1 == 1,
                        i >> 2 & 1 == 1,
                        i >> 3 & 1 == 1,
                    );
                    (a1 && b0) ^ (a0 && b1)
                },
                |i| (i & 1 == 1) && (i >> 2 & 1 == 1),
            );
            bld.lut6_2(init, [a[0], a[1], b[0], b[1], z, one])
        };
        let (p2_hi, p2_lo) = {
            let z = bld.constant(false);
            let one = bld.constant(true);
            // O6 = a1 & b1 & (a0 NAND b0 correction): exact p2/p3.
            let init = axmul_fabric::Init::from_dual(
                |i| {
                    let v = (i as u64 & 3) * (i as u64 >> 2 & 3);
                    v >> 2 & 1 == 1
                },
                |i| {
                    let v = (i as u64 & 3) * (i as u64 >> 2 & 3);
                    v >> 3 & 1 == 1
                },
            );
            bld.lut6_2(init, [a[0], a[1], b[0], b[1], z, one])
        };
        bld.output_bus("p", &[p0, p1, p2_hi, p2_lo]);
        let kernel = bld.finish().unwrap();
        let nl = compose_netlist(&kernel, 8, Summation::Accurate).unwrap();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], a * b, "a={a} b={b}");
        })
        .unwrap();
    }

    fn check_16(nl: &Netlist, m: &dyn Multiplier) {
        let mut sim = WideSim::new(nl);
        // Deterministic structured + pseudo-random coverage.
        let mut a_vals = Vec::new();
        let mut b_vals = Vec::new();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        for i in 0..4096u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let (a, b) = match i % 4 {
                0 => ((i * 17) & 0xFFFF, (i * 31) & 0xFFFF),
                1 => (0xFFFF, state & 0xFFFF),
                2 => (state & 0xFFFF, 0xDDDD),
                _ => (state >> 16 & 0xFFFF, state & 0xFFFF),
            };
            a_vals.push(a);
            b_vals.push(b);
        }
        for chunk in 0..(a_vals.len() / 64) {
            let s = chunk * 64;
            let out = sim.eval(&[&a_vals[s..s + 64], &b_vals[s..s + 64]]).unwrap();
            for k in 0..64 {
                assert_eq!(
                    out[0][k],
                    m.multiply(a_vals[s + k], b_vals[s + k]),
                    "a={} b={}",
                    a_vals[s + k],
                    b_vals[s + k]
                );
            }
        }
    }
}
