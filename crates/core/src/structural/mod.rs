//! Structural LUT6_2/CARRY4 netlists of the proposed multipliers.
//!
//! Everything the behavioral models describe is also buildable as a
//! gate-level netlist on the [`axmul_fabric`] fabric model:
//!
//! * [`approx_4x4_netlist`] — the proposed 4×4 multiplier, built from
//!   the **published Table 3 INIT values verbatim** (12 LUTs + one
//!   `CARRY4`); [`verify_table3`] re-derives every INIT from the logic
//!   equations and checks the published constants.
//! * [`approx_4x2_netlist`] — the elementary 4×2 block (4 LUTs).
//! * [`approx_4x4_accsum_netlist`] — the 16-LUT reference point of §3.2
//!   (accurate summation over two carry chains).
//! * [`ca_netlist`] / [`cc_netlist`] — recursive 2M×2M multipliers with
//!   carry-chain ternary adders (Fig. 5b) or carry-free XOR columns
//!   (Fig. 6). Their LUT counts reproduce Table 4 exactly
//!   (Ca: 12/57/245, Cc: 12/56/240 at 4/8/16 bits).
//!
//! Exhaustive tests prove each netlist equivalent to its behavioral
//! twin.

mod elementary;
mod recursive;
mod table3;
mod ternary;

pub use elementary::{approx_4x2_netlist, approx_4x4_accsum_netlist};
pub use recursive::{
    ca_netlist, cc_netlist, combine_partial_products, compose_netlist, compose_quad_netlist,
};
pub use table3::{approx_4x4_netlist, verify_table3, Table3Check, TABLE3};
pub use ternary::{ternary_add, TERNARY_INIT};
