//! Additional image kernels with pluggable multipliers: separable
//! Gaussian blur and Sobel gradient magnitude — the other image
//! workloads the paper's intro motivates ("image/signal processing"),
//! useful for checking that the multiplier quality conclusions are not
//! SUSAN-specific.

use axmul_core::Multiplier;

use crate::image::Image;

/// 8-bit separable Gaussian blur: each pass convolves with an 8-bit
/// quantized kernel; every tap product goes through `mul`.
///
/// # Panics
///
/// Panics if `mul` is not 8×8 or `sigma` is not positive.
///
/// # Examples
///
/// ```
/// use axmul_core::Exact;
/// use axmul_susan::{gaussian_blur, synthetic_test_image};
///
/// let img = synthetic_test_image(32, 32, 1);
/// let out = gaussian_blur(&img, 1.2, &Exact::new(8, 8));
/// assert_eq!(out.width(), 32);
/// ```
#[must_use]
pub fn gaussian_blur(img: &Image, sigma: f64, mul: &(impl Multiplier + ?Sized)) -> Image {
    assert_eq!(mul.a_bits(), 8, "needs an 8x8 multiplier");
    assert_eq!(mul.b_bits(), 8, "needs an 8x8 multiplier");
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i64;
    // 8-bit quantized taps, normalized so they sum to ~255.
    let raw: Vec<f64> = (-radius..=radius)
        .map(|d| (-(d as f64).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let total: f64 = raw.iter().sum();
    let taps: Vec<u8> = raw
        .iter()
        .map(|w| ((w / total * 255.0).round() as u8).max(1))
        .collect();
    let tap_sum: u64 = taps.iter().map(|&t| u64::from(t)).sum();

    let pass = |src: &Image, horizontal: bool| -> Image {
        Image::from_fn(src.width(), src.height(), |x, y| {
            let mut acc = 0u64;
            for (k, &t) in taps.iter().enumerate() {
                let d = k as isize - radius as isize;
                let p = if horizontal {
                    src.get_clamped(x as isize + d, y as isize)
                } else {
                    src.get_clamped(x as isize, y as isize + d)
                };
                acc += mul.multiply(u64::from(t), u64::from(p));
            }
            (acc / tap_sum).min(255) as u8
        })
    };
    pass(&pass(img, true), false)
}

/// Sobel gradient magnitude via the multiplier-based square-and-root
/// datapath: `|g| = isqrt(gx² + gy²)` where the squares are computed by
/// `mul` on the 8-bit gradient magnitudes.
///
/// # Panics
///
/// Panics if `mul` is not 8×8.
#[must_use]
pub fn sobel_magnitude(img: &Image, mul: &(impl Multiplier + ?Sized)) -> Image {
    assert_eq!(mul.a_bits(), 8, "needs an 8x8 multiplier");
    assert_eq!(mul.b_bits(), 8, "needs an 8x8 multiplier");
    Image::from_fn(img.width(), img.height(), |x, y| {
        let px = |dx: isize, dy: isize| -> i64 {
            i64::from(img.get_clamped(x as isize + dx, y as isize + dy))
        };
        let gx = (px(1, -1) + 2 * px(1, 0) + px(1, 1)) - (px(-1, -1) + 2 * px(-1, 0) + px(-1, 1));
        let gy = (px(-1, 1) + 2 * px(0, 1) + px(1, 1)) - (px(-1, -1) + 2 * px(0, -1) + px(1, -1));
        // Scale gradients into 8 bits before squaring (they span ±1020).
        let sx = (gx.unsigned_abs() / 4).min(255);
        let sy = (gy.unsigned_abs() / 4).min(255);
        let sq = mul.multiply(sx, sx) + mul.multiply(sy, sy);
        let mag = isqrt(sq) * 4;
        mag.min(255) as u8
    })
}

fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    // Integer Newton iteration; `y < x` guarantees strict descent, so
    // the loop terminates at floor(sqrt(v)) (the two-value oscillation
    // of the naive `x != last` form never occurs).
    let mut x = v;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::synthetic_test_image;
    use axmul_core::behavioral::{Ca, Cc};
    use axmul_core::Exact;

    #[test]
    fn isqrt_is_exact() {
        for v in 0..10_000u64 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "v={v} r={r}");
        }
    }

    #[test]
    fn blur_preserves_flat_and_smooths_noise() {
        let flat = Image::from_fn(16, 16, |_, _| 77);
        let out = gaussian_blur(&flat, 1.0, &Exact::new(8, 8));
        for &p in out.pixels() {
            assert!((i16::from(p) - 77).abs() <= 2, "{p}");
        }
        // Alternating checkerboard flattens toward the mean.
        let check = Image::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 40 } else { 200 });
        let blurred = gaussian_blur(&check, 1.5, &Exact::new(8, 8));
        let mid = blurred.get(8, 8);
        assert!((i16::from(mid) - 120).abs() < 25, "{mid}");
    }

    #[test]
    fn sobel_fires_on_edges_only() {
        let step = Image::from_fn(16, 16, |x, _| if x < 8 { 20 } else { 220 });
        let mag = sobel_magnitude(&step, &Exact::new(8, 8));
        assert!(mag.get(8, 8) > 150, "edge response {}", mag.get(8, 8));
        assert!(mag.get(2, 8) < 10, "flat response {}", mag.get(2, 8));
    }

    #[test]
    fn approximate_multipliers_track_exact_on_both_kernels() {
        let img = synthetic_test_image(48, 48, 21);
        let exact = Exact::new(8, 8);
        let ca = Ca::new(8).unwrap();
        let cc = Cc::new(8).unwrap();
        let blur_gold = gaussian_blur(&img, 1.2, &exact);
        let psnr_ca = blur_gold.psnr(&gaussian_blur(&img, 1.2, &ca));
        let psnr_cc = blur_gold.psnr(&gaussian_blur(&img, 1.2, &cc));
        assert!(psnr_ca > psnr_cc, "Ca {psnr_ca:.1} vs Cc {psnr_cc:.1}");
        assert!(psnr_ca > 30.0, "blur with Ca is usable: {psnr_ca:.1}");

        let sobel_gold = sobel_magnitude(&img, &exact);
        let s_ca = sobel_gold.psnr(&sobel_magnitude(&img, &ca));
        let s_cc = sobel_gold.psnr(&sobel_magnitude(&img, &cc));
        assert!(s_ca > s_cc, "Sobel: Ca {s_ca:.1} vs Cc {s_cc:.1}");
    }
}
