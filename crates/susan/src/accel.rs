//! Area model of the SUSAN smoothing accelerator datapath — the basis
//! of the paper's "17 % and 17.2 % area gains for Ca and Cc" claim.
//!
//! The accelerator datapath contains, besides its two 8×8
//! pixel-weighting multipliers (the mask is processed two neighbors
//! per cycle), a fixed complement of logic that does not change with
//! the multiplier choice: the combined-weight ROMs, the line buffers'
//! addressing, the weight/contribution accumulators, and the
//! normalizing divider.

/// Area breakdown of one SUSAN accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceleratorArea {
    /// LUTs in the multiplier-independent datapath (LUT ROM, adders,
    /// accumulators, divider, control).
    pub fixed_luts: usize,
    /// LUTs per multiplier instance.
    pub multiplier_luts: usize,
    /// Number of multiplier instances in the datapath.
    pub multiplier_count: usize,
}

impl AcceleratorArea {
    /// Total LUTs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.fixed_luts + self.multiplier_count * self.multiplier_luts
    }

    /// Relative area gain of this configuration over `baseline`
    /// (positive = smaller).
    #[must_use]
    pub fn gain_over(&self, baseline: &AcceleratorArea) -> f64 {
        1.0 - self.total() as f64 / baseline.total() as f64
    }
}

/// LUTs of the multiplier-independent SUSAN datapath, sized from its
/// components: the per-offset combined-weight ROMs (~24 LUTs of
/// ROM64s), two 20-bit accumulators (~44 LUTs), a 20/12-bit restoring
/// divider array on carry chains (~60 LUTs), and line-buffer
/// addressing/control (~22 LUTs).
pub const SUSAN_FIXED_LUTS: usize = 150;

/// Number of multiplier instances in the smoothing datapath (two
/// parallel neighbor lanes).
pub const SUSAN_MULTIPLIER_COUNT: usize = 2;

/// Builds the accelerator area for a given multiplier size.
///
/// # Examples
///
/// ```
/// use axmul_susan::accelerator_area;
///
/// let with_ca = accelerator_area(57);   // proposed Ca 8x8
/// let with_ip = accelerator_area(81);   // Vivado-IP-like baseline
/// let gain = with_ca.gain_over(&with_ip);
/// assert!(gain > 0.1 && gain < 0.25, "{gain}");
/// ```
#[must_use]
pub fn accelerator_area(multiplier_luts: usize) -> AcceleratorArea {
    AcceleratorArea {
        fixed_luts: SUSAN_FIXED_LUTS,
        multiplier_luts,
        multiplier_count: SUSAN_MULTIPLIER_COUNT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let a = accelerator_area(57);
        assert_eq!(a.total(), 150 + 2 * 57);
    }

    #[test]
    fn paper_scale_gains() {
        // With the Vivado-IP-like accurate multiplier (~81 LUTs at 8x8)
        // as baseline, Ca (57) and Cc (56) land near the paper's
        // 17 % / 17.2 % accelerator-level gains.
        let base = accelerator_area(81);
        let ca = accelerator_area(57).gain_over(&base);
        let cc = accelerator_area(56).gain_over(&base);
        assert!((ca - 0.17).abs() < 0.05, "Ca gain {ca}");
        assert!((cc - 0.172).abs() < 0.05, "Cc gain {cc}");
        assert!(cc > ca);
    }

    #[test]
    fn gain_is_zero_against_itself() {
        let a = accelerator_area(57);
        assert_eq!(a.gain_over(&a), 0.0);
    }
}
