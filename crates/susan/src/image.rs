use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An 8-bit grayscale image.
///
/// # Examples
///
/// ```
/// use axmul_susan::Image;
///
/// let img = Image::from_fn(4, 4, |x, y| (x * 16 + y) as u8);
/// assert_eq!(img.get(3, 2), 50);
/// assert_eq!(img.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    #[must_use]
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Pixel value with the coordinate clamped to the image border
    /// (the boundary handling of the smoothing accelerator).
    #[must_use]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// Raw pixel data, row-major.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Peak signal-to-noise ratio against a reference image of the same
    /// dimensions, in dB. Returns `f64::INFINITY` for identical images
    /// (the paper prints "∞" for the accurate multiplier).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn psnr(&self, other: &Image) -> f64 {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.height, other.height, "height mismatch");
        axmul_metrics::psnr(&self.data, &other.data)
    }

    /// Serializes as an ASCII PGM (`P2`) file.
    #[must_use]
    pub fn to_pgm(&self) -> String {
        let mut s = format!("P2\n{} {}\n255\n", self.width, self.height);
        for y in 0..self.height {
            let row: Vec<String> = (0..self.width)
                .map(|x| self.get(x, y).to_string())
                .collect();
            s.push_str(&row.join(" "));
            s.push('\n');
        }
        s
    }
}

/// Error parsing a PGM file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseImageError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PGM: {}", self.reason)
    }
}

impl std::error::Error for ParseImageError {}

impl FromStr for Image {
    type Err = ParseImageError;

    /// Parses an ASCII PGM (`P2`) file.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| ParseImageError {
            reason: reason.to_string(),
        };
        let mut tokens = s
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .flat_map(str::split_whitespace);
        if tokens.next() != Some("P2") {
            return Err(err("missing P2 magic"));
        }
        let mut next_num = |what: &str| -> Result<usize, ParseImageError> {
            tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(what))
        };
        let width = next_num("bad width")?;
        let height = next_num("bad height")?;
        let maxval = next_num("bad maxval")?;
        if width == 0 || height == 0 || maxval != 255 {
            return Err(err("unsupported dimensions or maxval"));
        }
        let mut img = Image::new(width, height);
        for i in 0..width * height {
            let v = next_num("missing pixel")?;
            if v > 255 {
                return Err(err("pixel out of range"));
            }
            img.data[i] = v as u8;
        }
        Ok(img)
    }
}

/// Generates the deterministic synthetic test image used in place of
/// the paper's photograph: a smooth illumination gradient, sharp
/// geometric edges (bars and a disc), a sinusoidal texture patch, and
/// mild pixel noise — the feature mix (smooth regions + edges) that
/// SUSAN smoothing is designed for.
#[must_use]
pub fn synthetic_test_image(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Vec<i16> = (0..width * height)
        .map(|_| rng.random_range(-6i16..=6))
        .collect();
    Image::from_fn(width, height, |x, y| {
        let fx = x as f64 / width as f64;
        let fy = y as f64 / height as f64;
        // Smooth diagonal gradient.
        let mut v = 60.0 + 90.0 * (fx + fy) / 2.0;
        // High-contrast vertical bars in the left third.
        if fx < 0.33 && (x / (width / 16).max(1)).is_multiple_of(2) {
            v += 70.0;
        }
        // A bright disc in the upper right.
        let (cx, cy) = (0.72, 0.3);
        if (fx - cx).powi(2) + (fy - cy).powi(2) < 0.03 {
            v = 210.0;
        }
        // Sinusoidal texture in the lower band.
        if fy > 0.7 {
            v += 25.0 * (fx * 40.0).sin() * ((fy - 0.7) * 20.0).sin();
        }
        let n = f64::from(noise[y * width + x]);
        (v + n).clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_of_identical_is_infinite() {
        let img = synthetic_test_image(32, 32, 3);
        assert_eq!(img.psnr(&img.clone()), f64::INFINITY);
    }

    #[test]
    fn psnr_drops_with_noise() {
        let img = synthetic_test_image(32, 32, 3);
        let mut one_off = img.clone();
        one_off.set(5, 5, img.get(5, 5).wrapping_add(10));
        let mut noisy = img.clone();
        for x in 0..32 {
            for y in 0..32 {
                noisy.set(x, y, img.get(x, y).wrapping_add(10));
            }
        }
        assert!(img.psnr(&one_off) > img.psnr(&noisy));
        assert!(
            (img.psnr(&noisy) - 28.13).abs() < 0.05,
            "uniform +10 ~ 28.1 dB"
        );
    }

    #[test]
    fn pgm_round_trips() {
        let img = synthetic_test_image(17, 9, 42);
        let parsed: Image = img.to_pgm().parse().unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn pgm_rejects_garbage() {
        assert!("P5\n2 2\n255\nxx".parse::<Image>().is_err());
        assert!("P2\n2 2\n255\n1 2 3".parse::<Image>().is_err());
        assert!("P2\n2 2\n255\n1 2 3 999".parse::<Image>().is_err());
        assert!("P2\n0 2\n255\n".parse::<Image>().is_err());
    }

    #[test]
    fn pgm_skips_comments() {
        let s = "P2\n# a comment\n2 1\n255\n7 9\n";
        let img: Image = s.parse().unwrap();
        assert_eq!(img.get(0, 0), 7);
        assert_eq!(img.get(1, 0), 9);
    }

    #[test]
    fn synthetic_is_deterministic_and_featureful() {
        let a = synthetic_test_image(64, 64, 1);
        let b = synthetic_test_image(64, 64, 1);
        assert_eq!(a, b);
        let c = synthetic_test_image(64, 64, 2);
        assert_ne!(a, c);
        // Has real dynamic range (edges + gradient).
        let min = *a.pixels().iter().min().unwrap();
        let max = *a.pixels().iter().max().unwrap();
        assert!(max - min > 100, "range {min}..{max}");
    }

    #[test]
    fn clamped_access_extends_borders() {
        let img = Image::from_fn(3, 3, |x, y| (x + 3 * y) as u8);
        assert_eq!(img.get_clamped(-2, -2), img.get(0, 0));
        assert_eq!(img.get_clamped(5, 1), img.get(2, 1));
    }
}
