//! The SUSAN image-smoothing datapath with pluggable multipliers.
//!
//! SUSAN smoothing (Smith & Brady) weights each neighbor by the product
//! of a spatial Gaussian and a brightness-similarity kernel
//! `exp(−(ΔI/t)²)`, then normalizes. The accelerator version is fully
//! integer: since the spatial weight is a constant per mask offset, the
//! combined weight `w = (ws·wb) >> 8` comes from per-offset ROMs, and
//! the one true datapath product — neighbor pixel × weight — goes
//! through the supplied 8×8 [`Multiplier`]. This matches Fig. 12 of the
//! paper, which histograms exactly one stream of 8×8 operand pairs,
//! and it is the multiplier the paper swaps in and out for Table 6.

use axmul_core::Multiplier;

use crate::image::Image;

/// Parameters of the SUSAN smoothing accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SusanParams {
    /// Brightness-difference threshold `t` of the similarity kernel
    /// `exp(−(ΔI/t)²)`. The classic default is 27.
    pub brightness_threshold: u8,
    /// Spatial Gaussian σ in pixels.
    pub sigma: f64,
    /// Mask radius in pixels (the classic 37-pixel SUSAN mask has
    /// radius 3).
    pub radius: u32,
}

impl Default for SusanParams {
    fn default() -> Self {
        SusanParams {
            brightness_threshold: 27,
            sigma: 1.6,
            radius: 3,
        }
    }
}

impl SusanParams {
    /// The 8-bit brightness-similarity table:
    /// `lut[d] = round(255·exp(−(d/t)²))`.
    #[must_use]
    pub fn brightness_lut(&self) -> [u8; 256] {
        let t = f64::from(self.brightness_threshold.max(1));
        let mut lut = [0u8; 256];
        for (d, w) in lut.iter_mut().enumerate() {
            let x = d as f64 / t;
            *w = (255.0 * (-x * x).exp()).round() as u8;
        }
        lut
    }

    /// The 8-bit spatial weights of the circular mask, excluding the
    /// center pixel: `(dx, dy, round(255·exp(−r²/2σ²)))`.
    #[must_use]
    pub fn spatial_mask(&self) -> Vec<(i32, i32, u8)> {
        let r = self.radius as i32;
        let mut mask = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let d2 = f64::from(dx * dx + dy * dy);
                if d2 > f64::from(r * r) + 0.5 {
                    continue; // circular mask
                }
                let w = (255.0 * (-d2 / (2.0 * self.sigma * self.sigma)).exp()).round();
                if w >= 1.0 {
                    mask.push((dx, dy, w as u8));
                }
            }
        }
        mask
    }
}

/// Runs SUSAN smoothing over `img`, computing every inner-loop product
/// with `mul` (an 8×8 multiplier; wrap it in
/// [`axmul_core::Swapped`] to evaluate the paper's `Cas`/`Ccs`
/// operand-swapped variants).
///
/// Per neighbor at offset `(dx, dy)`:
///
/// 1. `w = (ws · brightness_lut[|ΔI|]) >> 8` — the combined 8-bit
///    weight, read from the per-offset ROM;
/// 2. `acc += mul(w, I(x+dx,y+dy))` — the accelerator feeds the
///    weight as multiplicand and the pixel as multiplier, the
///    orientation the paper's §5 then improves by swapping —
///    and `wsum += w`;
/// 3. output pixel = `acc / wsum` (center pixel if `wsum == 0`).
///
/// # Panics
///
/// Panics if `mul` is not an 8×8 multiplier.
#[must_use]
pub fn susan_smooth(img: &Image, params: &SusanParams, mul: &(impl Multiplier + ?Sized)) -> Image {
    assert_eq!(mul.a_bits(), 8, "SUSAN accelerator needs an 8x8 multiplier");
    assert_eq!(mul.b_bits(), 8, "SUSAN accelerator needs an 8x8 multiplier");
    let lut = params.brightness_lut();
    let mask = params.spatial_mask();
    Image::from_fn(img.width(), img.height(), |x, y| {
        let center = img.get(x, y);
        let mut acc: u64 = 0;
        let mut wsum: u64 = 0;
        for &(dx, dy, ws) in &mask {
            let p = img.get_clamped(
                x as isize + isize::try_from(dx).expect("small"),
                y as isize + isize::try_from(dy).expect("small"),
            );
            let diff = (i16::from(p) - i16::from(center)).unsigned_abs() as usize;
            let wb = lut[diff.min(255)];
            // Combined-weight ROM content for this offset and |ΔI|.
            let w = (u64::from(ws) * u64::from(wb)) >> 8;
            acc += mul.multiply(w, u64::from(p));
            wsum += w;
        }
        acc.checked_div(wsum).map_or(center, |q| q.min(255) as u8)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::synthetic_test_image;
    use axmul_baselines::Kulkarni;
    use axmul_core::behavioral::{Ca, Cc};
    use axmul_core::{Exact, Swapped};

    fn test_image() -> Image {
        synthetic_test_image(48, 48, 7)
    }

    #[test]
    fn brightness_lut_shape() {
        let p = SusanParams::default();
        let lut = p.brightness_lut();
        assert_eq!(lut[0], 255);
        assert!(lut[255] == 0);
        // Monotone non-increasing.
        assert!(lut.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn spatial_mask_is_circular_and_symmetric() {
        let p = SusanParams::default();
        let mask = p.spatial_mask();
        assert!(!mask.is_empty());
        for &(dx, dy, w) in &mask {
            assert!(dx * dx + dy * dy <= 9);
            // 8-fold symmetry of the weights.
            let mirror = mask
                .iter()
                .find(|&&(mx, my, _)| mx == -dx && my == -dy)
                .expect("mirror offset present");
            assert_eq!(mirror.2, w);
        }
        // No center pixel.
        assert!(!mask.iter().any(|&(dx, dy, _)| dx == 0 && dy == 0));
    }

    #[test]
    fn smoothing_preserves_flat_regions() {
        let img = Image::from_fn(16, 16, |_, _| 100);
        let out = susan_smooth(&img, &SusanParams::default(), &Exact::new(8, 8));
        for &p in out.pixels() {
            assert!((i16::from(p) - 100).abs() <= 1, "flat stays flat, got {p}");
        }
    }

    #[test]
    fn smoothing_reduces_noise_but_keeps_edges() {
        // A step edge plus noise: smoothing should reduce the noise
        // variance on each side without blurring the step away.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let img = Image::from_fn(32, 32, |x, _| {
            let base: i16 = if x < 16 { 60 } else { 180 };
            (base + rng.random_range(-10i16..=10)).clamp(0, 255) as u8
        });
        let out = susan_smooth(&img, &SusanParams::default(), &Exact::new(8, 8));
        let var = |img: &Image, xs: std::ops::Range<usize>| -> f64 {
            let vals: Vec<f64> = xs
                .clone()
                .flat_map(|x| (2..30).map(move |y| (x, y)))
                .map(|(x, y)| f64::from(img.get(x, y)))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64
        };
        assert!(var(&out, 2..13) < var(&img, 2..13) / 2.0, "noise reduced");
        // The step survives: means on both sides stay far apart.
        let left: f64 = (2..13).map(|x| f64::from(out.get(x, 16))).sum::<f64>() / 11.0;
        let right: f64 = (19..30).map(|x| f64::from(out.get(x, 16))).sum::<f64>() / 11.0;
        assert!(right - left > 90.0, "edge preserved: {left} vs {right}");
    }

    #[test]
    fn approximate_multipliers_degrade_gracefully() {
        let img = test_image();
        let p = SusanParams::default();
        let golden = susan_smooth(&img, &p, &Exact::new(8, 8));
        let ca = susan_smooth(&img, &p, &Ca::new(8).unwrap());
        let cc = susan_smooth(&img, &p, &Cc::new(8).unwrap());
        let k = susan_smooth(&img, &p, &Kulkarni::new(8).unwrap());
        let (psnr_ca, psnr_cc, psnr_k) = (golden.psnr(&ca), golden.psnr(&cc), golden.psnr(&k));
        // Table 6 ordering relations that are robust to the input image:
        assert!(
            psnr_ca > psnr_cc,
            "Ca ({psnr_ca:.1}) beats Cc ({psnr_cc:.1})"
        );
        assert!(psnr_ca > psnr_k, "Ca ({psnr_ca:.1}) beats K ({psnr_k:.1})");
        assert!(psnr_ca > 25.0, "Ca output is usable: {psnr_ca:.1} dB");
    }

    #[test]
    fn swapping_operands_changes_and_can_improve_quality() {
        // The asymmetry claim of §5: Cas (swapped Ca) beats Ca on
        // weight-biased operand streams.
        let img = test_image();
        let p = SusanParams::default();
        let golden = susan_smooth(&img, &p, &Exact::new(8, 8));
        let ca = Ca::new(8).unwrap();
        let psnr = golden.psnr(&susan_smooth(&img, &p, &ca));
        let psnr_swapped = golden.psnr(&susan_smooth(&img, &p, &Swapped::new(ca)));
        assert_ne!(psnr, psnr_swapped, "asymmetric design must differ");
        assert!(
            psnr_swapped > psnr,
            "swapped {psnr_swapped:.2} should beat unswapped {psnr:.2}"
        );
    }

    #[test]
    fn wide_multiplier_rejected() {
        let img = Image::new(4, 4);
        let wide = Exact::new(16, 16);
        let result =
            std::panic::catch_unwind(|| susan_smooth(&img, &SusanParams::default(), &wide));
        assert!(result.is_err());
    }
}
