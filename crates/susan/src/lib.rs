//! # axmul-susan
//!
//! The paper's application case study: an image-smoothing accelerator
//! for the SUSAN algorithm (Smith & Brady) with **pluggable 8×8
//! multipliers**, used to produce Table 6 (PSNR per multiplier,
//! including the swapped-operand variants), Fig. 11 (output quality)
//! and Fig. 12 (the operand histogram that motivates operand swapping).
//!
//! * [`Image`] — 8-bit grayscale images with PGM I/O and
//!   [`Image::psnr`].
//! * [`synthetic_test_image`] — a deterministic stand-in for the
//!   paper's test photograph (gradients + edges + texture + noise),
//!   since no image assets ship with this repository.
//! * [`SusanParams`] / [`susan_smooth`] — the integer SUSAN smoothing
//!   datapath; every product in the inner loop goes through the
//!   supplied [`Multiplier`].
//! * [`Recording`] — a multiplier adapter that captures the operand
//!   trace (Fig. 12).
//! * [`accelerator_area`] — the datapath area model behind the paper's
//!   "17 % / 17.2 % area gain" claim.
//!
//! ```
//! use axmul_core::behavioral::Ca;
//! use axmul_core::Exact;
//! use axmul_susan::{susan_smooth, synthetic_test_image, SusanParams};
//!
//! let img = synthetic_test_image(64, 64, 1);
//! let p = SusanParams::default();
//! let golden = susan_smooth(&img, &p, &Exact::new(8, 8));
//! let approx = susan_smooth(&img, &p, &Ca::new(8)?);
//! assert!(golden.psnr(&approx) > 25.0);
//! # Ok::<(), axmul_core::WidthError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod filter;
mod image;
mod kernels;
mod trace;

pub use accel::{accelerator_area, AcceleratorArea};
pub use filter::{susan_smooth, SusanParams};
pub use image::{synthetic_test_image, Image, ParseImageError};
pub use kernels::{gaussian_blur, sobel_magnitude};
pub use trace::{operand_histogram, Recording};
