//! Operand-trace capture — the machinery behind Fig. 12 (the
//! multiplication histogram of the SUSAN accelerator, which motivates
//! the operand-swapping optimization).

use std::cell::RefCell;

use axmul_core::Multiplier;

/// A multiplier adapter that records every operand pair it sees.
///
/// # Examples
///
/// ```
/// use axmul_core::{Exact, Multiplier};
/// use axmul_susan::Recording;
///
/// let rec = Recording::new(Exact::new(8, 8));
/// rec.multiply(3, 4);
/// rec.multiply(200, 17);
/// assert_eq!(rec.trace(), vec![(3, 4), (200, 17)]);
/// ```
#[derive(Debug)]
pub struct Recording<M> {
    inner: M,
    trace: RefCell<Vec<(u64, u64)>>,
}

impl<M: Multiplier> Recording<M> {
    /// Wraps `inner`, recording all operand pairs.
    #[must_use]
    pub fn new(inner: M) -> Self {
        Recording {
            inner,
            trace: RefCell::new(Vec::new()),
        }
    }

    /// Returns a copy of the recorded operand pairs, in call order.
    #[must_use]
    pub fn trace(&self) -> Vec<(u64, u64)> {
        self.trace.borrow().clone()
    }

    /// Clears the recorded trace.
    pub fn clear(&self) {
        self.trace.borrow_mut().clear();
    }

    /// Consumes the adapter, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> Vec<(u64, u64)> {
        self.trace.into_inner()
    }
}

impl<M: Multiplier> Multiplier for Recording<M> {
    fn a_bits(&self) -> u32 {
        self.inner.a_bits()
    }
    fn b_bits(&self) -> u32 {
        self.inner.b_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.trace.borrow_mut().push((a, b));
        self.inner.multiply(a, b)
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Bins an operand trace into a 2-D histogram: `hist[i][j]` counts
/// pairs with `a` in bin `i` and `b` in bin `j`, over `bins × bins`
/// equal-width bins covering `0..256` (Fig. 12 plots this surface).
///
/// # Panics
///
/// Panics if `bins` is 0 or greater than 256.
#[must_use]
pub fn operand_histogram(trace: &[(u64, u64)], bins: usize) -> Vec<Vec<u64>> {
    assert!(bins > 0 && bins <= 256, "bins must be in 1..=256");
    let width = 256usize.div_ceil(bins);
    let mut hist = vec![vec![0u64; bins]; bins];
    for &(a, b) in trace {
        let i = ((a as usize).min(255)) / width;
        let j = ((b as usize).min(255)) / width;
        hist[i][j] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{susan_smooth, SusanParams};
    use crate::image::synthetic_test_image;
    use axmul_core::Exact;

    #[test]
    fn recording_is_transparent() {
        let rec = Recording::new(Exact::new(8, 8));
        assert_eq!(rec.multiply(12, 13), 156);
        assert_eq!(rec.a_bits(), 8);
        assert_eq!(rec.name(), "Exact 8x8");
        assert_eq!(rec.into_trace(), vec![(12, 13)]);
    }

    #[test]
    fn clear_resets_trace() {
        let rec = Recording::new(Exact::new(8, 8));
        rec.multiply(1, 2);
        rec.clear();
        assert!(rec.trace().is_empty());
    }

    #[test]
    fn histogram_bins_correctly() {
        let trace = vec![(0u64, 0u64), (255, 255), (128, 0), (127, 255)];
        let hist = operand_histogram(&trace, 2);
        assert_eq!(hist[0][0], 1);
        assert_eq!(hist[1][1], 1);
        assert_eq!(hist[1][0], 1);
        assert_eq!(hist[0][1], 1);
        let total: u64 = hist.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn susan_trace_is_concentrated() {
        // Fig. 12: "most multiplications occur in a narrow band" — the
        // combined weights cluster, so the busiest histogram cell holds
        // far more than a uniform share.
        let img = synthetic_test_image(32, 32, 9);
        let rec = Recording::new(Exact::new(8, 8));
        let _ = susan_smooth(&img, &SusanParams::default(), &rec);
        let trace = rec.into_trace();
        assert!(!trace.is_empty());
        let hist = operand_histogram(&trace, 16);
        let max = *hist.iter().flatten().max().unwrap();
        let uniform_share = trace.len() as u64 / (16 * 16);
        assert!(
            max > 8 * uniform_share,
            "peak {max} vs uniform {uniform_share}"
        );
    }
}
