//! Property-based tests of the image substrate and the SUSAN datapath.

use axmul_core::{Exact, Swapped};
use axmul_susan::{susan_smooth, synthetic_test_image, Image, Recording, SusanParams};
use proptest::prelude::*;

fn arb_image(max: usize) -> impl Strategy<Value = Image> {
    (2usize..max, 2usize..max, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut s = seed;
        Image::from_fn(w, h, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u8
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PGM serialization round-trips arbitrary images.
    #[test]
    fn pgm_roundtrip(img in arb_image(24)) {
        let parsed: Image = img.to_pgm().parse().unwrap();
        prop_assert_eq!(parsed, img);
    }

    /// PSNR is symmetric, non-negative, and infinite only on equality.
    #[test]
    fn psnr_properties(img in arb_image(16), delta in 1u8..255, x in 0usize..16, y in 0usize..16) {
        let mut other = img.clone();
        let (x, y) = (x % img.width(), y % img.height());
        other.set(x, y, img.get(x, y).wrapping_add(delta));
        prop_assert!(img.psnr(&other).is_finite());
        prop_assert!(img.psnr(&other) >= 0.0);
        prop_assert_eq!(img.psnr(&other), other.psnr(&img));
        prop_assert!(img.psnr(&img.clone()).is_infinite());
    }

    /// With the exact multiplier, each smoothed pixel stays within the
    /// value range of its neighborhood (it is a weighted average).
    #[test]
    fn smoothing_is_a_weighted_average(img in arb_image(16)) {
        let params = SusanParams::default();
        let out = susan_smooth(&img, &params, &Exact::new(8, 8));
        let r = params.radius as isize;
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut lo = u8::MAX;
                let mut hi = u8::MIN;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let v = img.get_clamped(x as isize + dx, y as isize + dy);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                let v = out.get(x, y);
                prop_assert!(v >= lo.saturating_sub(1) && v <= hi.saturating_add(1),
                    "pixel ({x},{y}) = {v} outside [{lo},{hi}]");
            }
        }
    }

    /// The recording adapter is transparent and its trace length equals
    /// pixels × mask size.
    #[test]
    fn recording_trace_size(seed in any::<u64>()) {
        let img = synthetic_test_image(12, 10, seed);
        let params = SusanParams::default();
        let rec = Recording::new(Exact::new(8, 8));
        let out = susan_smooth(&img, &params, &rec);
        let plain = susan_smooth(&img, &params, &Exact::new(8, 8));
        prop_assert_eq!(out, plain);
        let mask_len = params.spatial_mask().len();
        prop_assert_eq!(rec.trace().len(), 12 * 10 * mask_len);
    }

    /// Swapping the exact multiplier changes nothing (symmetry), on any
    /// image.
    #[test]
    fn exact_is_orientation_invariant(img in arb_image(14)) {
        let params = SusanParams::default();
        let a = susan_smooth(&img, &params, &Exact::new(8, 8));
        let b = susan_smooth(&img, &params, &Swapped::new(Exact::new(8, 8)));
        prop_assert_eq!(a, b);
    }

    /// Synthetic images are deterministic in their seed and dimensions.
    #[test]
    fn synthetic_deterministic(w in 4usize..40, h in 4usize..40, seed in any::<u64>()) {
        let a = synthetic_test_image(w, h, seed);
        let b = synthetic_test_image(w, h, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.width(), w);
        prop_assert_eq!(a.height(), h);
    }
}
