//! Pass 4 — claim checking.
//!
//! Everything the paper asserts about its designs that can be decided
//! statically from the netlist is decided here:
//!
//! * **Equivalence** — a netlist realizes its behavioral model, proved
//!   exhaustively when the operand space is small enough (every 4×4 and
//!   8×8 design). Beyond that window the check samples deterministically
//!   and then *escalates to SAT* (`axmul-sat`): a CEGAR search pins the
//!   netlist's exact worst-case error against the exact product, and the
//!   model is cross-checked at the extremal witness and against the
//!   proven ceiling — so wide designs get an engine-tagged verdict, not
//!   a "skipped" note. Designs whose sampled error floor is zero claim
//!   full exactness, a multiplier-equivalence UNSAT proof known to
//!   defeat CDCL at these widths, so they get a bounded refutation probe
//!   instead (see `docs/equivalence.md`). A mismatch is reported with a
//!   *minimized* counterexample: operand bits are greedily cleared while
//!   the disagreement persists, so the reported pair is a local minimum
//!   that isolates the failing cone.
//! * **Table 2** — the proposed approximate 4×4 errs on exactly six
//!   operand pairs, every one by exactly `+8`, on exactly the published
//!   pairs.
//! * **Table 3** — the shipped INIT constants re-derive from the logic
//!   equations ([`axmul_core::structural::verify_table3`]) and all
//!   twelve appear in the elaborated netlist.
//! * **Slice fit** — the §3.1 claim that the approximate 4×2 packs into
//!   a single slice: at most 4 LUTs and no carry chain.
//!
//! Each check that passes leaves an `Info` diagnostic behind, so a
//! report is positive evidence of what was verified, not merely an
//! absence of complaints.

use axmul_core::structural::{verify_table3, TABLE3};
use axmul_core::Multiplier;
use axmul_fabric::sim::for_each_operand_pair;
use axmul_fabric::Cell;
use axmul_fabric::Netlist;

use crate::diag::{Diagnostic, Locus, Pass, Severity};
use crate::LintOptions;

fn diag(
    severity: Severity,
    code: &'static str,
    engine: &'static str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        pass: Pass::Claims,
        severity,
        code,
        engine,
        locus: Locus::Global,
        message,
    }
}

/// Table 2 of the paper: the six erroneous `(a, b)` operand pairs of the
/// proposed approximate 4×4 multiplier, each off by exactly `+8`.
pub const TABLE2_PAIRS: [(u64, u64); 6] = [(15, 5), (7, 6), (15, 6), (15, 7), (13, 13), (5, 15)];

/// Checks structural-vs-behavioral equivalence of `netlist` against
/// `model`, appending findings to `diags`. Past the exhaustive window
/// the sampled sweep is followed by a SAT escalation
/// ([`escalate_equivalence_sat`]), so every outcome is a diagnostic
/// with an engine tag — this pass never records a skip.
///
/// The netlist must expose two input buses (`a`, then `b`) matching the
/// model's operand widths and a single product output bus.
pub fn check_equivalence(
    netlist: &Netlist,
    model: &dyn Multiplier,
    opts: &LintOptions,
    diags: &mut Vec<Diagnostic>,
) {
    let buses = netlist.input_buses();
    if buses.len() != 2
        || buses[0].1.len() != model.a_bits() as usize
        || buses[1].1.len() != model.b_bits() as usize
        || netlist.output_buses().len() != 1
    {
        let got: Vec<String> = buses
            .iter()
            .map(|(n, b)| format!("{n}[{}]", b.len()))
            .collect();
        diags.push(diag(
            Severity::Error,
            "equiv-interface",
            "static",
            format!(
                "netlist interface ({} in, {} out buses: {}) does not match model `{}` ({}x{})",
                buses.len(),
                netlist.output_buses().len(),
                got.join(", "),
                model.name(),
                model.a_bits(),
                model.b_bits()
            ),
        ));
        return;
    }
    let total_bits = model.a_bits() + model.b_bits();
    let mut mismatches = 0u64;
    let mut witness: Option<(u64, u64)> = None;
    if total_bits <= opts.exhaustive_bits {
        let result = for_each_operand_pair(netlist, |a, b, out| {
            if out[0] != model.multiply(a, b) {
                mismatches += 1;
                if witness.is_none() {
                    witness = Some((a, b));
                }
            }
        });
        if let Err(e) = result {
            diags.push(diag(
                Severity::Error,
                "equiv-sim",
                "sim",
                format!("simulation failed during equivalence check: {e}"),
            ));
            return;
        }
        if let Some(w) = witness {
            let (a, b) = minimize(netlist, model, w);
            diags.push(diag(
                Severity::Error,
                "equiv-mismatch",
                "sim",
                format!(
                    "netlist disagrees with `{}` on {mismatches} of {} operand pairs; \
                     minimized counterexample a={a} b={b}: netlist {} vs model {}",
                    model.name(),
                    1u64 << total_bits,
                    eval_product(netlist, a, b),
                    model.multiply(a, b)
                ),
            ));
        } else {
            diags.push(diag(
                Severity::Info,
                "equiv-verified",
                "sim",
                format!(
                    "netlist proven equal to `{}` on all {} operand pairs",
                    model.name(),
                    1u64 << total_bits
                ),
            ));
        }
    } else {
        // Deterministic SplitMix64 sampling: same verdict every run.
        // Alongside agreement, track each side's worst deviation from
        // the exact product — the netlist's argmax seeds the SAT
        // ascent, the model's maximum is checked against the proven
        // ceiling afterwards.
        let mut state = 0x5EED_BA5E_D00Du64 ^ (u64::from(total_bits) << 32);
        let a_mask = (1u64 << model.a_bits()) - 1;
        let b_mask = (1u64 << model.b_bits()) - 1;
        let mut nl_worst: (u128, (u64, u64)) = (0, (0, 0));
        let mut model_worst: (u128, (u64, u64)) = (0, (0, 0));
        for _ in 0..opts.samples {
            let r = splitmix64(&mut state);
            let a = r & a_mask;
            let b = (r >> model.a_bits()) & b_mask;
            let got = eval_product(netlist, a, b);
            let want = model.multiply(a, b);
            if got != want {
                mismatches += 1;
                if witness.is_none() {
                    witness = Some((a, b));
                }
            }
            let exact = u128::from(a) * u128::from(b);
            let nl_err = u128::from(got).abs_diff(exact);
            if nl_err > nl_worst.0 {
                nl_worst = (nl_err, (a, b));
            }
            let model_err = u128::from(want).abs_diff(exact);
            if model_err > model_worst.0 {
                model_worst = (model_err, (a, b));
            }
        }
        if let Some(w) = witness {
            let (a, b) = minimize(netlist, model, w);
            diags.push(diag(
                Severity::Error,
                "equiv-mismatch",
                "sim",
                format!(
                    "netlist disagrees with `{}` on {mismatches} of {} sampled operand pairs; \
                     minimized counterexample a={a} b={b}: netlist {} vs model {}",
                    model.name(),
                    opts.samples,
                    eval_product(netlist, a, b),
                    model.multiply(a, b)
                ),
            ));
        } else {
            diags.push(diag(
                Severity::Info,
                "equiv-sampled",
                "sim",
                format!(
                    "netlist agrees with `{}` on {} deterministically sampled operand pairs \
                     ({total_bits} operand bits exceed the {}-bit exhaustive budget)",
                    model.name(),
                    opts.samples,
                    opts.exhaustive_bits
                ),
            ));
            escalate_equivalence_sat(netlist, model, opts, nl_worst, model_worst, diags);
        }
    }
}

/// SAT escalation of the equivalence claim past the exhaustive window.
///
/// Sampling alone cannot *decide* anything, so the pass pins what SAT
/// can decide exactly at any width: the netlist's worst-case absolute
/// error against the exact product ([`axmul_sat::prove_wce`], seeded
/// with the sampled argmax). The behavioral model is then cross-checked
/// at the proof's extremal witness — the single most adversarial input
/// a guided search can produce — and against the proven ceiling: a
/// model that errs more than the netlist's exact maximum anywhere
/// cannot be equal to it, which upgrades such a divergence from
/// "unsampled" to a refutation.
///
/// Netlists whose sampled error floor is zero are claiming full
/// exactness; certifying that is a multiplier-equivalence UNSAT proof,
/// which defeats CDCL at these widths (see `docs/equivalence.md`), so
/// the search is capped to a bounded refutation probe instead of the
/// full certification budget. Every outcome — certificate, bounded
/// search, or refutation — lands as an engine-tagged diagnostic; the
/// escalation never records a skip.
fn escalate_equivalence_sat(
    netlist: &Netlist,
    model: &dyn Multiplier,
    opts: &LintOptions,
    nl_worst: (u128, (u64, u64)),
    model_worst: (u128, (u64, u64)),
    diags: &mut Vec<Diagnostic>,
) {
    use axmul_sat::{prove_wce, ProofOptions, SatError, WceOptions};

    let exactness_probe = nl_worst.0 == 0;
    let budget = if exactness_probe {
        opts.sat_conflicts.min(10_000)
    } else {
        opts.sat_conflicts
    };
    let wce_opts = WceOptions {
        // split_depth 0: on budget exhaustion concede immediately with
        // a typed error instead of fanning into cube-and-conquer —
        // lint wants a fast bounded verdict, not a marathon.
        proof: ProofOptions {
            max_conflicts: budget,
            split_depth: 0,
        },
        samples: 1024,
        hint: (!exactness_probe).then_some(nl_worst.1),
    };
    match prove_wce(netlist, &wce_opts) {
        Ok(proof) => {
            let (wa, wb) = proof.witness;
            let at_witness = eval_product(netlist, wa, wb);
            let model_at_witness = model.multiply(wa, wb);
            if at_witness != model_at_witness {
                diags.push(diag(
                    Severity::Error,
                    "equiv-mismatch",
                    "sat",
                    format!(
                        "SAT's extremal witness separates the netlist from `{}`: at a={wa} \
                         b={wb} the netlist yields {at_witness} vs model {model_at_witness}",
                        model.name()
                    ),
                ));
            } else if model_worst.0 > proof.wce {
                let (ma, mb) = model_worst.1;
                diags.push(diag(
                    Severity::Error,
                    "equiv-mismatch",
                    "sat",
                    format!(
                        "`{}` errs by {} at a={ma} b={mb}, above the netlist's SAT-proven \
                         worst-case error {} — the two cannot be equal",
                        model.name(),
                        model_worst.0,
                        proof.wce
                    ),
                ));
            } else {
                diags.push(diag(
                    Severity::Info,
                    "equiv-wce-certified",
                    "sat",
                    format!(
                        "SAT pinned the netlist's exact worst-case error vs the exact \
                         product: {} at a={wa} b={wb} ({} ascent step(s), {} conflicts); \
                         `{}` matches the netlist at that witness and stays within the \
                         proven ceiling on every sampled pair",
                        proof.wce,
                        proof.ascent_steps,
                        proof.stats.conflicts,
                        model.name()
                    ),
                ));
            }
        }
        Err(SatError::Budget { conflicts }) => {
            let detail = if exactness_probe {
                format!(
                    "the sampled error floor is 0 — a full-exactness claim, whose UNSAT \
                     certificate is out of CDCL reach at this width — so the search was \
                     capped to a refutation probe: no deviating operand pair found within \
                     {conflicts} conflicts"
                )
            } else {
                let (fa, fb) = nl_worst.1;
                format!(
                    "the certification budget ran out after {conflicts} conflicts; the \
                     observed error floor stands at {} (a={fa} b={fb}) with no refutation \
                     found",
                    nl_worst.0
                )
            };
            diags.push(diag(
                Severity::Info,
                "equiv-sat-bounded",
                "sat",
                format!("SAT escalation stayed bounded: {detail}"),
            ));
        }
        Err(e) => diags.push(diag(
            Severity::Warning,
            "equiv-sat-error",
            "sat",
            format!("SAT escalation of the equivalence claim failed: {e}"),
        )),
    }
}

fn eval_product(netlist: &Netlist, a: u64, b: u64) -> u64 {
    netlist.eval(&[a, b]).map_or(u64::MAX, |out| out[0])
}

// Greedily clears operand bits while the disagreement persists, to a
// fixpoint: the returned pair still fails but no single bit of it can
// be dropped, which usually points straight at the failing cone.
fn minimize(netlist: &Netlist, model: &dyn Multiplier, witness: (u64, u64)) -> (u64, u64) {
    let (mut a, mut b) = witness;
    let fails = |a: u64, b: u64| eval_product(netlist, a, b) != model.multiply(a, b);
    loop {
        let mut shrunk = false;
        for bit in 0..64 {
            let m = 1u64 << bit;
            if a & m != 0 && fails(a & !m, b) {
                a &= !m;
                shrunk = true;
            }
            if b & m != 0 && fails(a, b & !m) {
                b &= !m;
                shrunk = true;
            }
        }
        if !shrunk {
            return (a, b);
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks the paper's Table 2 against `netlist`, assumed to be a 4×4
/// multiplier: exactly six erroneous operand pairs, every error exactly
/// `+8` (approximate below exact), on exactly the published pairs.
pub fn check_table2(netlist: &Netlist, diags: &mut Vec<Diagnostic>) {
    let mut wrong: Vec<(u64, u64, i64)> = Vec::new();
    let result = for_each_operand_pair(netlist, |a, b, out| {
        let exact = a * b;
        let got = out[0];
        if got != exact {
            wrong.push((a, b, exact as i64 - got as i64));
        }
    });
    if let Err(e) = result {
        diags.push(diag(
            Severity::Error,
            "equiv-sim",
            "sim",
            format!("simulation failed during Table 2 check: {e}"),
        ));
        return;
    }
    let mut failed = false;
    if wrong.len() != TABLE2_PAIRS.len() {
        failed = true;
        diags.push(diag(
            Severity::Error,
            "table2-count",
            "sim",
            format!(
                "Table 2 claims exactly {} error pairs, netlist has {}",
                TABLE2_PAIRS.len(),
                wrong.len()
            ),
        ));
    }
    for &(a, b, d) in &wrong {
        if d != 8 {
            failed = true;
            diags.push(diag(
                Severity::Error,
                "table2-magnitude",
                "sim",
                format!("error at a={a} b={b} is {d}, Table 2 claims every error is +8"),
            ));
        }
    }
    let mut got_pairs: Vec<(u64, u64)> = wrong.iter().map(|&(a, b, _)| (a, b)).collect();
    got_pairs.sort_unstable();
    let mut want_pairs = TABLE2_PAIRS.to_vec();
    want_pairs.sort_unstable();
    if got_pairs != want_pairs {
        failed = true;
        diags.push(diag(
            Severity::Error,
            "table2-pairs",
            "sim",
            format!("erroneous pairs {got_pairs:?} differ from Table 2's {want_pairs:?}"),
        ));
    }
    if !failed {
        diags.push(diag(
            Severity::Info,
            "table2-verified",
            "sim",
            "Table 2 confirmed: exactly 6 error pairs, each of magnitude 8, on the published operands"
                .to_string(),
        ));
    }
}

/// Checks the paper's Table 3 against `netlist`: every published INIT
/// re-derives from the multiplier's logic equations, and all twelve
/// constants appear (as a multiset) among the netlist's LUTs.
pub fn check_table3(netlist: &Netlist, diags: &mut Vec<Diagnostic>) {
    let mut failed = false;
    for check in verify_table3() {
        if !check.matches {
            failed = true;
            diags.push(diag(
                Severity::Error,
                "table3-init",
                "static",
                format!(
                    "{}: published INIT {} disagrees with the derivation {} on reachable indices",
                    check.name, check.published, check.derived
                ),
            ));
        }
    }
    let mut have: Vec<u64> = netlist
        .cells()
        .iter()
        .filter_map(|c| match c {
            Cell::Lut { init, .. } => Some(init.raw()),
            Cell::Carry4 { .. } => None,
        })
        .collect();
    for row in &TABLE3 {
        if let Some(pos) = have.iter().position(|&i| i == row.init) {
            have.swap_remove(pos);
        } else {
            failed = true;
            diags.push(diag(
                Severity::Error,
                "table3-missing",
                "static",
                format!(
                    "netlist contains no (unclaimed) LUT with {}'s published INIT 0x{:016X}",
                    row.name, row.init
                ),
            ));
        }
    }
    if !failed {
        diags.push(diag(
            Severity::Info,
            "table3-verified",
            "static",
            format!(
                "Table 3 confirmed: all 12 published INITs re-derive from the logic equations \
                 and appear in the netlist ({} LUTs)",
                netlist.lut_count()
            ),
        ));
    }
}

/// Checks a single-slice packing claim: at most `max_luts` LUTs and no
/// more than `max_carry4s` carry blocks (a 7-series slice holds 4 LUTs
/// and one `CARRY4`).
pub fn check_slice_fit(
    netlist: &Netlist,
    max_luts: usize,
    max_carry4s: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let luts = netlist.lut_count();
    let carry4s = netlist.carry4_count();
    if luts > max_luts || carry4s > max_carry4s {
        diags.push(diag(
            Severity::Error,
            "slice-fit",
            "static",
            format!(
                "netlist needs {luts} LUT(s) and {carry4s} CARRY4(s), exceeding the claimed \
                 budget of {max_luts} LUT(s) / {max_carry4s} CARRY4(s)"
            ),
        ));
    } else {
        diags.push(diag(
            Severity::Info,
            "slice-fit-verified",
            "static",
            format!(
                "packing claim confirmed: {luts} LUT(s), {carry4s} CARRY4(s) within \
                 {max_luts}/{max_carry4s}"
            ),
        ));
    }
}
