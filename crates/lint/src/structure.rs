//! Pass 1 — structural sanity.
//!
//! `NetlistBuilder` guarantees these invariants by construction, so on
//! builder-produced netlists this pass is a re-proof. Its real targets
//! are netlists assembled through `Netlist::from_parts` (imports,
//! hand-written fixtures): driver-table consistency, single-driver,
//! topological order, combinational loops, and output-cone
//! reachability. Any `Error` from this pass means later passes cannot
//! trust simulation, so the linter downgrades to structural-only
//! analysis when this pass fails.

use axmul_fabric::Netlist;
use axmul_fabric::{Cell, Driver};

use crate::diag::{Diagnostic, Locus, Pass, Severity};

/// Runs the pass, appending findings to `diags`.
///
/// Returns `true` if the netlist is structurally sound — no `Error`
/// finding — meaning simulation (and therefore the truth-table engine
/// and every claim check) is well-defined.
pub fn run(netlist: &Netlist, diags: &mut Vec<Diagnostic>) -> bool {
    let before = diags.len();
    let n = netlist.net_count();
    let err = |code, locus, message: String| Diagnostic {
        pass: Pass::Structure,
        severity: Severity::Error,
        code,
        engine: "static",
        locus,
        message,
    };

    // 1. Bounds: every referenced net must exist. Anything else would
    //    panic the analyses below, so bail out early on violation.
    let mut dangling = false;
    let mut check = |net: axmul_fabric::NetId, what: &str, locus: Locus| {
        if net.index() >= n {
            diags.push(err(
                "dangling-net",
                locus,
                format!(
                    "{what} references net n{} but only {n} nets exist",
                    net.index()
                ),
            ));
            dangling = true;
        }
    };
    for (k, cell) in netlist.cells().iter().enumerate() {
        match cell {
            Cell::Lut { inputs, o6, o5, .. } => {
                for (i, &net) in inputs.iter().enumerate() {
                    check(net, &format!("LUT input I{i}"), Locus::Cell(k));
                }
                check(*o6, "LUT output O6", Locus::Cell(k));
                if let Some(o5) = o5 {
                    check(*o5, "LUT output O5", Locus::Cell(k));
                }
            }
            Cell::Carry4 { cin, s, di, o, co } => {
                check(*cin, "CARRY4 CIN", Locus::Cell(k));
                for i in 0..4 {
                    check(s[i], &format!("CARRY4 S[{i}]"), Locus::Cell(k));
                    check(di[i], &format!("CARRY4 DI[{i}]"), Locus::Cell(k));
                    if let Some(net) = o[i] {
                        check(net, &format!("CARRY4 O[{i}]"), Locus::Cell(k));
                    }
                    if let Some(net) = co[i] {
                        check(net, &format!("CARRY4 CO[{i}]"), Locus::Cell(k));
                    }
                }
            }
        }
    }
    for (name, bits) in netlist.input_buses().iter().chain(netlist.output_buses()) {
        for &net in bits {
            check(net, &format!("port `{name}`"), Locus::Global);
        }
    }
    if dangling {
        return false;
    }

    // 2. Driver-table consistency: collect what each cell and input bus
    //    *claims* to drive, then reconcile against the driver table.
    let mut claimed: Vec<Option<Driver>> = vec![None; n];
    let mut claim =
        |net: axmul_fabric::NetId, driver: Driver, locus: Locus, diags: &mut Vec<Diagnostic>| {
            let slot = &mut claimed[net.index()];
            if slot.is_some() {
                diags.push(err(
                    "multi-driver",
                    Locus::Net(net.index()),
                    format!(
                        "net n{} has more than one driver; second at {locus}",
                        net.index()
                    ),
                ));
            } else {
                *slot = Some(driver);
            }
        };
    for (bus, (_, bits)) in netlist.input_buses().iter().enumerate() {
        for (bit, &net) in bits.iter().enumerate() {
            claim(
                net,
                Driver::Input(bus as u16, bit as u16),
                Locus::Global,
                diags,
            );
        }
    }
    for (k, cell) in netlist.cells().iter().enumerate() {
        let id = axmul_fabric::CellId::new(k as u32);
        match cell {
            Cell::Lut { o6, o5, .. } => {
                claim(*o6, Driver::LutO6(id), Locus::Cell(k), diags);
                if let Some(o5) = o5 {
                    claim(*o5, Driver::LutO5(id), Locus::Cell(k), diags);
                }
            }
            Cell::Carry4 { o, co, .. } => {
                for i in 0..4 {
                    if let Some(net) = o[i] {
                        claim(net, Driver::CarrySum(id, i as u8), Locus::Cell(k), diags);
                    }
                    if let Some(net) = co[i] {
                        claim(net, Driver::CarryCout(id, i as u8), Locus::Cell(k), diags);
                    }
                }
            }
        }
    }
    for (net, driver) in netlist.drivers().iter().enumerate() {
        match (claimed[net], driver) {
            // A constant needs no producing cell.
            (None, Driver::Const(_)) => {}
            // The table says a cell or port drives this net, but no cell
            // or port actually claims it: a phantom driver.
            (None, d) => diags.push(err(
                "undriven-net",
                Locus::Net(net),
                format!("driver table says {d:?} drives n{net}, but nothing produces that net"),
            )),
            (Some(c), d) if c != *d => diags.push(err(
                "driver-mismatch",
                Locus::Net(net),
                format!("driver table says {d:?} for n{net}, but the netlist produces it as {c:?}"),
            )),
            (Some(_), _) => {}
        }
    }

    // 3. Topological order and combinational loops on the cell graph
    //    (edge j -> k when an output of cell j feeds an input of cell k).
    let cell_count = netlist.cells().len();
    let source_cell = |net: axmul_fabric::NetId| -> Option<usize> {
        match netlist.drivers()[net.index()] {
            Driver::LutO6(c)
            | Driver::LutO5(c)
            | Driver::CarrySum(c, _)
            | Driver::CarryCout(c, _)
                if c.index() < cell_count =>
            {
                Some(c.index())
            }
            _ => None,
        }
    };
    let deps: Vec<Vec<usize>> = netlist
        .cells()
        .iter()
        .map(|cell| {
            let mut d = Vec::new();
            let mut push = |net: axmul_fabric::NetId| {
                if let Some(j) = source_cell(net) {
                    d.push(j);
                }
            };
            match cell {
                Cell::Lut { inputs, .. } => inputs.iter().for_each(|&net| push(net)),
                Cell::Carry4 { cin, s, di, .. } => {
                    push(*cin);
                    s.iter().chain(di.iter()).for_each(|&net| push(net));
                }
            }
            d
        })
        .collect();
    // Cycle detection: iterative three-color DFS over dependencies.
    let mut color = vec![0u8; cell_count]; // 0 = white, 1 = on stack, 2 = done
    let mut loop_cell = None;
    'roots: for root in 0..cell_count {
        if color[root] != 0 {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = 1;
        while let Some(&mut (k, ref mut next)) = stack.last_mut() {
            if *next < deps[k].len() {
                let j = deps[k][*next];
                *next += 1;
                match color[j] {
                    0 => {
                        color[j] = 1;
                        stack.push((j, 0));
                    }
                    1 => {
                        loop_cell = Some(j);
                        break 'roots;
                    }
                    _ => {}
                }
            } else {
                color[k] = 2;
                stack.pop();
            }
        }
    }
    if let Some(k) = loop_cell {
        diags.push(err(
            "comb-loop",
            Locus::Cell(k),
            format!("cell c{k} lies on a combinational cycle"),
        ));
    } else {
        // Acyclic but stored out of order still breaks the single-pass
        // simulator, so it is its own error.
        for (k, d) in deps.iter().enumerate() {
            if let Some(&j) = d.iter().find(|&&j| j >= k) {
                diags.push(err(
                    "topo-order",
                    Locus::Cell(k),
                    format!("cell c{k} reads an output of later cell c{j}; cells must be stored in topological order"),
                ));
            }
        }
    }

    // 4. Output-cone reachability: cells that feed other logic but never
    //    reach any primary output. (Cells driving nothing at all are the
    //    dead-logic pass's `dead-lut`; don't double-report them here.)
    let sound = !diags[before..]
        .iter()
        .any(|d| d.severity == Severity::Error);
    if sound {
        let mut reach = vec![false; cell_count];
        let mut work: Vec<usize> = netlist
            .output_buses()
            .iter()
            .flat_map(|(_, bits)| bits.iter().filter_map(|&net| source_cell(net)))
            .collect();
        while let Some(k) = work.pop() {
            if !std::mem::replace(&mut reach[k], true) {
                work.extend(deps[k].iter().copied());
            }
        }
        let fanouts = netlist.connected_fanouts();
        for (k, cell) in netlist.cells().iter().enumerate() {
            if reach[k] {
                continue;
            }
            let outputs: Vec<axmul_fabric::NetId> = match cell {
                Cell::Lut { o6, o5, .. } => std::iter::once(*o6).chain(*o5).collect(),
                Cell::Carry4 { o, co, .. } => {
                    o.iter().chain(co.iter()).flatten().copied().collect()
                }
            };
            if outputs.iter().any(|net| fanouts[net.index()] > 0) {
                diags.push(Diagnostic {
                    pass: Pass::Structure,
                    severity: Severity::Warning,
                    code: "unreachable-cell",
                    engine: "static",
                    locus: Locus::Cell(k),
                    message: format!(
                        "cell c{k} feeds other cells but its cone never reaches a primary output"
                    ),
                });
            }
        }
    }
    sound
}
