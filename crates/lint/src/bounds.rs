//! Pass 5 — static bounds from the abstract-interpretation engine.
//!
//! Where passes 2–4 judge *structure*, this pass reports what the
//! `axmul-absint` known-bits / interval analysis can prove about the
//! netlist's *values* — at any width, with no simulation:
//!
//! * `output-range` — a primary-output bus whose value interval is
//!   provably tighter than the trivial `[0, 2^w − 1]`.
//! * `const-output-bit` — an output bit proven constant although it is
//!   driven by real logic (a `Driver::Const` tie is the designer
//!   saying so; a *derived* constant output is information).
//! * `static-error-bound` — for two-operand multiplier shapes, the
//!   sound worst-case-deviation bound of the output interval.
//!
//! Everything here is `Severity::Info`: a tight range or a constant
//! output bit is a *fact*, not a defect — truncation designs pin
//! product bits by construction. The dead-logic pass separately
//! escalates constants that waste area; this pass is the place the
//! numbers themselves surface (and the CI lint gate stays meaningful
//! for the roster designs that legitimately carry pinned outputs).

use axmul_absint::NetlistAnalysis;
use axmul_fabric::{Driver, Netlist};

use crate::diag::{Diagnostic, Locus, Pass, Severity};

/// Runs the pass, appending findings to `diags`.
pub fn run(netlist: &Netlist, analysis: &NetlistAnalysis, diags: &mut Vec<Diagnostic>) {
    let diag = |code, locus, message: String| Diagnostic {
        pass: Pass::Bounds,
        severity: Severity::Info,
        code,
        engine: "absint",
        locus,
        message,
    };
    let drivers = netlist.drivers();
    for (bus, bits) in netlist.output_buses() {
        let Some(range) = analysis.outputs.iter().find(|o| &o.bus == bus) else {
            continue;
        };
        if bits.len() > 128 {
            continue;
        }
        let trivial_hi = if bits.len() == 128 {
            u128::MAX
        } else {
            (1u128 << bits.len()) - 1
        };
        if range.interval.lo > 0 || range.interval.hi < trivial_hi {
            diags.push(diag(
                "output-range",
                Locus::Global,
                format!(
                    "output bus {bus} is confined to {} (trivial range [0, {trivial_hi}])",
                    range.interval
                ),
            ));
        }
        for (bit, &net) in bits.iter().enumerate() {
            if matches!(drivers[net.index()], Driver::Const(_)) {
                continue; // an explicit tie, not a derived fact
            }
            if let Some(v) = analysis.known.constant_of(net) {
                diags.push(diag(
                    "const-output-bit",
                    Locus::Net(net.index()),
                    format!(
                        "output bit {bus}[{bit}] is driven by logic yet provably constant {}",
                        u8::from(v)
                    ),
                ));
            }
        }
    }
    if let Some(err) = &analysis.error {
        diags.push(diag(
            "static-error-bound",
            Locus::Global,
            format!(
                "worst-case deviation from the exact product is statically bounded by {} (deviation interval [{}, {}])",
                err.wce_ub(),
                err.err_lo,
                err.err_hi
            ),
        ));
    }
}
