//! Pass 2 — dead logic and foldable logic.
//!
//! Three severities deliberately coexist here. A fracturable LUT's
//! unused `O5` and a discarded final carry-out are idioms every design
//! in the paper uses, so they are `Info`. A LUT none of whose outputs
//! drive anything, a routed pin the INIT provably ignores, an output
//! the engines prove constant, and a carry stage that pins the
//! chain to a constant all *waste area the design pays for*, so they
//! are `Warning` — the roster must be free of them for the CI gate's
//! `--deny warnings` to pass.
//!
//! Constant verdicts come from a three-stage escalation, and every
//! finding records which engine decided it: the exhaustive truth
//! tables (`"table"`) within [`crate::MAX_TABLE_BITS`] input bits, the
//! known-bits abstract interpretation (`"known-bits"`) at any width,
//! and — where the abstract domain is too coarse — a per-netlist
//! incremental SAT oracle (`"sat"`, [`axmul_sat::NetOracle`]) whose
//! `Some` answers are UNSAT-certified. Wide netlists therefore get the
//! same constant coverage as narrow ones instead of a "skipped" note.

use axmul_absint::KnownBits;
use axmul_fabric::{Cell, Driver};
use axmul_fabric::{NetId, Netlist};
use axmul_sat::NetOracle;

use crate::diag::{Diagnostic, Locus, Pass, Severity};
use crate::tables::NetTables;

/// Runs the pass, appending findings to `diags`.
///
/// `tables` is the truth-table engine's output when the netlist was
/// small enough to tabulate (exact constant verdicts); `known` is the
/// known-bits abstract state, available at any width; `sat` is the
/// incremental SAT oracle that settles whatever the abstract domain
/// leaves open on netlists the tables cannot cover. Each constant
/// finding records the engine that decided it.
pub fn run(
    netlist: &Netlist,
    tables: Option<&NetTables>,
    known: &KnownBits,
    mut sat: Option<&mut NetOracle>,
    diags: &mut Vec<Diagnostic>,
) {
    let fanouts = netlist.fanouts();
    let drivers = netlist.drivers();
    let used = |net: NetId| fanouts[net.index()] > 0;
    let is_const = |net: NetId| matches!(drivers[net.index()], Driver::Const(_));
    // A net's proven constant value and the engine that proved it:
    // from the driver table for tied nets, from the exhaustive tables
    // where available, then the known-bits propagation, then — on wide
    // netlists only — an UNSAT certificate from the SAT oracle.
    let mut const_of = |net: NetId| -> Option<(bool, &'static str)> {
        match drivers[net.index()] {
            Driver::Const(v) => Some((v, "static")),
            _ => {
                if let Some(t) = tables {
                    return t.constant_of(net).map(|v| (v, "table"));
                }
                if let Some(v) = known.constant_of(net) {
                    return Some((v, "known-bits"));
                }
                sat.as_mut()
                    .and_then(|o| o.constant_of(net))
                    .map(|v| (v, "sat"))
            }
        }
    };
    let diag = |severity, code, engine, k: usize, message: String| Diagnostic {
        pass: Pass::DeadLogic,
        severity,
        code,
        engine,
        locus: Locus::Cell(k),
        message,
    };

    for (k, cell) in netlist.cells().iter().enumerate() {
        match cell {
            Cell::Lut {
                init,
                inputs,
                o6,
                o5,
            } => {
                let o6_used = used(*o6);
                let o5_used = o5.is_some_and(used);
                if !o6_used && !o5_used {
                    diags.push(diag(
                        Severity::Warning,
                        "dead-lut",
                        "static",
                        k,
                        format!("LUT c{k} drives nothing: all outputs have zero fanout"),
                    ));
                    // Its pins and outputs are moot; one finding is enough.
                    continue;
                }
                if o5.is_some() && !o5_used {
                    diags.push(diag(
                        Severity::Info,
                        "dead-o5",
                        "static",
                        k,
                        format!("LUT c{k} allocates O5 but nothing reads it (unused fracturable capacity)"),
                    ));
                }
                if !o6_used {
                    // O5-only use still occupies the full LUT6_2.
                    diags.push(diag(
                        Severity::Info,
                        "dead-o6",
                        "static",
                        k,
                        format!("LUT c{k} is used only through O5; O6 has zero fanout"),
                    ));
                }
                // A pin is "live" if any *used* output depends on it.
                for (i, &net) in inputs.iter().enumerate() {
                    if is_const(net) {
                        continue; // packing ties (e.g. I5 = 1) are fine
                    }
                    let live = (o6_used && init.depends_on(i as u8))
                        || (o5_used && init.depends_on_o5(i as u8));
                    if !live {
                        diags.push(diag(
                            Severity::Warning,
                            "ignored-pin",
                            "static",
                            k,
                            format!(
                                "LUT c{k} input I{i} carries signal n{} that no used output depends on",
                                net.index()
                            ),
                        ));
                    }
                }
                // Constant-foldable: a used output whose function is
                // provably constant over all inputs.
                for (name, net, used_flag) in [("O6", Some(*o6), o6_used), ("O5", *o5, o5_used)] {
                    if let (Some(net), true) = (net, used_flag) {
                        if let Some((v, engine)) = const_of(net) {
                            diags.push(diag(
                                Severity::Warning,
                                "const-lut",
                                engine,
                                k,
                                format!(
                                    "LUT c{k} output {name} is provably constant {} — the cell folds away",
                                    u8::from(v)
                                ),
                            ));
                        }
                    }
                }
            }
            Cell::Carry4 { s, di, o, co, .. } => {
                for i in 0..4 {
                    if let Some(net) = o[i] {
                        if !used(net) {
                            diags.push(diag(
                                Severity::Info,
                                "dead-carry-sum",
                                "static",
                                k,
                                format!("CARRY4 c{k} sum output O[{i}] has zero fanout"),
                            ));
                        }
                    }
                    if let Some(net) = co[i] {
                        if !used(net) {
                            diags.push(diag(
                                Severity::Info,
                                "dead-carry-out",
                                "static",
                                k,
                                format!("CARRY4 c{k} carry output CO[{i}] has zero fanout"),
                            ));
                        }
                    }
                }
                // A stage with constant-zero select and constant data pins
                // the carry to that constant: every later used stage of
                // the chain computes with a wedged carry. (Constant-zero
                // select with a *live* DI is the legitimate carry-only
                // column idiom of the ternary adder; constant-one select
                // merely propagates and is how chains are padded.)
                for i in 0..4 {
                    let later_used =
                        (i + 1..4).any(|j| o[j].is_some_and(used) || co[j].is_some_and(used));
                    let here_used = co[i].is_some_and(used);
                    if !later_used && !here_used {
                        continue;
                    }
                    if matches!(const_of(s[i]), Some((false, _))) {
                        if let Some((v, engine)) = const_of(di[i]) {
                            diags.push(diag(
                                Severity::Warning,
                                "stuck-carry",
                                engine,
                                k,
                                format!(
                                    "CARRY4 c{k} stage {i} pins the carry to constant {}: S[{i}] is 0 and DI[{i}] is constant, yet later stages still use the chain",
                                    u8::from(v)
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}
