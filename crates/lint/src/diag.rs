//! The diagnostic model shared by every lint pass: a [`Diagnostic`] is
//! one finding with a pass, a severity, a stable code, and a locus
//! (cell, net, or the whole netlist). A [`LintReport`] aggregates the
//! findings of one netlist and renders them for humans (via
//! [`std::fmt::Display`]) or machines (via [`LintReport::to_json`]).

use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
///
/// The ordering is `Info < Warning < Error`, so `max()` over a report
/// gives its worst finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An observation: idiomatic but worth surfacing (e.g. an unused
    /// fracturable `O5` output).
    Info,
    /// Suspicious structure that wastes area or suggests a bug but does
    /// not falsify the netlist (e.g. a LUT whose output drives nothing).
    Warning,
    /// The netlist is ill-formed, illegal to pack, or fails a checked
    /// claim.
    Error,
}

impl Severity {
    /// Lower-case name, as used in reports and JSON.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Structural sanity: driver-table consistency, topological order,
    /// combinational loops, dangling and multiply-driven nets,
    /// unreachable cells.
    Structure,
    /// Dead logic: unused outputs, ignored pins, constant-foldable
    /// LUTs, stuck carry stages.
    DeadLogic,
    /// Packing legality: `LUT6_2` dual-output rules, `CARRY4` cascade
    /// continuity, stranded-site cross-check against the area model.
    Packing,
    /// Claim checking: structural-vs-behavioral equivalence and the
    /// paper's Table 2/3 properties.
    Claims,
    /// Static bounds: known-bits output ranges, constant output bits
    /// and sound error intervals from the abstract-interpretation
    /// engine (`axmul-absint`), at any width.
    Bounds,
}

impl Pass {
    /// Lower-case name, as used in reports and JSON.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Pass::Structure => "structure",
            Pass::DeadLogic => "dead-logic",
            Pass::Packing => "packing",
            Pass::Claims => "claims",
            Pass::Bounds => "bounds",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locus {
    /// The netlist as a whole.
    Global,
    /// A cell, by index into [`axmul_fabric::Netlist::cells`].
    Cell(usize),
    /// A net, by [`axmul_fabric::NetId::index`].
    Net(usize),
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Global => f.write_str("netlist"),
            Locus::Cell(i) => write!(f, "cell c{i}"),
            Locus::Net(i) => write!(f, "net n{i}"),
        }
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced the finding.
    pub pass: Pass,
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `comb-loop`, `dead-o5`),
    /// suitable for filtering and for asserting in tests.
    pub code: &'static str,
    /// Which decision engine produced the verdict: `"static"` for
    /// purely structural reasoning, `"table"` for the exhaustive
    /// truth-table engine, `"known-bits"`/`"absint"` for the abstract
    /// interpretation, `"sim"` for simulation-backed checks, and
    /// `"sat"` for a CDCL (un)satisfiability proof. Reports record the
    /// engine per finding so a wide netlist shows *how* each verdict
    /// was reached instead of a blanket "skipped" note.
    pub engine: &'static str,
    /// What the finding points at.
    pub locus: Locus,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}/{} {}: {} <{}>",
            self.severity, self.pass, self.code, self.locus, self.message, self.engine
        )
    }
}

/// All findings for one netlist, plus what was skipped and why.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Name of the linted netlist.
    pub netlist: String,
    /// LUT count of the linted netlist (context for report readers).
    pub luts: usize,
    /// `CARRY4` count of the linted netlist.
    pub carry4s: usize,
    /// Every finding, sorted worst-first.
    pub diagnostics: Vec<Diagnostic>,
    /// Analyses that could not run (e.g. the truth-table engine beyond
    /// its input-width cap), with the reason. An entry here means the
    /// report is sound but not complete.
    pub skipped: Vec<String>,
}

impl LintReport {
    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of errors.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of infos.
    #[must_use]
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// `true` if the netlist passed: no errors, and no warnings either
    /// when `deny_warnings` is set.
    #[must_use]
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Findings grouped by code, with counts — the shape the roster
    /// summary tables want.
    #[must_use]
    pub fn by_code(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for d in &self.diagnostics {
            *map.entry(d.code).or_insert(0) += 1;
        }
        map
    }

    /// Sorts findings worst-first, then by pass, locus, and code, so
    /// reports are deterministic.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.pass.cmp(&b.pass))
                .then(a.locus.cmp(&b.locus))
                .then(a.code.cmp(b.code))
        });
    }

    /// Renders the report as a single JSON object (no external
    /// dependencies; the encoder escapes control characters, quotes and
    /// backslashes).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 128 * self.diagnostics.len());
        s.push_str("{\"netlist\":");
        json_string(&mut s, &self.netlist);
        s.push_str(&format!(
            ",\"luts\":{},\"carry4s\":{},\"errors\":{},\"warnings\":{},\"infos\":{}",
            self.luts,
            self.carry4s,
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        s.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"pass\":\"{}\",\"severity\":\"{}\",\"code\":\"{}\",\"engine\":\"{}\",",
                d.pass, d.severity, d.code, d.engine
            ));
            match d.locus {
                Locus::Global => s.push_str("\"locus\":null,"),
                Locus::Cell(i) => s.push_str(&format!("\"locus\":{{\"cell\":{i}}},")),
                Locus::Net(i) => s.push_str(&format!("\"locus\":{{\"net\":{i}}},")),
            }
            s.push_str("\"message\":");
            json_string(&mut s, &d.message);
            s.push('}');
        }
        s.push_str("],\"skipped\":[");
        for (i, sk) in self.skipped.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_string(&mut s, sk);
        }
        s.push_str("]}");
        s
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint `{}` ({} LUTs, {} CARRY4s): {} error(s), {} warning(s), {} info(s)",
            self.netlist,
            self.luts,
            self.carry4s,
            self.errors(),
            self.warnings(),
            self.infos()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        for s in &self.skipped {
            writeln!(f, "  [skipped] {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            netlist: "m".into(),
            luts: 2,
            carry4s: 1,
            diagnostics: vec![
                Diagnostic {
                    pass: Pass::DeadLogic,
                    severity: Severity::Info,
                    code: "dead-o5",
                    engine: "static",
                    locus: Locus::Cell(0),
                    message: "O5 unused".into(),
                },
                Diagnostic {
                    pass: Pass::Structure,
                    severity: Severity::Error,
                    code: "comb-loop",
                    engine: "sat",
                    locus: Locus::Net(3),
                    message: "cycle \"here\"".into(),
                },
            ],
            skipped: vec![],
        }
    }

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.infos(), 1);
        assert!(!r.is_clean(false));
        let clean = LintReport::default();
        assert!(clean.is_clean(true));
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = sample();
        r.sort();
        assert_eq!(r.diagnostics[0].code, "comb-loop");
    }

    #[test]
    fn json_escapes_and_structures() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains("\"netlist\":\"m\""));
        assert!(j.contains("\\\"here\\\""), "{j}");
        assert!(j.contains("\"locus\":{\"net\":3}"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"engine\":\"sat\""), "{j}");
        assert!(j.contains("\"engine\":\"static\""), "{j}");
    }

    #[test]
    fn display_mentions_every_diag() {
        let text = sample().to_string();
        assert!(text.contains("comb-loop"));
        assert!(text.contains("dead-o5"));
        assert!(text.contains("cell c0"));
    }

    #[test]
    fn by_code_groups() {
        let r = sample();
        let m = r.by_code();
        assert_eq!(m["comb-loop"], 1);
        assert_eq!(m["dead-o5"], 1);
    }
}
