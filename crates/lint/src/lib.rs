//! `axmul-lint` — static analysis for elaborated fabric netlists.
//!
//! The fabric's `NetlistBuilder` guarantees well-formedness by
//! construction, but it cannot see *waste* (dead LUT outputs, routed
//! pins the INIT ignores, carry stages wedged to a constant), it does
//! not enforce the 7-series packing rules the device imposes on top of
//! the primitives, and it knows nothing about what a netlist is
//! supposed to compute. This crate closes those gaps with five passes
//! over an already-built [`Netlist`]:
//!
//! 1. [`structure`] — driver-table consistency, single-driver,
//!    topological order, combinational loops, output-cone
//!    reachability. Re-proves the builder invariants, and is the real
//!    gatekeeper for netlists assembled via `Netlist::from_parts`.
//! 2. [`deadlogic`] — dead cells and outputs, ignored pins,
//!    constant-foldable LUTs, stuck carry stages. Constant verdicts
//!    escalate through three engines — the exhaustive per-net
//!    truth-table engine ([`tables`]) up to [`MAX_TABLE_BITS`] input
//!    bits, the known-bits abstract domain at any width, and a
//!    per-netlist SAT oracle (`axmul-sat`) for whatever the abstract
//!    domain leaves open — and every finding records which engine
//!    decided it, so wide netlists get verdicts, not "skipped" notes.
//! 3. [`packing`] — `LUT6_2` dual-output legality, `CARRY4` cascade
//!    rules, and an independent stranded-site recount cross-checked
//!    against [`axmul_fabric::area::AreaReport`].
//! 4. [`claims`] — structural-vs-behavioral equivalence with
//!    counterexample minimization, plus the paper's Table 2, Table 3
//!    and slice-packing claims. Past the exhaustive window the
//!    equivalence claim escalates to SAT: a CEGAR search pins the
//!    netlist's exact worst-case error against the exact product and
//!    cross-checks the model at the extremal witness, so 16×16 and
//!    wider designs get engine-tagged verdicts, not "skipped" notes.
//! 5. [`bounds`] — static value facts from the `axmul-absint`
//!    abstract-interpretation engine: proven output ranges, derived
//!    constant output bits and sound worst-case-error bounds, at any
//!    width.
//!
//! For golden-model comparison at widths where exhaustive simulation
//! is out of reach, [`Linter::lint_against_netlist`] proves (or
//! refutes, with a replayed counterexample) SAT equivalence against a
//! reference netlist.
//!
//! The severity policy: idioms the designs rely on (an unused
//! fracturable `O5`, a discarded final carry-out) are `Info`; anything
//! that wastes area or suggests a bug is `Warning`; ill-formedness,
//! packing violations and failed claims are `Error`. Every *proposed*
//! design in the paper's roster is warning-clean; the K baseline and
//! the VivadoIP emulations deliberately carry waste the linter flags
//! (see the `repro lint` experiment for the documented allowance). CI
//! gates on zero errors roster-wide and zero warnings outside that
//! allowance.
//!
//! # Examples
//!
//! ```
//! use axmul_core::behavioral::Approx4x4;
//! use axmul_core::structural::approx_4x4_netlist;
//! use axmul_lint::Linter;
//!
//! let report = Linter::new().lint_against(&approx_4x4_netlist(), &Approx4x4::new());
//! assert!(report.is_clean(true), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod claims;
pub mod deadlogic;
pub mod diag;
pub mod packing;
pub mod structure;
pub mod tables;

pub use diag::{Diagnostic, LintReport, Locus, Pass, Severity};
pub use tables::{NetTables, MAX_TABLE_BITS};

use axmul_core::Multiplier;
use axmul_fabric::Netlist;

/// Tunables for the analysis depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// Total operand bits up to which equivalence is proved
    /// exhaustively; beyond it, deterministic sampling runs first and
    /// the claim escalates to SAT.
    pub exhaustive_bits: u32,
    /// Number of operand pairs drawn when sampling.
    pub samples: u64,
    /// Per-solver-call conflict budget for the SAT escalation of the
    /// equivalence claim past the exhaustive window. Exceeding it
    /// downgrades the exact worst-case-error certificate to a bounded
    /// `equiv-sat-bounded` verdict (never a skip); `0` makes every
    /// solver call concede at its first conflict, effectively turning
    /// the escalation into a propagation-only probe — useful to keep
    /// debug-build test suites fast.
    pub sat_conflicts: u64,
}

impl Default for LintOptions {
    fn default() -> Self {
        // 24 bits = 16 M evaluations: exhaustive through 8x16; a 16x16
        // design falls back to sampling + SAT. 400 k conflicts covers
        // the deepest roster certificate (Ca 16x16, ~160 k) with ~2.5×
        // headroom while bounding the worst case to well under a
        // minute per design in release builds.
        LintOptions {
            exhaustive_bits: 24,
            samples: 65_536,
            sat_conflicts: 400_000,
        }
    }
}

/// The analyzer: runs the passes in order and aggregates a
/// [`LintReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Linter {
    opts: LintOptions,
}

impl Linter {
    /// A linter with default options.
    #[must_use]
    pub fn new() -> Self {
        Linter::default()
    }

    /// A linter with explicit options.
    #[must_use]
    pub fn with_options(opts: LintOptions) -> Self {
        Linter { opts }
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> &LintOptions {
        &self.opts
    }

    /// Runs the structural passes (1–3) on a netlist.
    #[must_use]
    pub fn lint(&self, netlist: &Netlist) -> LintReport {
        let (report, _) = self.base(netlist);
        report
    }

    /// Runs the structural passes (1–3) plus the equivalence claim
    /// check against a behavioral model: exhaustive inside
    /// [`LintOptions::exhaustive_bits`], sampled and SAT-escalated
    /// beyond it (see [`claims::check_equivalence`]).
    #[must_use]
    pub fn lint_against(&self, netlist: &Netlist, model: &dyn Multiplier) -> LintReport {
        let (mut report, sound) = self.base(netlist);
        if sound {
            claims::check_equivalence(netlist, model, &self.opts, &mut report.diagnostics);
        } else {
            report
                .skipped
                .push("equivalence check: netlist is structurally unsound".to_string());
        }
        report.sort();
        report
    }

    /// Runs the structural passes (1–3) plus a SAT equivalence proof
    /// against a *golden netlist* — the any-width counterpart of
    /// [`Linter::lint_against`]: no simulation or sampling is involved,
    /// so the verdict is exact even at 16×16 and beyond. A mismatch
    /// carries a counterexample independently replayed through
    /// `Netlist::eval`.
    #[must_use]
    pub fn lint_against_netlist(&self, netlist: &Netlist, golden: &Netlist) -> LintReport {
        let (mut report, sound) = self.base(netlist);
        if sound {
            match axmul_sat::check_equiv(netlist, golden, &axmul_sat::ProofOptions::default()) {
                Ok(r) => match r.outcome {
                    axmul_sat::EquivOutcome::Equivalent => {
                        report.diagnostics.push(Diagnostic {
                            pass: diag::Pass::Claims,
                            severity: Severity::Info,
                            code: "equiv-verified-sat",
                            engine: "sat",
                            locus: diag::Locus::Global,
                            message: format!(
                                "netlist proven equal to `{}` for all inputs ({})",
                                golden.name(),
                                if r.structural {
                                    "structurally identical — discharged without solving"
                                        .to_string()
                                } else {
                                    format!("UNSAT miter, {} conflicts", r.stats.conflicts)
                                }
                            ),
                        });
                    }
                    axmul_sat::EquivOutcome::NotEquivalent(cex) => {
                        let inputs: Vec<String> =
                            cex.inputs.iter().map(|(n, v)| format!("{n}={v}")).collect();
                        report.diagnostics.push(Diagnostic {
                            pass: diag::Pass::Claims,
                            severity: Severity::Error,
                            code: "equiv-mismatch",
                            engine: "sat",
                            locus: diag::Locus::Global,
                            message: format!(
                                "netlist disagrees with `{}`: at {} it yields {:?} vs {:?} \
                                 (counterexample confirmed by replay)",
                                golden.name(),
                                inputs.join(" "),
                                cex.lhs_outputs,
                                cex.rhs_outputs
                            ),
                        });
                    }
                },
                Err(e) => {
                    report
                        .skipped
                        .push(format!("SAT equivalence vs `{}`: {e}", golden.name()));
                }
            }
        } else {
            report
                .skipped
                .push("equivalence check: netlist is structurally unsound".to_string());
        }
        report.sort();
        report
    }

    fn base(&self, netlist: &Netlist) -> (LintReport, bool) {
        let mut report = LintReport {
            netlist: netlist.name().to_string(),
            luts: netlist.lut_count(),
            carry4s: netlist.carry4_count(),
            diagnostics: Vec::new(),
            skipped: Vec::new(),
        };
        let sound = structure::run(netlist, &mut report.diagnostics);
        if sound {
            let tables = match NetTables::build(netlist) {
                Ok(t) => t,
                Err(e) => {
                    report.skipped.push(format!("truth-table engine: {e}"));
                    None
                }
            };
            // Past MAX_TABLE_BITS the exhaustive tables are unavailable;
            // instead of recording a skip, constant checks escalate
            // through the known-bits domain to a SAT oracle, and each
            // finding records which engine decided it.
            let mut sat_oracle = if tables.is_none() {
                match axmul_sat::NetOracle::new(netlist) {
                    Ok(o) => Some(o),
                    Err(e) => {
                        report.skipped.push(format!(
                            "SAT constant oracle: {e}; constant checks fall back to \
                             the known-bits abstract interpretation alone"
                        ));
                        None
                    }
                }
            } else {
                None
            };
            let analysis = axmul_absint::analyze_netlist(netlist);
            deadlogic::run(
                netlist,
                tables.as_ref(),
                &analysis.known,
                sat_oracle.as_mut(),
                &mut report.diagnostics,
            );
            packing::run(netlist, &mut report.diagnostics);
            bounds::run(netlist, &analysis, &mut report.diagnostics);
        } else {
            report
                .skipped
                .push("dead-logic and packing passes: netlist is structurally unsound".to_string());
        }
        report.sort();
        (report, sound)
    }
}

/// Lints a netlist with default options (structural passes only).
#[must_use]
pub fn lint(netlist: &Netlist) -> LintReport {
    Linter::new().lint(netlist)
}

/// Checks every claim the paper makes about its elementary designs:
/// full lint plus equivalence on the approximate 4×2 and 4×4 netlists,
/// the Table 2 error characterization, the Table 3 INIT re-derivation,
/// and the single-slice packing claim (§3.1).
///
/// Returns one report per design. All are error-free when the shipped
/// designs match the paper.
#[must_use]
pub fn check_paper_claims(opts: LintOptions) -> Vec<LintReport> {
    use axmul_core::behavioral::{Approx4x2, Approx4x4};
    use axmul_core::structural::{approx_4x2_netlist, approx_4x4_netlist};

    let linter = Linter::with_options(opts);

    let nl42 = approx_4x2_netlist();
    let mut r42 = linter.lint_against(&nl42, &Approx4x2::new());
    // §3.1: "can be implemented using only four 6-input LUTs" — one
    // slice, no carry chain.
    claims::check_slice_fit(&nl42, 4, 0, &mut r42.diagnostics);
    r42.sort();

    let nl44 = approx_4x4_netlist();
    let mut r44 = linter.lint_against(&nl44, &Approx4x4::new());
    claims::check_table2(&nl44, &mut r44.diagnostics);
    claims::check_table3(&nl44, &mut r44.diagnostics);
    r44.sort();

    vec![r42, r44]
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_core::behavioral::Approx4x4;
    use axmul_core::structural::approx_4x4_netlist;

    #[test]
    fn wide_netlists_keep_constant_detection() {
        // 16×16 operands (32 input bits) put the netlist far beyond
        // MAX_TABLE_BITS, where the dead-logic pass used to skip every
        // constant check. The escalation chain must still catch a
        // provably-constant LUT — y = a[0] XOR a[0] ≡ 0 — with a
        // per-finding engine record and *zero* skipped entries.
        use axmul_fabric::{Init, NetlistBuilder};
        let mut b = NetlistBuilder::new("wide-const");
        let a = b.inputs("a", 16);
        let c = b.inputs("b", 16);
        let (dead, _) = b.lut2(Init::XOR2, a[0], a[0]);
        let (live, _) = b.lut2(Init::AND2, a[1], c[1]);
        let (merged, _) = b.lut2(Init::OR2, dead, live);
        b.output("y", merged);
        let nl = b.finish().unwrap();
        assert!(nl.input_bits() > MAX_TABLE_BITS);

        let report = Linter::new().lint(&nl);
        let konst: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "const-lut")
            .collect();
        assert!(
            !konst.is_empty(),
            "escalation must flag the constant LUT: {report}"
        );
        for d in &konst {
            assert!(
                d.engine == "known-bits" || d.engine == "sat",
                "wide-netlist verdicts come from known-bits or SAT, got `{}`",
                d.engine
            );
        }
        assert!(
            report.skipped.is_empty(),
            "wide netlists get engine-tagged verdicts, not skips: {report}"
        );
    }

    #[test]
    fn sat_engine_settles_what_known_bits_cannot() {
        // Two *separate* LUTs both computing a[0] ^ a[1], XORed
        // together: constant 0, but only through a cross-cell
        // correlation the per-net known-bits domain cannot represent.
        // Past MAX_TABLE_BITS this verdict must come from the SAT
        // oracle, and the finding must say so.
        use axmul_fabric::{Init, NetlistBuilder};
        let mut b = NetlistBuilder::new("wide-twins");
        let a = b.inputs("a", 9);
        let c = b.inputs("b", 9);
        let (x1, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let (x2, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let (dead, _) = b.lut2(Init::XOR2, x1, x2);
        let (live, _) = b.lut2(Init::AND2, a[2], c[2]);
        let (merged, _) = b.lut2(Init::OR2, dead, live);
        b.output("y", merged);
        let nl = b.finish().unwrap();
        assert!(nl.input_bits() > MAX_TABLE_BITS);

        let report = Linter::new().lint(&nl);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "const-lut" && d.engine == "sat"),
            "the cross-LUT constant needs the SAT engine: {report}"
        );
        assert!(report.skipped.is_empty(), "{report}");
    }

    #[test]
    fn netlist_equivalence_is_sat_backed_at_any_width() {
        use axmul_baselines::{kulkarni_netlist, rehman_netlist};
        let k = kulkarni_netlist(16).expect("width");
        let report = Linter::new().lint_against_netlist(&k, &k);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "equiv-verified-sat" && d.engine == "sat"),
            "{report}"
        );
        assert!(
            !report.skipped.iter().any(|s| s.contains("equivalence")),
            "no sampling concession on the SAT path: {report}"
        );

        let w = rehman_netlist(8).expect("width");
        let k8 = kulkarni_netlist(8).expect("width");
        let report = Linter::new().lint_against_netlist(&k8, &w);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "equiv-mismatch" && d.engine == "sat"),
            "K and W differ at 8x8: {report}"
        );
    }

    #[test]
    fn wide_equivalence_escalates_to_a_sat_certificate() {
        // Cc 16×16 (32 operand bits) is past the exhaustive window, so
        // the claim pass samples and then escalates: the SAT ascent
        // must pin the design's exact worst-case error (a ~3 k-conflict
        // certificate) and cross-check the behavioral model at the
        // extremal witness — with zero skipped entries.
        use axmul_core::behavioral::Cc;
        use axmul_core::structural::cc_netlist;
        let nl = cc_netlist(16).expect("width");
        let model = Cc::new(16).expect("width");
        let opts = LintOptions {
            samples: 8_192,
            ..LintOptions::default()
        };
        let report = Linter::with_options(opts).lint_against(&nl, &model);
        let cert = report
            .diagnostics
            .iter()
            .find(|d| d.code == "equiv-wce-certified")
            .unwrap_or_else(|| panic!("expected a SAT wce certificate: {report}"));
        assert_eq!(cert.engine, "sat", "{report}");
        assert!(report.by_code().contains_key("equiv-sampled"), "{report}");
        assert!(
            report.skipped.is_empty(),
            "wide equivalence gets SAT-backed verdicts, not skips: {report}"
        );
        assert!(report.is_clean(true), "{report}");
    }

    #[test]
    fn wce_budget_exhaustion_is_a_bounded_verdict_not_a_skip() {
        // sat_conflicts = 0: every solver call concedes at its first
        // conflict, so the escalation must land on the bounded verdict
        // — still an engine-tagged diagnostic, never a skip.
        use axmul_core::behavioral::Cc;
        use axmul_core::structural::cc_netlist;
        let nl = cc_netlist(16).expect("width");
        let model = Cc::new(16).expect("width");
        let opts = LintOptions {
            samples: 4_096,
            sat_conflicts: 0,
            ..LintOptions::default()
        };
        let report = Linter::with_options(opts).lint_against(&nl, &model);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "equiv-sat-bounded" && d.engine == "sat"),
            "{report}"
        );
        assert!(report.skipped.is_empty(), "{report}");
        assert!(report.is_clean(true), "{report}");
    }

    #[test]
    fn exact_wide_designs_get_a_bounded_probe_not_a_skip() {
        // A functionally exact 16×16 netlist claims wce = 0; that UNSAT
        // certificate is out of CDCL reach, so the escalation must cap
        // itself to a bounded refutation probe rather than burning the
        // full certification budget — and still record no skip.
        use axmul_baselines::array_mult_netlist;
        use axmul_core::Exact;
        let nl = array_mult_netlist(16, 16);
        let opts = LintOptions {
            samples: 4_096,
            sat_conflicts: 500,
            ..LintOptions::default()
        };
        let report = Linter::with_options(opts).lint_against(&nl, &Exact::new(16, 16));
        let bounded = report
            .diagnostics
            .iter()
            .find(|d| d.code == "equiv-sat-bounded")
            .unwrap_or_else(|| panic!("expected a bounded probe verdict: {report}"));
        assert_eq!(bounded.engine, "sat", "{report}");
        assert!(
            bounded.message.contains("error floor is 0"),
            "the probe must say it was capped by the exactness claim: {}",
            bounded.message
        );
        assert!(report.skipped.is_empty(), "{report}");
    }

    #[test]
    fn bounds_pass_reports_static_error_bound() {
        let report = Linter::new().lint(&approx_4x4_netlist());
        let codes = report.by_code();
        assert!(codes.contains_key("static-error-bound"), "{report}");
        // Info findings never dirty a report.
        assert!(report.is_clean(true), "{report}");
    }

    #[test]
    fn table3_netlist_is_clean_and_equivalent() {
        let report = Linter::new().lint_against(&approx_4x4_netlist(), &Approx4x4::new());
        assert!(report.is_clean(true), "{report}");
        assert!(report.by_code().contains_key("equiv-verified"), "{report}");
    }

    #[test]
    fn paper_claims_all_verify() {
        let reports = check_paper_claims(LintOptions::default());
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.is_clean(true), "{r}");
        }
        let codes = reports[1].by_code();
        assert!(codes.contains_key("table2-verified"), "{}", reports[1]);
        assert!(codes.contains_key("table3-verified"), "{}", reports[1]);
        assert!(reports[0].by_code().contains_key("slice-fit-verified"));
    }
}
