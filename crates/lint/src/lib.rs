//! `axmul-lint` — static analysis for elaborated fabric netlists.
//!
//! The fabric's `NetlistBuilder` guarantees well-formedness by
//! construction, but it cannot see *waste* (dead LUT outputs, routed
//! pins the INIT ignores, carry stages wedged to a constant), it does
//! not enforce the 7-series packing rules the device imposes on top of
//! the primitives, and it knows nothing about what a netlist is
//! supposed to compute. This crate closes those gaps with five passes
//! over an already-built [`Netlist`]:
//!
//! 1. [`structure`] — driver-table consistency, single-driver,
//!    topological order, combinational loops, output-cone
//!    reachability. Re-proves the builder invariants, and is the real
//!    gatekeeper for netlists assembled via `Netlist::from_parts`.
//! 2. [`deadlogic`] — dead cells and outputs, ignored pins,
//!    constant-foldable LUTs, stuck carry stages, powered by an
//!    exhaustive per-net truth-table engine ([`tables`]).
//! 3. [`packing`] — `LUT6_2` dual-output legality, `CARRY4` cascade
//!    rules, and an independent stranded-site recount cross-checked
//!    against [`axmul_fabric::area::AreaReport`].
//! 4. [`claims`] — structural-vs-behavioral equivalence with
//!    counterexample minimization, plus the paper's Table 2, Table 3
//!    and slice-packing claims.
//! 5. [`bounds`] — static value facts from the `axmul-absint`
//!    abstract-interpretation engine: proven output ranges, derived
//!    constant output bits and sound worst-case-error bounds, at any
//!    width (the truth-table engine stops at [`MAX_TABLE_BITS`] input
//!    bits; the known-bits domain also backstops the dead-logic pass
//!    beyond that limit).
//!
//! The severity policy: idioms the designs rely on (an unused
//! fracturable `O5`, a discarded final carry-out) are `Info`; anything
//! that wastes area or suggests a bug is `Warning`; ill-formedness,
//! packing violations and failed claims are `Error`. Every *proposed*
//! design in the paper's roster is warning-clean; the K baseline and
//! the VivadoIP emulations deliberately carry waste the linter flags
//! (see the `repro lint` experiment for the documented allowance). CI
//! gates on zero errors roster-wide and zero warnings outside that
//! allowance.
//!
//! # Examples
//!
//! ```
//! use axmul_core::behavioral::Approx4x4;
//! use axmul_core::structural::approx_4x4_netlist;
//! use axmul_lint::Linter;
//!
//! let report = Linter::new().lint_against(&approx_4x4_netlist(), &Approx4x4::new());
//! assert!(report.is_clean(true), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod claims;
pub mod deadlogic;
pub mod diag;
pub mod packing;
pub mod structure;
pub mod tables;

pub use diag::{Diagnostic, LintReport, Locus, Pass, Severity};
pub use tables::{NetTables, MAX_TABLE_BITS};

use axmul_core::Multiplier;
use axmul_fabric::Netlist;

/// Tunables for the analysis depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// Total operand bits up to which equivalence is proved
    /// exhaustively; beyond it, deterministic sampling is used.
    pub exhaustive_bits: u32,
    /// Number of operand pairs drawn when sampling.
    pub samples: u64,
}

impl Default for LintOptions {
    fn default() -> Self {
        // 24 bits = 16 M evaluations: exhaustive through 8x16; a 16x16
        // design falls back to sampling.
        LintOptions {
            exhaustive_bits: 24,
            samples: 65_536,
        }
    }
}

/// The analyzer: runs the passes in order and aggregates a
/// [`LintReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Linter {
    opts: LintOptions,
}

impl Linter {
    /// A linter with default options.
    #[must_use]
    pub fn new() -> Self {
        Linter::default()
    }

    /// A linter with explicit options.
    #[must_use]
    pub fn with_options(opts: LintOptions) -> Self {
        Linter { opts }
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> &LintOptions {
        &self.opts
    }

    /// Runs the structural passes (1–3) on a netlist.
    #[must_use]
    pub fn lint(&self, netlist: &Netlist) -> LintReport {
        let (report, _) = self.base(netlist);
        report
    }

    /// Runs the structural passes (1–3) plus the equivalence claim
    /// check against a behavioral model.
    #[must_use]
    pub fn lint_against(&self, netlist: &Netlist, model: &dyn Multiplier) -> LintReport {
        let (mut report, sound) = self.base(netlist);
        if sound {
            claims::check_equivalence(
                netlist,
                model,
                &self.opts,
                &mut report.diagnostics,
                &mut report.skipped,
            );
        } else {
            report
                .skipped
                .push("equivalence check: netlist is structurally unsound".to_string());
        }
        report.sort();
        report
    }

    fn base(&self, netlist: &Netlist) -> (LintReport, bool) {
        let mut report = LintReport {
            netlist: netlist.name().to_string(),
            luts: netlist.lut_count(),
            carry4s: netlist.carry4_count(),
            diagnostics: Vec::new(),
            skipped: Vec::new(),
        };
        let sound = structure::run(netlist, &mut report.diagnostics);
        if sound {
            let tables = match NetTables::build(netlist) {
                Ok(t) => {
                    if t.is_none() {
                        report.skipped.push(format!(
                            "truth-table engine: more than {MAX_TABLE_BITS} input bits; \
                             constant-propagation checks fall back to the known-bits \
                             abstract interpretation (sound, possibly incomplete)"
                        ));
                    }
                    t
                }
                Err(e) => {
                    report.skipped.push(format!("truth-table engine: {e}"));
                    None
                }
            };
            let analysis = axmul_absint::analyze_netlist(netlist);
            deadlogic::run(
                netlist,
                tables.as_ref(),
                &analysis.known,
                &mut report.diagnostics,
            );
            packing::run(netlist, &mut report.diagnostics);
            bounds::run(netlist, &analysis, &mut report.diagnostics);
        } else {
            report
                .skipped
                .push("dead-logic and packing passes: netlist is structurally unsound".to_string());
        }
        report.sort();
        (report, sound)
    }
}

/// Lints a netlist with default options (structural passes only).
#[must_use]
pub fn lint(netlist: &Netlist) -> LintReport {
    Linter::new().lint(netlist)
}

/// Checks every claim the paper makes about its elementary designs:
/// full lint plus equivalence on the approximate 4×2 and 4×4 netlists,
/// the Table 2 error characterization, the Table 3 INIT re-derivation,
/// and the single-slice packing claim (§3.1).
///
/// Returns one report per design. All are error-free when the shipped
/// designs match the paper.
#[must_use]
pub fn check_paper_claims(opts: LintOptions) -> Vec<LintReport> {
    use axmul_core::behavioral::{Approx4x2, Approx4x4};
    use axmul_core::structural::{approx_4x2_netlist, approx_4x4_netlist};

    let linter = Linter::with_options(opts);

    let nl42 = approx_4x2_netlist();
    let mut r42 = linter.lint_against(&nl42, &Approx4x2::new());
    // §3.1: "can be implemented using only four 6-input LUTs" — one
    // slice, no carry chain.
    claims::check_slice_fit(&nl42, 4, 0, &mut r42.diagnostics);
    r42.sort();

    let nl44 = approx_4x4_netlist();
    let mut r44 = linter.lint_against(&nl44, &Approx4x4::new());
    claims::check_table2(&nl44, &mut r44.diagnostics);
    claims::check_table3(&nl44, &mut r44.diagnostics);
    r44.sort();

    vec![r42, r44]
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_core::behavioral::Approx4x4;
    use axmul_core::structural::approx_4x4_netlist;

    #[test]
    fn wide_netlists_keep_constant_detection() {
        // 16×16 operands (32 input bits) put the netlist far beyond
        // MAX_TABLE_BITS, where the dead-logic pass used to skip every
        // constant check. The known-bits fallback must still catch a
        // provably-constant LUT: y = a[0] XOR a[0] ≡ 0.
        use axmul_fabric::{Init, NetlistBuilder};
        let mut b = NetlistBuilder::new("wide-const");
        let a = b.inputs("a", 16);
        let c = b.inputs("b", 16);
        let (dead, _) = b.lut2(Init::XOR2, a[0], a[0]);
        let (live, _) = b.lut2(Init::AND2, a[1], c[1]);
        let (merged, _) = b.lut2(Init::OR2, dead, live);
        b.output("y", merged);
        let nl = b.finish().unwrap();
        assert!(nl.input_bits() > MAX_TABLE_BITS);

        let report = Linter::new().lint(&nl);
        let codes = report.by_code();
        assert!(
            codes.contains_key("const-lut"),
            "known-bits fallback must flag the constant LUT: {report}"
        );
        assert!(
            report.skipped.iter().any(|s| s.contains("known-bits")),
            "the skip note should say what the fallback is: {report}"
        );
    }

    #[test]
    fn bounds_pass_reports_static_error_bound() {
        let report = Linter::new().lint(&approx_4x4_netlist());
        let codes = report.by_code();
        assert!(codes.contains_key("static-error-bound"), "{report}");
        // Info findings never dirty a report.
        assert!(report.is_clean(true), "{report}");
    }

    #[test]
    fn table3_netlist_is_clean_and_equivalent() {
        let report = Linter::new().lint_against(&approx_4x4_netlist(), &Approx4x4::new());
        assert!(report.is_clean(true), "{report}");
        assert!(report.by_code().contains_key("equiv-verified"), "{report}");
    }

    #[test]
    fn paper_claims_all_verify() {
        let reports = check_paper_claims(LintOptions::default());
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.is_clean(true), "{r}");
        }
        let codes = reports[1].by_code();
        assert!(codes.contains_key("table2-verified"), "{}", reports[1]);
        assert!(codes.contains_key("table3-verified"), "{}", reports[1]);
        assert!(reports[0].by_code().contains_key("slice-fit-verified"));
    }
}
