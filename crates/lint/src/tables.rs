//! The static truth-table engine: the complete Boolean function of
//! every net, derived from the INIT vectors and the carry equations
//! alone.
//!
//! For a netlist with `k` total primary-input bits, every net's
//! function is a `2^k`-entry truth table, stored bit-packed (64 table
//! entries per word). The netlist is compiled once into the fabric's
//! bit-sliced instruction stream ([`axmul_fabric::compile`]) and the
//! tables are filled 256 assignments per pass straight from the
//! closed-form sweep loader — the per-net words the simulator computes
//! *are* the truth-table words, so no transpose or gather is needed.
//! This is the same forward evaluation a synthesis tool would do
//! symbolically, materialized exhaustively, and is what lets the
//! dead-logic pass *prove* a net constant and the claims pass *prove*
//! functional equivalence rather than sample it.
//!
//! The engine caps itself at [`MAX_TABLE_BITS`] total input bits
//! (65 536 assignments, ≈8 KiB per net): every 4×4 and 8×8 design in
//! the paper fits; 16×16 netlists fall back to structural-only checks
//! and the caller records the skip in its report.

use axmul_fabric::compile::{CompiledNetlist, CompiledSim, SWEEP_WORDS};
use axmul_fabric::{FabricError, NetId, Netlist};

/// Largest total primary-input width the engine will tabulate.
pub const MAX_TABLE_BITS: u32 = 16;

/// The complete function of every net of one netlist, indexed by
/// primary-input assignment.
///
/// Assignment `v` maps to the input buses in declaration order,
/// LSB-first: bus 0 takes the low `w0` bits of `v`, bus 1 the next
/// `w1`, and so on.
#[derive(Debug, Clone)]
pub struct NetTables {
    input_bits: u32,
    words: usize,
    tables: Vec<Vec<u64>>,
}

impl NetTables {
    /// Tabulates every net of `netlist`.
    ///
    /// Returns `Ok(None)` if the netlist's total input width exceeds
    /// [`MAX_TABLE_BITS`] (the caller should degrade to structural
    /// checks and note the skip).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures ([`FabricError`]); on a netlist
    /// accepted by `NetlistBuilder::finish` this cannot happen.
    pub fn build(netlist: &Netlist) -> Result<Option<NetTables>, FabricError> {
        let input_bits = netlist.input_bits();
        if input_bits > MAX_TABLE_BITS {
            return Ok(None);
        }
        let assignments: u64 = 1u64 << input_bits;
        let words = usize::try_from(assignments.div_ceil(64)).expect("bounded by MAX_TABLE_BITS");
        let mut tables = vec![vec![0u64; words]; netlist.net_count()];
        // The sweep loader enumerates combined assignments with bus 0
        // in the low bits — exactly this module's indexing convention —
        // so each simulated lane word is a finished truth-table word.
        let prog = CompiledNetlist::compile(netlist);
        let mut sim: CompiledSim<'_, SWEEP_WORDS> = prog.simulator();
        let mut base = 0u64;
        while base < assignments {
            sim.load_sweep(base);
            sim.run();
            let first = (base / 64) as usize;
            let block_words = SWEEP_WORDS.min(words - first);
            for (net, table) in tables.iter_mut().enumerate() {
                let w = sim.net_word(NetId::new(net as u32));
                for (wi, &word) in w.iter().enumerate().take(block_words) {
                    // Mask off unused lanes of a partial final word.
                    let n = (assignments - base - 64 * wi as u64).min(64);
                    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                    table[first + wi] = word & mask;
                }
            }
            base += (64 * SWEEP_WORDS) as u64;
        }
        Ok(Some(NetTables {
            input_bits,
            words,
            tables,
        }))
    }

    /// Total primary-input bits tabulated.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// If the net's function is constant over *all* input assignments,
    /// returns the constant.
    #[must_use]
    pub fn constant_of(&self, net: NetId) -> Option<bool> {
        let table = &self.tables[net.index()];
        let assignments = 1u64 << self.input_bits;
        let last_mask = if assignments.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (assignments % 64)) - 1
        };
        let all_zero = table.iter().all(|&w| w == 0);
        if all_zero {
            return Some(false);
        }
        let all_one = table[..self.words - 1].iter().all(|&w| w == u64::MAX)
            && table[self.words - 1] == last_mask;
        all_one.then_some(true)
    }

    /// Whether two nets compute the same function.
    #[must_use]
    pub fn same_function(&self, a: NetId, b: NetId) -> bool {
        self.tables[a.index()] == self.tables[b.index()]
    }

    /// The value of `net` under input assignment `v`.
    #[must_use]
    pub fn value(&self, net: NetId, v: u64) -> bool {
        let table = &self.tables[net.index()];
        (table[(v / 64) as usize] >> (v % 64)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::{Init, NetlistBuilder};

    fn xor_with_const() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new("t");
        let a = b.inputs("a", 2);
        let (x, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let (stuck, _) = b.lut2(Init::AND2, a[0], a[0]);
        // AND(a0, a0) = a0 — not constant; build a real constant:
        let z = b.constant(false);
        let (c, _) = b.lut2(Init::AND2, a[0], z);
        b.output("x", x);
        b.output("s", stuck);
        b.output("c", c);
        (b.finish().unwrap(), x, c)
    }

    #[test]
    fn tabulates_and_detects_constants() {
        let (nl, x, c) = xor_with_const();
        let t = NetTables::build(&nl).unwrap().expect("2 input bits");
        assert_eq!(t.input_bits(), 2);
        assert_eq!(t.constant_of(x), None);
        assert_eq!(t.constant_of(c), Some(false));
        // x = a0 ^ a1 under assignment v = a0 | a1<<1.
        assert!(!t.value(x, 0b00));
        assert!(t.value(x, 0b01));
        assert!(t.value(x, 0b10));
        assert!(!t.value(x, 0b11));
    }

    #[test]
    fn same_function_detects_aliases() {
        let mut b = NetlistBuilder::new("t");
        let a = b.inputs("a", 2);
        let (x1, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let (x2, _) = b.lut2(Init::XOR2, a[1], a[0]);
        let (y, _) = b.lut2(Init::AND2, a[0], a[1]);
        b.output("x1", x1);
        b.output("x2", x2);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let t = NetTables::build(&nl).unwrap().unwrap();
        assert!(t.same_function(x1, x2), "XOR is symmetric");
        assert!(!t.same_function(x1, y));
    }

    #[test]
    fn caps_input_width() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 17);
        b.output("y", a[0]);
        let nl = b.finish().unwrap();
        assert!(NetTables::build(&nl).unwrap().is_none());
    }

    #[test]
    fn multi_word_tables_and_all_ones() {
        // 8 input bits -> 256 assignments -> 4 words per table.
        let mut b = NetlistBuilder::new("w");
        let a = b.inputs("a", 8);
        let one = b.constant(true);
        b.output("k", one);
        b.output("y", a[7]);
        let nl = b.finish().unwrap();
        let t = NetTables::build(&nl).unwrap().unwrap();
        assert_eq!(t.constant_of(one), Some(true));
        assert_eq!(t.constant_of(a[7]), None);
        assert!(t.value(a[7], 0x80));
        assert!(!t.value(a[7], 0x7F));
    }
}
