//! Pass 3 — packing legality on the 7-series slice.
//!
//! The fabric model is more permissive than the device: it will happily
//! represent a dual-output LUT whose `I5` is a signal, or a carry chain
//! tapped mid-`CARRY4`. Vivado would refuse to place either. This pass
//! enforces the device rules the builder does not:
//!
//! * **Dual-output `LUT6_2`** — when both `O6` and `O5` are in use, the
//!   hardware computes `O6 = I5 ? INIT[63:32] : INIT[31:0]` and
//!   `O5 = INIT[31:0]`, so `I5` must be tied to constant 1 for `O6` to
//!   realize an independent upper function. All of the paper's Table 3
//!   LUTs follow this convention.
//! * **Carry cascade** — the dedicated `CO[3] -> CIN` route is the only
//!   way to extend a chain. A `CIN` fed from a mid-chain `CO[0..=2]` is
//!   unroutable; a `CO[3]` fanning out to several `CIN`s needs the
//!   general fabric (legal via the `AX` bypass but a timing hazard).
//! * **Slice-column occupancy** — an independent recount of the LUT
//!   sites stranded by partially-used `CARRY4` stages, cross-checked
//!   against [`axmul_fabric::area::AreaReport`] so the two accountings
//!   can never silently drift apart.

use axmul_fabric::area::AreaReport;
use axmul_fabric::Netlist;
use axmul_fabric::{Cell, Driver};

use crate::diag::{Diagnostic, Locus, Pass, Severity};

/// Runs the pass, appending findings to `diags`.
pub fn run(netlist: &Netlist, diags: &mut Vec<Diagnostic>) {
    let fanouts = netlist.fanouts();
    let drivers = netlist.drivers();

    let mut stranded = 0usize;
    let mut cin_loads: Vec<(usize, usize)> = Vec::new(); // (co3 net, consuming cell)
    for (k, cell) in netlist.cells().iter().enumerate() {
        match cell {
            Cell::Lut { inputs, o6, o5, .. } => {
                let o6_used = fanouts[o6.index()] > 0;
                let o5_used = o5.is_some_and(|n| fanouts[n.index()] > 0);
                if o6_used && o5_used && !matches!(drivers[inputs[5].index()], Driver::Const(true))
                {
                    diags.push(Diagnostic {
                        pass: Pass::Packing,
                        severity: Severity::Error,
                        code: "o5-pairing",
                        engine: "static",
                        locus: Locus::Cell(k),
                        message: format!(
                            "LUT c{k} uses both O6 and O5 but I5 is not tied to constant 1; \
                             the fracturable LUT6_2 requires I5 = 1 for the dual-output mode"
                        ),
                    });
                }
            }
            Cell::Carry4 { cin, o, co, .. } => {
                match drivers[cin.index()] {
                    Driver::CarryCout(c, stage) if stage < 3 => {
                        diags.push(Diagnostic {
                            pass: Pass::Packing,
                            severity: Severity::Error,
                            code: "carry-tap",
                            engine: "static",
                            locus: Locus::Cell(k),
                            message: format!(
                                "CARRY4 c{k} CIN taps CO[{stage}] of c{}; only CO[3] has a \
                                 dedicated cascade route to the next CARRY4",
                                c.index()
                            ),
                        });
                    }
                    Driver::CarryCout(_, _) => cin_loads.push((cin.index(), k)),
                    _ => {}
                }
                stranded += (0..4)
                    .filter(|&i| o[i].is_none() && co[i].is_none())
                    .count();
            }
        }
    }

    // Each CO[3] may cascade into at most one CIN.
    cin_loads.sort_unstable();
    for w in cin_loads.windows(2) {
        if w[0].0 == w[1].0 {
            diags.push(Diagnostic {
                pass: Pass::Packing,
                severity: Severity::Warning,
                code: "carry-fanout",
                engine: "static",
                locus: Locus::Net(w[0].0),
                message: format!(
                    "carry-out net n{} cascades into the CIN of both c{} and c{}; the dedicated \
                     route is point-to-point, so one chain must detour through general fabric",
                    w[0].0, w[0].1, w[1].1
                ),
            });
        }
    }

    let area = AreaReport::of(netlist);
    if stranded != area.wasted_sites {
        diags.push(Diagnostic {
            pass: Pass::Packing,
            severity: Severity::Error,
            code: "area-mismatch",
            engine: "static",
            locus: Locus::Global,
            message: format!(
                "packing pass counts {stranded} stranded LUT site(s) but AreaReport reports {}; \
                 the two accountings have drifted apart",
                area.wasted_sites
            ),
        });
    }
}
