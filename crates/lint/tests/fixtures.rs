//! Deliberately-broken netlists, each of which must trigger exactly its
//! diagnostic — the negative half of the lint contract (the positive
//! half, a clean roster, lives in the bench crate's lint experiment).
//!
//! The broken fixtures are assembled through `Netlist::from_parts`, the
//! one entry point that skips `NetlistBuilder::finish` validation —
//! which is precisely the import path the linter exists to guard.

use axmul_core::behavioral::Approx4x4;
use axmul_core::structural::approx_4x4_netlist;
use axmul_fabric::{Cell, CellId, Driver, Init, Netlist, NetlistBuilder};
use axmul_lint::{claims, Linter, Severity};

/// Two LUTs feeding each other: a combinational cycle that no builder
/// netlist can represent.
#[test]
fn comb_loop_is_detected() {
    let n = |i: u32| axmul_fabric::NetId::new(i);
    let drivers = vec![
        Driver::Input(0, 0),           // n0 = a[0]
        Driver::LutO6(CellId::new(0)), // n1
        Driver::LutO6(CellId::new(1)), // n2
    ];
    let cells = vec![
        Cell::Lut {
            init: Init::XOR2,
            inputs: [n(2), n(0), n(0), n(0), n(0), n(0)],
            o6: n(1),
            o5: None,
        },
        Cell::Lut {
            init: Init::BUF,
            inputs: [n(1), n(0), n(0), n(0), n(0), n(0)],
            o6: n(2),
            o5: None,
        },
    ];
    let nl = Netlist::from_parts(
        "loop",
        drivers,
        cells,
        vec![("a".to_string(), vec![n(0)])],
        vec![("y".to_string(), vec![n(2)])],
    );
    let report = Linter::new().lint(&nl);
    assert_eq!(report.errors(), 1, "{report}");
    assert_eq!(report.by_code().get("comb-loop"), Some(&1), "{report}");
    // An unsound netlist must not be simulated: the table- and
    // claim-based analyses are recorded as skipped, not run.
    assert!(!report.skipped.is_empty(), "{report}");
}

/// A LUT whose outputs drive nothing at all: pure wasted area.
#[test]
fn dead_lut_is_detected() {
    let mut b = NetlistBuilder::new("deadlut");
    let a = b.inputs("a", 2);
    let (_unused, _) = b.lut2(Init::XOR2, a[0], a[1]);
    let (y, _) = b.lut2(Init::AND2, a[0], a[1]);
    b.output("y", y);
    let nl = b.finish().expect("structurally fine, just wasteful");
    let report = Linter::new().lint(&nl);
    assert_eq!(report.errors(), 0, "{report}");
    assert_eq!(report.warnings(), 1, "{report}");
    assert_eq!(report.by_code().get("dead-lut"), Some(&1), "{report}");
}

/// A fractured LUT using both O6 and O5 without tying I5 high — legal
/// in the abstract netlist, unmappable on a 7-series LUT6_2.
#[test]
fn illegal_o5_o6_pairing_is_detected() {
    let mut b = NetlistBuilder::new("badpair");
    let a = b.inputs("a", 3);
    let z = b.constant(false);
    let init = Init::from_dual(|i| (i & 1 == 1) ^ (i >> 5 & 1 == 1), |i| i >> 1 & 1 == 1);
    let (o6, o5) = b.lut6_2(init, [a[0], a[1], z, z, z, a[2]]);
    b.output("hi", o6);
    b.output("lo", o5);
    let nl = b.finish().expect("builder does not police packing");
    let report = Linter::new().lint(&nl);
    assert_eq!(report.errors(), 1, "{report}");
    assert_eq!(report.by_code().get("o5-pairing"), Some(&1), "{report}");
    assert_eq!(report.warnings(), 0, "{report}");
}

/// The shipped Table 3 netlist with one INIT complemented: equivalence
/// must fail with a minimized counterexample, and the Table 3 multiset
/// check must notice the missing published constant.
#[test]
fn wrong_init_is_detected() {
    let good = approx_4x4_netlist();
    let mut cells = good.cells().to_vec();
    let Cell::Lut { init, .. } = &mut cells[0] else {
        panic!("cell 0 of the 4x4 is a LUT");
    };
    *init = Init::from_raw(!init.raw());
    let bad = Netlist::from_parts(
        "tampered4x4",
        good.drivers().to_vec(),
        cells,
        good.input_buses().to_vec(),
        good.output_buses().to_vec(),
    );

    let report = Linter::new().lint_against(&bad, &Approx4x4::new());
    assert_eq!(report.by_code().get("equiv-mismatch"), Some(&1), "{report}");
    let mismatch = report
        .diagnostics
        .iter()
        .find(|d| d.code == "equiv-mismatch")
        .unwrap();
    assert_eq!(mismatch.severity, Severity::Error);
    assert!(
        mismatch.message.contains("minimized counterexample"),
        "{mismatch}"
    );

    let mut diags = Vec::new();
    claims::check_table3(&bad, &mut diags);
    assert!(
        diags.iter().any(|d| d.code == "table3-missing"),
        "{diags:?}"
    );

    // Control: the untampered netlist passes both checks.
    let clean = Linter::new().lint_against(&good, &Approx4x4::new());
    assert!(clean.is_clean(true), "{clean}");
    let mut diags = Vec::new();
    claims::check_table3(&good, &mut diags);
    assert!(
        diags.iter().all(|d| d.severity == Severity::Info),
        "{diags:?}"
    );
}

/// `from_parts` with a driver table that disagrees with the cell list:
/// the phantom and mismatched drivers are both reported.
#[test]
fn driver_table_inconsistencies_are_detected() {
    let n = |i: u32| axmul_fabric::NetId::new(i);
    let drivers = vec![
        Driver::Input(0, 0),           // n0
        Driver::LutO6(CellId::new(7)), // n1: claims a cell that doesn't exist
        Driver::LutO5(CellId::new(0)), // n2: cell 0 actually drives this as O6
    ];
    let cells = vec![Cell::Lut {
        init: Init::BUF,
        inputs: [n(0), n(0), n(0), n(0), n(0), n(0)],
        o6: n(2),
        o5: None,
    }];
    let nl = Netlist::from_parts(
        "phantom",
        drivers,
        cells,
        vec![("a".to_string(), vec![n(0)])],
        vec![("y".to_string(), vec![n(2)])],
    );
    let report = Linter::new().lint(&nl);
    let codes = report.by_code();
    assert_eq!(codes.get("undriven-net"), Some(&1), "{report}");
    assert_eq!(codes.get("driver-mismatch"), Some(&1), "{report}");
}
