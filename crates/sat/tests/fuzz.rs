//! Property-based fuzzing (satellite of the SAT subsystem): at widths
//! where exhaustive truth exists, every SAT equivalence verdict must
//! *coincide* with a bit-identical sweep — an UNSAT miter exactly when
//! the designs agree on all inputs, and every SAT counterexample
//! replaying to a real mismatch through `Netlist::eval`. Hostile
//! DIMACS-style inputs must always come back as typed errors, never a
//! panic.

use axmul_baselines::{array_mult_netlist, kulkarni_netlist, pp_truncated_netlist, rehman_netlist};
use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_fabric::{Cell, Init, Netlist};
use axmul_sat::{check_equiv, parse_dimacs, EquivOutcome, ProofOptions, SatError};
use proptest::prelude::*;

/// The structural designs available at a given width, by index.
fn design(bits: u32, idx: usize) -> Netlist {
    match idx % 6 {
        0 => kulkarni_netlist(bits).expect("width"),
        1 => rehman_netlist(bits).expect("width"),
        2 => ca_netlist(bits).expect("width"),
        3 => cc_netlist(bits).expect("width"),
        4 => pp_truncated_netlist(bits, bits, bits / 2 + 1),
        _ => array_mult_netlist(bits, bits),
    }
}

/// Exhaustive bit-identical comparison over all operand pairs.
fn sweep_equal(lhs: &Netlist, rhs: &Netlist, bits: u32) -> bool {
    let n = 1u64 << bits;
    for a in 0..n {
        for b in 0..n {
            if lhs.eval(&[a, b]).expect("eval") != rhs.eval(&[a, b]).expect("eval") {
                return false;
            }
        }
    }
    true
}

/// Checks one (lhs, rhs) pair: the SAT verdict must match the sweep,
/// and a counterexample must replay to a real mismatch.
fn check_pair_against_sweep(lhs: &Netlist, rhs: &Netlist, bits: u32) {
    let report = check_equiv(lhs, rhs, &ProofOptions::default()).expect("checkable pair");
    let truly_equal = sweep_equal(lhs, rhs, bits);
    match &report.outcome {
        EquivOutcome::Equivalent => {
            assert!(
                truly_equal,
                "SAT proved {} ≡ {} but the sweep found a mismatch",
                lhs.name(),
                rhs.name()
            );
        }
        EquivOutcome::NotEquivalent(cex) => {
            assert!(
                !truly_equal,
                "SAT refuted {} ≡ {} but the sweep found no mismatch",
                lhs.name(),
                rhs.name()
            );
            let vals: Vec<u64> = cex.inputs.iter().map(|(_, v)| *v).collect();
            assert_eq!(lhs.eval(&vals).expect("replay"), cex.lhs_outputs);
            assert_eq!(rhs.eval(&vals).expect("replay"), cex.rhs_outputs);
            assert_ne!(cex.lhs_outputs, cex.rhs_outputs);
        }
    }
}

/// Flips one INIT bit of the `pick`-th LUT cell, returning the mutant
/// and whether anything was actually flipped.
fn flip_init_bit(nl: &Netlist, pick: usize, bit: u32) -> Option<Netlist> {
    let mut cells = nl.cells().to_vec();
    let luts: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter_map(|(k, c)| matches!(c, Cell::Lut { .. }).then_some(k))
        .collect();
    let k = *luts.get(pick % luts.len())?;
    if let Cell::Lut { init, .. } = &mut cells[k] {
        *init = Init::from_raw(init.raw() ^ (1u64 << (bit % 64)));
    }
    Some(Netlist::from_parts(
        format!("{}-fuzz-mut", nl.name()),
        nl.drivers().to_vec(),
        cells,
        nl.input_buses().to_vec(),
        nl.output_buses().to_vec(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random design pairs at 4×4: SAT verdict ⇔ exhaustive sweep.
    #[test]
    fn pair_verdicts_match_the_sweep_at_4x4(i in 0..6usize, j in 0..6usize) {
        let lhs = design(4, i);
        let rhs = design(4, j);
        check_pair_against_sweep(&lhs, &rhs, 4);
    }

    /// Single-gate INIT mutations at 4×4: the flip may land on a dead
    /// or redundant table row (Equivalent) or change the function
    /// (NotEquivalent with a replaying counterexample) — either way
    /// the verdict must coincide with the sweep.
    #[test]
    fn init_mutation_verdicts_match_the_sweep_at_4x4(
        d in 0..6usize,
        pick in 0..64usize,
        bit in 0..64u32,
    ) {
        let nl = design(4, d);
        let mutant = flip_init_bit(&nl, pick, bit).expect("every design has LUTs");
        check_pair_against_sweep(&nl, &mutant, 4);
    }
}

proptest! {
    // 8×8 sweeps cost 2×65536 evals per case; fewer cases keep the
    // suite inside the tier-1 budget.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single-gate INIT mutations at 8×8, where the miter is past the
    /// lint truth-table cap's half-width: same coincidence property.
    #[test]
    fn init_mutation_verdicts_match_the_sweep_at_8x8(
        d in 0..6usize,
        pick in 0..256usize,
        bit in 0..64u32,
    ) {
        let nl = design(8, d);
        let mutant = flip_init_bit(&nl, pick, bit).expect("every design has LUTs");
        check_pair_against_sweep(&nl, &mutant, 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup fed to the DIMACS parser: a typed
    /// `SatError::Dimacs` or a successful parse — never a panic, and
    /// never any other error class.
    #[test]
    fn hostile_dimacs_bytes_are_typed_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        match parse_dimacs(&text) {
            Ok(_) => {}
            Err(SatError::Dimacs { .. }) => {}
            Err(other) => panic!("non-dimacs error class from parser: {other}"),
        }
    }

    /// Structured-but-wrong DIMACS: headers with absurd counts,
    /// literals past the declared range, truncated clauses. All typed.
    #[test]
    fn malformed_dimacs_structures_are_typed_errors(
        vars in 0..20u64,
        clauses in 0..8u64,
        lits in proptest::collection::vec(-25i64..25i64, 0..24),
        truncate in any::<bool>(),
    ) {
        let mut text = format!("c fuzz\np cnf {vars} {clauses}\n");
        for chunk in lits.chunks(3) {
            for l in chunk {
                text.push_str(&format!("{l} "));
            }
            if !truncate {
                text.push_str("0\n");
            }
        }
        match parse_dimacs(&text) {
            Ok(d) => {
                // Accepted instances must be internally consistent:
                // every literal within the declared variable range.
                for c in &d.clauses {
                    for l in c {
                        prop_assert!(l.var() >= 1 && l.var() <= d.num_vars);
                    }
                }
            }
            Err(SatError::Dimacs { .. }) => {}
            Err(other) => panic!("non-dimacs error class from parser: {other}"),
        }
    }
}
