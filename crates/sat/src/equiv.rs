//! Combinational equivalence checking via miter construction.
//!
//! Both netlists are encoded into one solver over *shared* input
//! variables; the miter output is the OR of all pairwise output XORs.
//! Structural hashing (see [`crate::gates`]) means two netlists that
//! are gate-for-gate identical collapse to a constant-false miter and
//! are discharged with **zero** solver calls. Otherwise the miter is
//! asserted and solved; a SAT model is decoded back to operand values
//! and *replayed* through `Netlist::eval` — an equivalence verdict of
//! "not equivalent" always carries a concrete, independently confirmed
//! counterexample.
//!
//! When a solve exceeds its conflict budget the checker falls back to
//! recursive case-splitting on primary-input variables (cube-and-
//! conquer under assumptions, MSB-first): learned clauses are shared
//! across all cubes because everything runs in one incremental solver.

use std::time::Instant;

use axmul_fabric::Netlist;

use crate::encode::{encode_netlist, Encoded};
use crate::gates::{self, Sig};
use crate::solver::{Lit, Model, SolveResult, Solver};
use crate::SatError;

/// Knobs for the proof search.
#[derive(Debug, Clone, Copy)]
pub struct ProofOptions {
    /// Conflict budget per solver call; exceeding it triggers
    /// case-splitting rather than giving up.
    pub max_conflicts: u64,
    /// Maximum number of input variables the case-split may fix before
    /// conceding [`SatError::Budget`].
    pub split_depth: u32,
}

impl Default for ProofOptions {
    fn default() -> Self {
        ProofOptions {
            max_conflicts: 4_000_000,
            split_depth: 12,
        }
    }
}

/// Aggregate search effort for one proof.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProofStats {
    /// Solver calls issued (0 for structural discharges).
    pub solves: u64,
    /// Conflicts spent.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Wall-clock milliseconds.
    pub elapsed_ms: f64,
}

/// A concrete distinguishing input, replayed for confirmation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Per input bus: (name, operand value).
    pub inputs: Vec<(String, u64)>,
    /// Left netlist's outputs at those inputs (per bus).
    pub lhs_outputs: Vec<u64>,
    /// Right netlist's outputs at those inputs (per bus).
    pub rhs_outputs: Vec<u64>,
}

/// Verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum EquivOutcome {
    /// Proven equivalent for every input.
    Equivalent,
    /// Not equivalent; the counterexample replays to a real mismatch.
    NotEquivalent(Counterexample),
}

/// Result of [`check_equiv`] / [`check_against_exact`].
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// The verdict.
    pub outcome: EquivOutcome,
    /// Search effort.
    pub stats: ProofStats,
    /// `true` if the miter folded to a constant and no solving was
    /// needed (structurally identical circuits).
    pub structural: bool,
}

impl EquivReport {
    /// `true` for a proven-equivalent verdict.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self.outcome, EquivOutcome::Equivalent)
    }
}

/// Proves or refutes combinational equivalence of two netlists.
///
/// The interfaces must agree: same number of input buses with the same
/// widths (names may differ — imported designs keep their own port
/// names), and same output shape. Buses are matched by position.
///
/// # Errors
///
/// [`SatError::Interface`] on shape mismatch, [`SatError::Budget`] if
/// the search exceeds its budget even after case-splitting,
/// [`SatError::Replay`] if a counterexample fails to reproduce (a
/// soundness self-check that should never fire).
pub fn check_equiv(
    lhs: &Netlist,
    rhs: &Netlist,
    opts: &ProofOptions,
) -> Result<EquivReport, SatError> {
    check_interfaces(lhs, rhs)?;
    let started = Instant::now();
    let mut solver = Solver::new();
    let enc_l = encode_netlist(&mut solver, lhs, None)?;
    let shared: Vec<Vec<Sig>> = enc_l.inputs.iter().map(|(_, v)| v.clone()).collect();
    let enc_r = encode_netlist(&mut solver, rhs, Some(&shared))?;

    let mut miter = Sig::FALSE;
    for (l_bus, r_bus) in enc_l.outputs.iter().zip(&enc_r.outputs) {
        let w = l_bus.1.len().max(r_bus.1.len());
        for i in 0..w {
            let a = l_bus.1.get(i).copied().unwrap_or(Sig::FALSE);
            let b = r_bus.1.get(i).copied().unwrap_or(Sig::FALSE);
            let d = gates::xor(&mut solver, a, b);
            miter = gates::or(&mut solver, miter, d);
        }
    }
    finish_miter(lhs, rhs, &enc_l, miter, solver, opts, started)
}

/// Proves or refutes that a netlist implements the exact unsigned
/// product of its two input buses — the behavioral [`Multiplier`]
/// contract, rendered as a ripple shift-add reference circuit in CNF.
///
/// [`Multiplier`]: https://docs.rs/ (axmul-core trait)
///
/// # Errors
///
/// As [`check_equiv`]; additionally [`SatError::Interface`] if the
/// netlist is not a two-operand single-output multiplier.
pub fn check_against_exact(
    netlist: &Netlist,
    opts: &ProofOptions,
) -> Result<EquivReport, SatError> {
    multiplier_interface(netlist)?;
    let started = Instant::now();
    let mut solver = Solver::new();
    let enc = encode_netlist(&mut solver, netlist, None)?;
    let exact = gates::exact_product(&mut solver, &enc.inputs[0].1, &enc.inputs[1].1);

    let out = &enc.outputs[0].1;
    let w = out.len().max(exact.len());
    let mut miter = Sig::FALSE;
    for i in 0..w {
        let a = out.get(i).copied().unwrap_or(Sig::FALSE);
        let b = exact.get(i).copied().unwrap_or(Sig::FALSE);
        let d = gates::xor(&mut solver, a, b);
        miter = gates::or(&mut solver, miter, d);
    }
    // Replay side: compare against integer multiplication.
    let reference = ExactReference;
    finish_miter_ref(netlist, &reference, &enc, miter, solver, opts, started)
}

fn check_interfaces(lhs: &Netlist, rhs: &Netlist) -> Result<(), SatError> {
    let li = lhs.input_buses();
    let ri = rhs.input_buses();
    if li.len() != ri.len() {
        return Err(SatError::Interface(format!(
            "`{}` has {} input buses, `{}` has {}",
            lhs.name(),
            li.len(),
            rhs.name(),
            ri.len()
        )));
    }
    for (i, ((ln, lb), (rn, rb))) in li.iter().zip(ri).enumerate() {
        if lb.len() != rb.len() {
            return Err(SatError::Interface(format!(
                "input bus {i} width mismatch: `{ln}` is {} bits, `{rn}` is {} bits",
                lb.len(),
                rb.len()
            )));
        }
        if lb.len() > 64 {
            return Err(SatError::Width(format!(
                "input bus `{ln}` is {} bits; buses wider than 64 are unsupported",
                lb.len()
            )));
        }
    }
    if lhs.output_buses().len() != rhs.output_buses().len() {
        return Err(SatError::Interface(format!(
            "`{}` has {} output buses, `{}` has {}",
            lhs.name(),
            lhs.output_buses().len(),
            rhs.name(),
            rhs.output_buses().len()
        )));
    }
    Ok(())
}

pub(crate) fn multiplier_interface(netlist: &Netlist) -> Result<(u32, u32), SatError> {
    let buses = netlist.input_buses();
    if buses.len() != 2 || netlist.output_buses().len() != 1 {
        return Err(SatError::Interface(format!(
            "`{}` is not a two-operand, one-output multiplier ({} in / {} out buses)",
            netlist.name(),
            buses.len(),
            netlist.output_buses().len()
        )));
    }
    let wa = buses[0].1.len() as u32;
    let wb = buses[1].1.len() as u32;
    if wa == 0 || wb == 0 || wa > 32 || wb > 32 {
        return Err(SatError::Width(format!(
            "operand widths {wa}x{wb} outside the supported 1..=32 range"
        )));
    }
    Ok((wa, wb))
}

/// Right-hand side of a miter for replay purposes.
trait ReplayRhs {
    fn eval(&self, inputs: &[u64]) -> Result<Vec<u64>, SatError>;
}

impl ReplayRhs for &Netlist {
    fn eval(&self, inputs: &[u64]) -> Result<Vec<u64>, SatError> {
        Netlist::eval(self, inputs).map_err(|e| SatError::Replay(e.to_string()))
    }
}

struct ExactReference;

impl ReplayRhs for ExactReference {
    fn eval(&self, inputs: &[u64]) -> Result<Vec<u64>, SatError> {
        let p = (inputs[0] as u128) * (inputs[1] as u128);
        Ok(vec![p as u64])
    }
}

fn finish_miter(
    lhs: &Netlist,
    rhs: &Netlist,
    enc_l: &Encoded,
    miter: Sig,
    solver: Solver,
    opts: &ProofOptions,
    started: Instant,
) -> Result<EquivReport, SatError> {
    finish_miter_ref(lhs, &rhs, enc_l, miter, solver, opts, started)
}

fn finish_miter_ref<R: ReplayRhs>(
    lhs: &Netlist,
    rhs: &R,
    enc_l: &Encoded,
    miter: Sig,
    mut solver: Solver,
    opts: &ProofOptions,
    started: Instant,
) -> Result<EquivReport, SatError> {
    let before = solver.stats();
    match miter {
        Sig::Const(false) => {
            return Ok(EquivReport {
                outcome: EquivOutcome::Equivalent,
                stats: ProofStats {
                    elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
                    ..ProofStats::default()
                },
                structural: true,
            });
        }
        Sig::Const(true) => {
            // Outputs differ for every input: any operand pair is a
            // counterexample; use zeros.
            let zeros: Vec<u64> = vec![0; enc_l.inputs.len()];
            let cex = replay(lhs, rhs, enc_l, &zeros)?;
            return Ok(EquivReport {
                outcome: EquivOutcome::NotEquivalent(cex),
                stats: ProofStats {
                    elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
                    ..ProofStats::default()
                },
                structural: true,
            });
        }
        Sig::Lit(l) => {
            solver.add_clause(&[l]);
        }
    }
    let splits = split_order(enc_l);
    let mut assumps = Vec::new();
    let outcome = solve_with_split(&mut solver, &mut assumps, &splits, opts)?;
    let after = solver.stats();
    let stats = ProofStats {
        solves: after.solves - before.solves,
        conflicts: after.conflicts - before.conflicts,
        decisions: after.decisions - before.decisions,
        propagations: after.propagations - before.propagations,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    };
    match outcome {
        None => Ok(EquivReport {
            outcome: EquivOutcome::Equivalent,
            stats,
            structural: false,
        }),
        Some(model) => {
            let vals: Vec<u64> = enc_l
                .inputs
                .iter()
                .map(|(_, sigs)| gates::decode(&model, sigs) as u64)
                .collect();
            let cex = replay(lhs, rhs, enc_l, &vals)?;
            Ok(EquivReport {
                outcome: EquivOutcome::NotEquivalent(cex),
                stats,
                structural: false,
            })
        }
    }
}

fn replay<R: ReplayRhs>(
    lhs: &Netlist,
    rhs: &R,
    enc_l: &Encoded,
    vals: &[u64],
) -> Result<Counterexample, SatError> {
    let l_out = lhs
        .eval(vals)
        .map_err(|e| SatError::Replay(e.to_string()))?;
    let r_out = rhs.eval(vals)?;
    let agree = l_out.len() == r_out.len() && l_out == r_out;
    if agree {
        return Err(SatError::Replay(format!(
            "SAT counterexample {vals:?} does not reproduce through Netlist::eval"
        )));
    }
    Ok(Counterexample {
        inputs: enc_l
            .inputs
            .iter()
            .zip(vals)
            .map(|((name, _), &v)| (name.clone(), v))
            .collect(),
        lhs_outputs: l_out,
        rhs_outputs: r_out,
    })
}

/// Input variables in case-split order: MSB-first, alternating buses.
pub(crate) fn split_order(enc: &Encoded) -> Vec<Lit> {
    let mut per_bus: Vec<Vec<Lit>> = enc
        .inputs
        .iter()
        .map(|(_, sigs)| {
            sigs.iter()
                .rev()
                .filter_map(|s| match s {
                    Sig::Lit(l) => Some(*l),
                    Sig::Const(_) => None,
                })
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    let mut any = true;
    while any {
        any = false;
        for bus in &mut per_bus {
            if let Some(l) = bus.first().copied() {
                bus.remove(0);
                out.push(l);
                any = true;
            }
        }
    }
    out
}

/// Budgeted solve with recursive input case-splitting.
///
/// Returns `Some(model)` (SAT), `None` (UNSAT across all cubes), or
/// [`SatError::Budget`] if a cube stayed Unknown with no split budget
/// left. Learned clauses are shared across cubes.
pub(crate) fn solve_with_split(
    solver: &mut Solver,
    assumps: &mut Vec<Lit>,
    splits: &[Lit],
    opts: &ProofOptions,
) -> Result<Option<Model>, SatError> {
    fn rec(
        solver: &mut Solver,
        assumps: &mut Vec<Lit>,
        splits: &[Lit],
        depth_left: u32,
        max_conflicts: u64,
    ) -> Result<Option<Model>, SatError> {
        match solver.solve(assumps, max_conflicts) {
            SolveResult::Sat(m) => Ok(Some(m)),
            SolveResult::Unsat => Ok(None),
            SolveResult::Unknown => {
                let (&x, rest) = splits.split_first().ok_or(SatError::Budget {
                    conflicts: solver.stats().conflicts,
                })?;
                if depth_left == 0 {
                    return Err(SatError::Budget {
                        conflicts: solver.stats().conflicts,
                    });
                }
                for branch in [x, !x] {
                    assumps.push(branch);
                    let r = rec(solver, assumps, rest, depth_left - 1, max_conflicts);
                    assumps.pop();
                    match r {
                        Ok(Some(m)) => return Ok(Some(m)),
                        Ok(None) => {}
                        Err(e) => return Err(e),
                    }
                }
                Ok(None)
            }
        }
    }
    rec(
        solver,
        assumps,
        splits,
        opts.split_depth,
        opts.max_conflicts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_baselines::{kulkarni_netlist, rehman_netlist};
    use axmul_fabric::{Init, NetlistBuilder};

    #[test]
    fn identical_netlists_discharge_structurally() {
        let nl = kulkarni_netlist(8).expect("width");
        let report = check_equiv(&nl, &nl, &ProofOptions::default()).expect("checkable");
        assert!(report.is_equivalent());
        assert!(report.structural, "identical netlists need no solving");
        assert_eq!(report.stats.solves, 0);
    }

    #[test]
    fn different_architectures_yield_replayed_counterexample() {
        let k = kulkarni_netlist(4).expect("width");
        let w = rehman_netlist(4).expect("width");
        let report = check_equiv(&k, &w, &ProofOptions::default()).expect("checkable");
        match report.outcome {
            EquivOutcome::NotEquivalent(cex) => {
                assert_ne!(cex.lhs_outputs, cex.rhs_outputs);
                // Independently recheck.
                let vals: Vec<u64> = cex.inputs.iter().map(|(_, v)| *v).collect();
                assert_eq!(k.eval(&vals).expect("eval"), cex.lhs_outputs);
                assert_eq!(w.eval(&vals).expect("eval"), cex.rhs_outputs);
            }
            EquivOutcome::Equivalent => panic!("K and W differ at 4x4"),
        }
    }

    #[test]
    fn init_mutation_is_caught_or_proven_dead() {
        // Flip one INIT bit of a 4x4 and expect NotEquivalent with a
        // replaying counterexample (bit 5 of the first LUT is live).
        let nl = kulkarni_netlist(4).expect("width");
        let mut cells = nl.cells().to_vec();
        let mutated = cells.iter_mut().find_map(|c| match c {
            axmul_fabric::Cell::Lut { init, .. } => {
                *init = Init::from_raw(init.raw() ^ (1 << 5));
                Some(())
            }
            axmul_fabric::Cell::Carry4 { .. } => None,
        });
        assert!(mutated.is_some());
        let twisted = Netlist::from_parts(
            format!("{}-mut", nl.name()),
            nl.drivers().to_vec(),
            cells,
            nl.input_buses().to_vec(),
            nl.output_buses().to_vec(),
        );
        let report = check_equiv(&nl, &twisted, &ProofOptions::default()).expect("checkable");
        // Whatever the verdict, it must agree with exhaustive sweep.
        let mut truly_equal = true;
        for a in 0..16u64 {
            for b in 0..16u64 {
                if nl.eval(&[a, b]).expect("eval") != twisted.eval(&[a, b]).expect("eval") {
                    truly_equal = false;
                }
            }
        }
        assert_eq!(report.is_equivalent(), truly_equal);
    }

    #[test]
    fn exact_reference_check_accepts_exact_and_rejects_approx() {
        // A 2x2 exact multiplier out of 4 AND LUTs + adder logic is
        // overkill to build here; use the baselines instead.
        use axmul_baselines::array_mult_netlist;
        let exact = array_mult_netlist(4, 4);
        let r = check_against_exact(&exact, &ProofOptions::default()).expect("checkable");
        assert!(r.is_equivalent(), "array multiplier is exact");

        let approx = kulkarni_netlist(4).expect("width");
        let r = check_against_exact(&approx, &ProofOptions::default()).expect("checkable");
        match r.outcome {
            EquivOutcome::NotEquivalent(cex) => {
                let a = cex.inputs[0].1;
                let b = cex.inputs[1].1;
                assert_ne!(cex.lhs_outputs[0], a * b);
            }
            EquivOutcome::Equivalent => panic!("kulkarni is approximate"),
        }
    }

    #[test]
    fn interface_mismatch_is_a_typed_error() {
        let nl = kulkarni_netlist(4).expect("width");
        let other = kulkarni_netlist(8).expect("width");
        match check_equiv(&nl, &other, &ProofOptions::default()) {
            Err(SatError::Interface(_)) => {}
            other => panic!("expected Interface error, got {other:?}"),
        }
        let mut b = NetlistBuilder::new("three-in");
        let a = b.inputs("a", 1);
        let _ = b.inputs("b", 1);
        let _ = b.inputs("c", 1);
        b.output("y", a[0]);
        let three = b.finish().expect("valid");
        match check_against_exact(&three, &ProofOptions::default()) {
            Err(SatError::Interface(_)) => {}
            other => panic!("expected Interface error, got {other:?}"),
        }
    }
}
