//! # axmul-sat — SAT-based formal verification for fabric netlists
//!
//! Every correctness claim in the workspace past 8×8 used to rest on
//! structure or sampling: the lint truth-table engine caps at 16 total
//! input bits, absint's intervals are sound but loose, and netio's
//! import check was a byte fingerprint. This crate supplies *semantic*
//! ground truth at any width:
//!
//! * [`solver`] — a dependency-free, std-only CDCL SAT solver
//!   (two-watched literals, first-UIP learning, VSIDS, phase saving,
//!   Luby restarts, incremental assumptions, conflict budgets). It
//!   never panics on hostile input; budget exhaustion is a typed
//!   `Unknown`, never a wrong answer.
//! * [`encode`] — Tseitin encoding of `fabric::Netlist`: LUT6_2 INIT
//!   cofactor clauses from a Minato–Morreale ISOP with repeated-pin
//!   and constant reduction, CARRY4 xor/mux chains whose unit
//!   propagation matches absint's three-valued simulation, and
//!   encode-time constant propagation throughout. Gates are
//!   hash-consed, so structurally identical logic collapses.
//! * [`equiv`] — combinational equivalence via miters over shared
//!   input variables, with counterexamples replayed through
//!   `Netlist::eval` for independent confirmation and cube-and-conquer
//!   case-splitting when a budget runs dry.
//! * [`wce`] — exact worst-case-error proofs: `|approx − exact| > m`
//!   comparator miters driven by a CEGAR ascent whose final UNSAT
//!   answer *is* the certificate `wce = m`.
//! * [`oracle`] — an incremental per-netlist constant oracle for
//!   lint's dead-logic pass past the truth-table cap.
//! * [`dimacs`] — DIMACS CNF parsing with typed errors for hostile
//!   input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
pub mod encode;
pub mod equiv;
pub mod gates;
pub mod oracle;
pub mod solver;
pub mod wce;

pub use dimacs::{parse_dimacs, Dimacs};
pub use encode::{encode_netlist, Encoded};
pub use equiv::{
    check_against_exact, check_equiv, Counterexample, EquivOutcome, EquivReport, ProofOptions,
    ProofStats,
};
pub use gates::Sig;
pub use oracle::NetOracle;
pub use solver::{Lit, Model, SolveResult, Solver, SolverStats};
pub use wce::{prove_wce, WceOptions, WceProof};

/// Typed error taxonomy: every failure mode of parsing, encoding and
/// proving is a variant, and no public entry point panics on hostile
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatError {
    /// Netlist interfaces don't line up (bus counts/widths).
    Interface(String),
    /// Operand or bus widths outside the supported range.
    Width(String),
    /// The netlist could not be encoded (e.g. a non-topological cell
    /// list from a hand-assembled import).
    Encode(String),
    /// Malformed DIMACS input, with the 1-based line number.
    Dimacs {
        /// Line where parsing failed (0 when the input has no lines).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The proof search exhausted its conflict and case-split budgets.
    Budget {
        /// Conflicts spent when the search conceded.
        conflicts: u64,
    },
    /// A counterexample failed to reproduce through `Netlist::eval` —
    /// a soundness self-check that indicates a solver or encoder bug.
    Replay(String),
}

impl std::fmt::Display for SatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatError::Interface(m) => write!(f, "interface mismatch: {m}"),
            SatError::Width(m) => write!(f, "unsupported width: {m}"),
            SatError::Encode(m) => write!(f, "encode error: {m}"),
            SatError::Dimacs { line, msg } => write!(f, "dimacs parse error at line {line}: {msg}"),
            SatError::Budget { conflicts } => {
                write!(f, "proof budget exhausted after {conflicts} conflicts")
            }
            SatError::Replay(m) => write!(f, "replay failure: {m}"),
        }
    }
}

impl std::error::Error for SatError {}
