//! A per-netlist SAT oracle for net-level constant queries.
//!
//! Built for `axmul-lint`'s dead-logic pass on netlists past the
//! truth-table engine's 16-input-bit cap: the netlist is encoded once,
//! then `constant_of` answers "is this net stuck?" with at most two
//! assumption solves per query — and usually zero, because every model
//! the solver produces is replayed over *all* nets to record which
//! values each net has been seen to take. A net observed at both 0 and
//! 1 is refuted as constant without ever touching the solver again.

use axmul_fabric::{NetId, Netlist};

use crate::encode::encode_netlist;
use crate::gates::Sig;
use crate::solver::{Model, SolveResult, Solver};
use crate::SatError;

/// Per-query conflict budget. Constant queries on fabric netlists are
/// shallow; this is a guard rail, not a tuning knob.
const QUERY_CONFLICTS: u64 = 200_000;

/// Incremental constant-query oracle over one encoded netlist.
#[derive(Debug)]
pub struct NetOracle {
    solver: Solver,
    sigs: Vec<Sig>,
    seen0: Vec<bool>,
    seen1: Vec<bool>,
    solves: u64,
}

impl NetOracle {
    /// Encodes `netlist` and primes the value cache with one model.
    ///
    /// # Errors
    ///
    /// [`SatError::Encode`] if the netlist cannot be encoded (only
    /// possible for hand-assembled, non-topological cell lists).
    pub fn new(netlist: &Netlist) -> Result<Self, SatError> {
        let mut solver = Solver::new();
        let enc = encode_netlist(&mut solver, netlist, None)?;
        let n = enc.nets.len();
        let mut oracle = NetOracle {
            solver,
            sigs: enc.nets,
            seen0: vec![false; n],
            seen1: vec![false; n],
            solves: 0,
        };
        // Prime: any model at all seeds half the refutations for free.
        if let SolveResult::Sat(m) = oracle.solver.solve(&[], QUERY_CONFLICTS) {
            oracle.record(&m);
            oracle.solves += 1;
        }
        Ok(oracle)
    }

    /// Solver calls spent so far (for reporting).
    #[must_use]
    pub fn solves(&self) -> u64 {
        self.solves
    }

    fn record(&mut self, model: &Model) {
        for (i, sig) in self.sigs.iter().enumerate() {
            if sig.value(model) {
                self.seen1[i] = true;
            } else {
                self.seen0[i] = true;
            }
        }
    }

    /// Proves a net constant (`Some(value)`) or refutes it (`None`).
    ///
    /// Sound in both directions up to the conflict budget: a `Some` is
    /// backed by an UNSAT proof of the opposite value; a `None` is
    /// either a pair of distinguishing models or a budget concession
    /// (conservative — never claims a constant it can't prove).
    pub fn constant_of(&mut self, net: NetId) -> Option<bool> {
        let i = net.index();
        let l = match *self.sigs.get(i)? {
            Sig::Const(b) => return Some(b),
            Sig::Lit(l) => l,
        };
        if self.seen0[i] && self.seen1[i] {
            return None;
        }
        if !self.seen1[i] {
            // Never seen true: candidate constant-false.
            self.solves += 1;
            match self.solver.solve(&[l], QUERY_CONFLICTS) {
                SolveResult::Unsat => return Some(false),
                SolveResult::Sat(m) => self.record(&m),
                SolveResult::Unknown => return None,
            }
        }
        if !self.seen0[i] {
            // Never seen false: candidate constant-true.
            self.solves += 1;
            match self.solver.solve(&[!l], QUERY_CONFLICTS) {
                SolveResult::Unsat => return Some(true),
                SolveResult::Sat(m) => self.record(&m),
                SolveResult::Unknown => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::{Init, NetlistBuilder};

    #[test]
    fn finds_constants_the_known_bits_domain_cannot() {
        // y = (a0 ^ a1) XOR (a0 ^ a1) through two *separate* LUTs: a
        // correlation no per-net interval/known-bits domain sees, but
        // trivially UNSAT for SAT.
        let mut b = NetlistBuilder::new("xor-twins");
        let a = b.inputs("a", 2);
        let (x1, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let (x2, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let (y, _) = b.lut2(Init::XOR2, x1, x2);
        let (live, _) = b.lut2(Init::AND2, a[0], a[1]);
        b.output("y", y);
        b.output("live", live);
        let nl = b.finish().expect("valid");
        let mut oracle = NetOracle::new(&nl).expect("encodable");
        assert_eq!(oracle.constant_of(y), Some(false));
        assert_eq!(oracle.constant_of(live), None);
        assert_eq!(oracle.constant_of(a[0]), None, "inputs are free");
    }

    #[test]
    fn model_cache_bounds_solver_calls() {
        let nl = axmul_baselines::kulkarni_netlist(8).expect("width");
        let mut oracle = NetOracle::new(&nl).expect("encodable");
        let mut nonconst = 0;
        for i in 0..nl.net_count() {
            if oracle.constant_of(NetId::new(i as u32)).is_none() {
                nonconst += 1;
            }
        }
        assert!(nonconst > 0);
        // Far fewer solves than 2 * nets: the cache must be working.
        assert!(
            oracle.solves() < nl.net_count() as u64 / 2,
            "{} solves for {} nets",
            oracle.solves(),
            nl.net_count()
        );
    }
}
