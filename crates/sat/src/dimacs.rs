//! DIMACS CNF parsing with typed errors.
//!
//! Accepts the classic `p cnf <vars> <clauses>` format with `c`
//! comment lines and zero-terminated clauses. Hostile input — garbage
//! tokens, absurd variable counts, truncated clauses, numeric
//! overflow — always comes back as [`SatError::Dimacs`] with a line
//! number; nothing panics or allocates unboundedly.

use crate::solver::{Lit, Solver};
use crate::SatError;

/// Hard cap on declared variables/clauses, so a hostile header cannot
/// drive allocation.
const MAX_DECL: u64 = 10_000_000;

/// A parsed DIMACS instance.
#[derive(Debug, Clone)]
pub struct Dimacs {
    /// Declared variable count.
    pub num_vars: u32,
    /// Clauses, as parsed (no normalization).
    pub clauses: Vec<Vec<Lit>>,
}

impl Dimacs {
    /// Loads the instance into a fresh [`Solver`].
    ///
    /// DIMACS variable `i` maps to solver variable `i` (solver
    /// variable 0 is the reserved constant, so indices line up
    /// naturally with the 1-based DIMACS convention).
    #[must_use]
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        while s.num_vars() <= self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// [`SatError::Dimacs`] on any malformed input, with the 1-based line
/// number where parsing failed.
pub fn parse_dimacs(text: &str) -> Result<Dimacs, SatError> {
    let err = |line: usize, msg: &str| SatError::Dimacs {
        line,
        msg: msg.to_string(),
    };
    let mut num_vars: Option<u64> = None;
    let mut num_clauses: Option<u64> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(err(lineno, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(err(lineno, "problem line is not `p cnf <vars> <clauses>`"));
            }
            let v: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(lineno, "missing or non-numeric variable count"))?;
            let c: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(lineno, "missing or non-numeric clause count"))?;
            if it.next().is_some() {
                return Err(err(lineno, "trailing tokens on problem line"));
            }
            if v > MAX_DECL || c > MAX_DECL {
                return Err(err(lineno, "declared size exceeds the 10M cap"));
            }
            num_vars = Some(v);
            num_clauses = Some(c);
            continue;
        }
        let Some(nv) = num_vars else {
            return Err(err(lineno, "clause before the problem line"));
        };
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| err(lineno, "non-numeric literal"))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
                if clauses.len() as u64 > num_clauses.unwrap_or(0) {
                    return Err(err(lineno, "more clauses than declared"));
                }
                continue;
            }
            let var = n.unsigned_abs();
            if var > nv {
                return Err(err(lineno, "literal references an undeclared variable"));
            }
            current.push(Lit::new(var as u32, n < 0));
        }
    }
    if !current.is_empty() {
        return Err(SatError::Dimacs {
            line: text.lines().count(),
            msg: "unterminated clause (missing trailing 0)".to_string(),
        });
    }
    let Some(nv) = num_vars else {
        return Err(err(0, "missing problem line"));
    };
    if clauses.len() as u64 != num_clauses.unwrap_or(0) {
        return Err(SatError::Dimacs {
            line: text.lines().count(),
            msg: format!(
                "declared {} clauses, found {}",
                num_clauses.unwrap_or(0),
                clauses.len()
            ),
        });
    }
    Ok(Dimacs {
        num_vars: nv as u32,
        clauses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parses_and_solves_a_classic_instance() {
        let text = "c tiny\np cnf 3 4\n1 2 0\n-1 2 0\n-2 3 0\n-2 -3 0\n";
        let d = parse_dimacs(text).expect("valid dimacs");
        assert_eq!(d.num_vars, 3);
        assert_eq!(d.clauses.len(), 4);
        let mut s = d.into_solver();
        assert!(matches!(s.solve(&[], 10_000), SolveResult::Unsat));
    }

    #[test]
    fn hostile_inputs_return_typed_errors() {
        let cases = [
            "p cnf",                              // truncated header
            "p cnf x y",                          // non-numeric header
            "p cnf 99999999999 1\n1 0",           // absurd var count
            "1 2 0",                              // clause before header
            "p cnf 2 1\n1 9 0",                   // undeclared variable
            "p cnf 2 1\n1 zebra 0",               // garbage token
            "p cnf 2 1\n1 2",                     // unterminated clause
            "p cnf 2 1\n1 0\n2 0",                // more clauses than declared
            "p cnf 2 2\n1 0",                     // fewer clauses than declared
            "p cnf 2 1\np cnf 2 1\n1 0",          // duplicate header
            "p cnf 2 1\n123456789123456789123 0", // overflow literal
            "",                                   // empty input
        ];
        for text in cases {
            match parse_dimacs(text) {
                Err(SatError::Dimacs { .. }) => {}
                other => panic!("expected Dimacs error for {text:?}, got {other:?}"),
            }
        }
    }
}
