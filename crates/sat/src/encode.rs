//! Tseitin encoding of `fabric::Netlist` into CNF.
//!
//! Per-primitive rules:
//!
//! * **LUT6_2** — the 64-bit `INIT` is first *reduced* over the pins
//!   that are actually distinct variables: constant pins and repeated
//!   pins (the same net wired to several inputs, including through
//!   opposite polarities after folding) are substituted into the truth
//!   table at encode time. If the reduced table is constant or a copy
//!   (or inversion) of a single pin, no clauses are emitted at all.
//!   Otherwise the output variable is defined by cofactor clauses from
//!   a Minato–Morreale irredundant sum-of-products of the reduced
//!   on-set and off-set, which is both compact and
//!   propagation-complete in each direction. `O5` is encoded the same
//!   way from the lower 32 INIT bits as a 5-input function.
//! * **CARRY4** — per stage `i`: `O[i] = S[i] ⊕ C[i]` and
//!   `C[i+1] = S[i] ? C[i] : DI[i]`, built from the [`crate::gates`]
//!   xor/mux builders. The mux's redundant consensus clauses make the
//!   chain's unit propagation exactly as strong as the three-valued
//!   (`KnownBit`) simulation in `axmul-absint`.
//! * **Constants** propagate through everything: a net the encoder can
//!   prove constant never becomes a variable, so downstream gates keep
//!   folding.

use axmul_fabric::{Cell, Driver, Netlist};

use crate::gates::{self, Sig};
use crate::solver::{GateKey, Lit, Solver};
use crate::SatError;

/// An encoded netlist: the signal for every net, plus the bus views.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Input buses (name, little-endian signals).
    pub inputs: Vec<(String, Vec<Sig>)>,
    /// Output buses (name, little-endian signals).
    pub outputs: Vec<(String, Vec<Sig>)>,
    /// Per-net signals, indexed by `NetId::index()`.
    pub nets: Vec<Sig>,
}

/// Encodes `netlist` into `solver`.
///
/// With `bound_inputs`, the primary inputs are tied to the given
/// signals (one `Vec<Sig>` per input bus, in bus order) — this is how
/// a miter shares its inputs between two netlists. With `None`, fresh
/// variables are created.
///
/// # Errors
///
/// [`SatError::Interface`] if `bound_inputs` does not match the
/// netlist's bus shape; [`SatError::Encode`] if the netlist references
/// a net before defining it (impossible for builder-validated
/// netlists, but imported ones are checked rather than trusted).
pub fn encode_netlist(
    solver: &mut Solver,
    netlist: &Netlist,
    bound_inputs: Option<&[Vec<Sig>]>,
) -> Result<Encoded, SatError> {
    const UNDEF: Sig = Sig::Const(false);
    let n = netlist.net_count();
    let mut nets: Vec<Sig> = vec![UNDEF; n];
    let mut defined: Vec<bool> = vec![false; n];

    if let Some(bound) = bound_inputs {
        if bound.len() != netlist.input_buses().len() {
            return Err(SatError::Interface(format!(
                "bound inputs carry {} buses, netlist `{}` has {}",
                bound.len(),
                netlist.name(),
                netlist.input_buses().len()
            )));
        }
        for (i, (name, bits)) in netlist.input_buses().iter().enumerate() {
            if bound[i].len() != bits.len() {
                return Err(SatError::Interface(format!(
                    "bound bus {i} has {} bits, netlist bus `{name}` has {}",
                    bound[i].len(),
                    bits.len()
                )));
            }
        }
    }

    let mut inputs: Vec<(String, Vec<Sig>)> = Vec::new();
    for (b, (name, bits)) in netlist.input_buses().iter().enumerate() {
        let mut sigs = Vec::with_capacity(bits.len());
        for (i, &net) in bits.iter().enumerate() {
            let sig = match bound_inputs {
                Some(bound) => bound[b][i],
                None => Sig::Lit(solver.new_var()),
            };
            nets[net.index()] = sig;
            defined[net.index()] = true;
            sigs.push(sig);
        }
        inputs.push((name.clone(), sigs));
    }
    for (i, d) in netlist.drivers().iter().enumerate() {
        if let Driver::Const(v) = d {
            nets[i] = Sig::Const(*v);
            defined[i] = true;
        }
    }

    let fetch =
        |nets: &[Sig], defined: &[bool], id: axmul_fabric::NetId| -> Result<Sig, SatError> {
            if defined.get(id.index()).copied().unwrap_or(false) {
                Ok(nets[id.index()])
            } else {
                Err(SatError::Encode(format!(
                    "net {id} used before it is driven (netlist `{}` is not topologically ordered)",
                    netlist.name()
                )))
            }
        };

    for cell in netlist.cells() {
        match cell {
            Cell::Lut {
                init,
                inputs: pins,
                o6,
                o5,
            } => {
                let mut pin_sigs = [Sig::FALSE; 6];
                for (k, p) in pins.iter().enumerate() {
                    pin_sigs[k] = fetch(&nets, &defined, *p)?;
                }
                let o6_sig = lut_output(solver, init.raw(), &pin_sigs);
                nets[o6.index()] = o6_sig;
                defined[o6.index()] = true;
                if let Some(o5_net) = o5 {
                    // O5 is the lower 32 INIT bits as a 5-input
                    // function; lift it to a 6-pin table that ignores
                    // I5 so the same reduction path applies.
                    let raw = init.raw();
                    let mut t5 = 0u64;
                    for m in 0u64..64 {
                        if (raw >> (m & 0x1F)) & 1 == 1 {
                            t5 |= 1 << m;
                        }
                    }
                    let o5_sig = lut_output(solver, t5, &pin_sigs);
                    nets[o5_net.index()] = o5_sig;
                    defined[o5_net.index()] = true;
                }
            }
            Cell::Carry4 { cin, s, di, o, co } => {
                let mut carry = fetch(&nets, &defined, *cin)?;
                for i in 0..4 {
                    let s_sig = fetch(&nets, &defined, s[i])?;
                    let di_sig = fetch(&nets, &defined, di[i])?;
                    if let Some(o_net) = o[i] {
                        let sum = gates::xor(solver, s_sig, carry);
                        nets[o_net.index()] = sum;
                        defined[o_net.index()] = true;
                    }
                    carry = gates::mux(solver, s_sig, carry, di_sig);
                    if let Some(co_net) = co[i] {
                        nets[co_net.index()] = carry;
                        defined[co_net.index()] = true;
                    }
                }
            }
        }
    }

    let mut outputs: Vec<(String, Vec<Sig>)> = Vec::new();
    for (name, bits) in netlist.output_buses() {
        let mut sigs = Vec::with_capacity(bits.len());
        for &net in bits {
            sigs.push(fetch(&nets, &defined, net)?);
        }
        outputs.push((name.clone(), sigs));
    }
    Ok(Encoded {
        inputs,
        outputs,
        nets,
    })
}

/// Encodes one LUT output: reduces the 64-bit table over the distinct
/// variable pins, folds constants/copies, otherwise emits ISOP
/// cofactor clauses for a fresh output variable.
fn lut_output(solver: &mut Solver, table: u64, pins: &[Sig; 6]) -> Sig {
    // Distinct support variables. A pin is either constant, or a
    // literal over some variable (possibly negated, possibly shared
    // with another pin).
    let mut vars: Vec<u32> = Vec::new();
    let mut slot_of = [0usize; 6];
    for (i, pin) in pins.iter().enumerate() {
        if let Sig::Lit(l) = pin {
            if let Some(pos) = vars.iter().position(|&v| v == l.var()) {
                slot_of[i] = pos;
            } else {
                slot_of[i] = vars.len();
                vars.push(l.var());
            }
        }
    }
    let k = vars.len();
    debug_assert!(k <= 6);
    let mask: u64 = if k == 6 {
        u64::MAX
    } else {
        (1u64 << (1 << k)) - 1
    };

    // Reduced table over the k support variables (by *value* of the
    // variable, with per-pin polarity folded in).
    let mut rtab = 0u64;
    for m in 0u64..(1 << k) {
        let mut idx = 0u64;
        for (i, pin) in pins.iter().enumerate() {
            let bit = match pin {
                Sig::Const(b) => *b,
                Sig::Lit(l) => ((m >> slot_of[i]) & 1 == 1) ^ l.is_neg(),
            };
            idx |= (bit as u64) << i;
        }
        if (table >> idx) & 1 == 1 {
            rtab |= 1 << m;
        }
    }

    if rtab == 0 {
        return Sig::FALSE;
    }
    if rtab == mask {
        return Sig::TRUE;
    }
    // Copy / inversion of a single support variable?
    for (slot, &v) in vars.iter().enumerate() {
        let proj = projection(slot, k);
        if rtab == proj {
            return Sig::Lit(Lit::new(v, false));
        }
        if rtab == !proj & mask {
            return Sig::Lit(Lit::new(v, true));
        }
    }

    // Hash-cons the reduced function over its (positive) support.
    let mut key_lits = [0u32; 6];
    for (slot, &v) in vars.iter().enumerate() {
        key_lits[slot] = Lit::new(v, false).code() as u32;
    }
    let key = GateKey::Lut(rtab, key_lits);
    if let Some(out) = solver.cached_gate(&key) {
        return Sig::Lit(out);
    }

    let out = solver.new_var();
    // On-set cubes imply the output; off-set cubes imply its negation.
    for cube in isop(rtab, rtab, k) {
        let mut clause = vec![out];
        push_cube_negation(&mut clause, cube, &vars);
        solver.add_clause(&clause);
    }
    let offset = !rtab & mask;
    for cube in isop(offset, offset, k) {
        let mut clause = vec![!out];
        push_cube_negation(&mut clause, cube, &vars);
        solver.add_clause(&clause);
    }
    solver.cache_gate(key, out);
    Sig::Lit(out)
}

/// Truth table (over `k` vars) of the projection onto variable `slot`.
fn projection(slot: usize, k: usize) -> u64 {
    let mut t = 0u64;
    for m in 0u64..(1 << k) {
        if (m >> slot) & 1 == 1 {
            t |= 1 << m;
        }
    }
    t
}

/// A product term over ≤6 variables: `pos`/`neg` are slot bitmasks.
#[derive(Debug, Clone, Copy, Default)]
struct Cube {
    pos: u8,
    neg: u8,
}

fn push_cube_negation(clause: &mut Vec<Lit>, cube: Cube, vars: &[u32]) {
    for (slot, &v) in vars.iter().enumerate() {
        if cube.pos >> slot & 1 == 1 {
            clause.push(Lit::new(v, true));
        } else if cube.neg >> slot & 1 == 1 {
            clause.push(Lit::new(v, false));
        }
    }
}

/// Minato–Morreale irredundant SOP of an incompletely specified
/// function: covers at least `l`, at most `u` (`l ⊆ u`), over `k`
/// variables of a ≤64-bit truth table.
fn isop(l: u64, u: u64, k: usize) -> Vec<Cube> {
    debug_assert_eq!(l & !u, 0);
    if l == 0 {
        return Vec::new();
    }
    let full: u64 = if k == 6 {
        u64::MAX
    } else {
        (1u64 << (1 << k)) - 1
    };
    if u == full {
        return vec![Cube::default()];
    }
    debug_assert!(k > 0, "constant-1 lower bound with u != full");
    let j = k - 1;
    let (l0, l1) = (cofactor(l, k, j, false), cofactor(l, k, j, true));
    let (u0, u1) = (cofactor(u, k, j, false), cofactor(u, k, j, true));

    let c0 = isop(l0 & !u1, u0, j);
    let c1 = isop(l1 & !u0, u1, j);
    let cov0 = cover_table(&c0, j);
    let cov1 = cover_table(&c1, j);
    let l_star = (l0 & !cov0) | (l1 & !cov1);
    let c_star = isop(l_star, u0 & u1, j);

    let mut out = Vec::with_capacity(c0.len() + c1.len() + c_star.len());
    for mut c in c0 {
        c.neg |= 1 << j;
        out.push(c);
    }
    for mut c in c1 {
        c.pos |= 1 << j;
        out.push(c);
    }
    out.extend(c_star);
    out
}

/// Cofactor of a `k`-variable table with respect to variable `j`,
/// compacted to `k-1` variables.
fn cofactor(t: u64, k: usize, j: usize, v: bool) -> u64 {
    let mut out = 0u64;
    for m in 0u64..(1 << (k - 1)) {
        let low = m & ((1 << j) - 1);
        let high = m >> j;
        let idx = low | ((v as u64) << j) | (high << (j + 1));
        if (t >> idx) & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

/// Union of the cubes' truth tables over `k` variables.
fn cover_table(cubes: &[Cube], k: usize) -> u64 {
    let mut t = 0u64;
    for m in 0u64..(1 << k) {
        for c in cubes {
            let m8 = m as u8;
            if m8 & c.pos == c.pos && m8 & c.neg == 0 {
                t |= 1 << m;
                break;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;
    use axmul_fabric::{Init, NetlistBuilder};

    fn check_isop(table: u64, k: usize) {
        let cubes = isop(table, table, k);
        let mask: u64 = if k == 6 {
            u64::MAX
        } else {
            (1u64 << (1 << k)) - 1
        };
        assert_eq!(
            cover_table(&cubes, k) & mask,
            table & mask,
            "k={k} t={table:x}"
        );
    }

    #[test]
    fn isop_covers_exactly() {
        // All 3-var functions, plus a spread of wider ones.
        for t in 0u64..256 {
            check_isop(t, 3);
        }
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            state = state.wrapping_mul(0xD129_8E93_5770_9FBD).wrapping_add(1);
            check_isop(state, 6);
            check_isop(state & 0xFFFF, 4);
            check_isop(state & 0xFFFF_FFFF, 5);
        }
        check_isop(0, 4);
        check_isop(u64::MAX, 6);
        check_isop(Init::XOR2.raw(), 2);
    }

    /// Exhaustively compares an encoded netlist against `Netlist::eval`.
    fn assert_encoding_matches(netlist: &Netlist) {
        let mut s = Solver::new();
        let enc = encode_netlist(&mut s, netlist, None).expect("encodable");
        let widths: Vec<u32> = netlist
            .input_buses()
            .iter()
            .map(|(_, b)| b.len() as u32)
            .collect();
        let total: u32 = widths.iter().sum();
        assert!(total <= 12, "test netlist too wide for exhaustion");
        for pattern in 0u64..(1 << total) {
            let mut vals = Vec::new();
            let mut shift = 0;
            for w in &widths {
                vals.push((pattern >> shift) & ((1u64 << w) - 1));
                shift += w;
            }
            let mut assumps = Vec::new();
            for (b, (_, sigs)) in enc.inputs.iter().enumerate() {
                for (i, sig) in sigs.iter().enumerate() {
                    let l = sig.lit(&s);
                    assumps.push(if (vals[b] >> i) & 1 == 1 { l } else { !l });
                }
            }
            let m = match s.solve(&assumps, 100_000) {
                SolveResult::Sat(m) => m,
                other => panic!("inputs must be satisfiable, got {other:?}"),
            };
            let expect = netlist.eval(&vals).expect("evaluable");
            for (o, (_, sigs)) in enc.outputs.iter().enumerate() {
                let got = gates::decode(&m, sigs) as u64;
                assert_eq!(got, expect[o], "pattern {pattern:#x}");
            }
        }
    }

    #[test]
    fn full_adder_netlist_encodes_exactly() {
        let mut b = NetlistBuilder::new("fa");
        let a = b.inputs("a", 1);
        let x = b.inputs("b", 1);
        let c = b.inputs("cin", 1);
        let sum = b.lut3(Init::XOR3, a[0], x[0], c[0]);
        let maj_init = Init::from_fn(|i| {
            let bits = (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1);
            bits >= 2
        });
        let carry = b.lut3(maj_init, a[0], x[0], c[0]);
        b.output("sum", sum);
        b.output("cout", carry);
        assert_encoding_matches(&b.finish().expect("valid"));
    }

    #[test]
    fn repeated_and_constant_pins_reduce() {
        let mut b = NetlistBuilder::new("degenerate");
        let a = b.inputs("a", 2);
        let one = b.constant(true);
        // XOR3(a0, a0, one) == 1 for all a0: constant after reduction.
        let y = b.lut3(Init::XOR3, a[0], a[0], one);
        // XOR2(a0, a1) with a repeated pin in a wider table.
        let (z, _) = b.lut2(Init::XOR2, a[0], a[1]);
        b.output("y", y);
        b.output("z", z);
        let nl = b.finish().expect("valid");
        let mut s = Solver::new();
        let enc = encode_netlist(&mut s, &nl, None).expect("encodable");
        // y must have been folded to a constant — no clauses, no var.
        assert_eq!(enc.outputs[0].1[0], Sig::TRUE);
        assert_encoding_matches(&nl);
    }

    #[test]
    fn carry_chain_encodes_exactly() {
        // 4-bit ripple adder out of the builder's carry_chain helper.
        let mut b = NetlistBuilder::new("add4");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let zero = b.constant(false);
        let mut s_nets = Vec::new();
        let mut di_nets = Vec::new();
        for i in 0..4 {
            let (o6, _o5) = b.lut2(Init::XOR2, a[i], c[i]);
            s_nets.push(o6);
            di_nets.push(a[i]); // generate = A bypass, the classic P/G pair
        }
        let (sums, cout) = b.carry4(
            zero,
            [s_nets[0], s_nets[1], s_nets[2], s_nets[3]],
            [di_nets[0], di_nets[1], di_nets[2], di_nets[3]],
        );
        let mut bits: Vec<_> = sums.to_vec();
        bits.push(cout);
        b.output_bus("sum", &bits);
        assert_encoding_matches(&b.finish().expect("valid"));
    }

    #[test]
    fn structural_sharing_collapses_identical_netlists() {
        use axmul_baselines::kulkarni_netlist;
        let nl = kulkarni_netlist(4).expect("width");
        let mut s = Solver::new();
        let first = encode_netlist(&mut s, &nl, None).expect("encodable");
        let shared: Vec<Vec<Sig>> = first.inputs.iter().map(|(_, v)| v.clone()).collect();
        let vars_after_first = s.num_vars();
        let second = encode_netlist(&mut s, &nl, Some(&shared)).expect("encodable");
        assert_eq!(
            s.num_vars(),
            vars_after_first,
            "identical structure over identical inputs must not allocate"
        );
        for (a, b) in first.outputs.iter().zip(&second.outputs) {
            assert_eq!(a.1, b.1, "outputs must be the same signals");
        }
    }
}
