//! Constant-folding, structurally-hashed gate builders over a
//! [`Solver`].
//!
//! A [`Sig`] is a three-valued wire: a compile-time constant or a
//! solver literal. Every builder folds constants at encode time
//! (`x ⊕ 0 = x`, `mux(s, t, t) = t`, ...) and hash-conses the gates it
//! does emit, so two structurally identical circuits over the same
//! input literals collapse into the *same* variables — a miter between
//! them reduces to `false` before the search even starts.
//!
//! The mux builder emits the two redundant consensus clauses
//! `(¬t ∨ ¬e ∨ z)` and `(t ∨ e ∨ ¬z)` in addition to the four defining
//! ones, making unit propagation as strong as three-valued simulation:
//! when both data inputs agree, the output propagates even while the
//! select is still unassigned. This mirrors the `KnownBit::mux`
//! semantics of `axmul-absint`, keeping the CARRY4 encoding consistent
//! with the abstract interpreter it certifies.

use crate::solver::{GateKey, Lit, Model, Solver};

/// A wire during encoding: constant or literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sig {
    /// A compile-time constant.
    Const(bool),
    /// A solver literal.
    Lit(Lit),
}

impl Sig {
    /// Constant false.
    pub const FALSE: Sig = Sig::Const(false);
    /// Constant true.
    pub const TRUE: Sig = Sig::Const(true);

    /// The constant value, if this wire is one.
    #[must_use]
    pub fn as_const(self) -> Option<bool> {
        match self {
            Sig::Const(b) => Some(b),
            Sig::Lit(_) => None,
        }
    }

    /// The wire's value under a model (constants evaluate to
    /// themselves).
    #[must_use]
    pub fn value(self, model: &Model) -> bool {
        match self {
            Sig::Const(b) => b,
            Sig::Lit(l) => model.value(l),
        }
    }

    /// Materializes the wire as a literal (constants map to the
    /// solver's pinned true/false literals).
    #[must_use]
    pub fn lit(self, s: &Solver) -> Lit {
        match self {
            Sig::Const(true) => s.true_lit(),
            Sig::Const(false) => s.false_lit(),
            Sig::Lit(l) => l,
        }
    }
}

impl std::ops::Not for Sig {
    type Output = Sig;
    fn not(self) -> Sig {
        match self {
            Sig::Const(b) => Sig::Const(!b),
            Sig::Lit(l) => Sig::Lit(!l),
        }
    }
}

const KIND_AND: u8 = 1;
const KIND_XOR: u8 = 2;
const KIND_MUX: u8 = 3;
const KIND_MAJ: u8 = 4;

/// `a ∧ b` with folding and hashing.
pub fn and(s: &mut Solver, a: Sig, b: Sig) -> Sig {
    match (a, b) {
        (Sig::Const(false), _) | (_, Sig::Const(false)) => Sig::FALSE,
        (Sig::Const(true), x) | (x, Sig::Const(true)) => x,
        (Sig::Lit(la), Sig::Lit(lb)) => {
            if la == lb {
                return a;
            }
            if la == !lb {
                return Sig::FALSE;
            }
            let (l0, l1) = sort2(la, lb);
            let key = GateKey::Gate(KIND_AND, [l0.code() as u32, l1.code() as u32, 0]);
            if let Some(z) = s.cached_gate(&key) {
                return Sig::Lit(z);
            }
            let z = s.new_var();
            s.add_clause(&[!l0, !l1, z]);
            s.add_clause(&[l0, !z]);
            s.add_clause(&[l1, !z]);
            s.cache_gate(key, z);
            Sig::Lit(z)
        }
    }
}

/// `a ∨ b` via De Morgan over [`and`].
pub fn or(s: &mut Solver, a: Sig, b: Sig) -> Sig {
    !and(s, !a, !b)
}

/// `a ⊕ b` with folding and polarity-canonical hashing.
pub fn xor(s: &mut Solver, a: Sig, b: Sig) -> Sig {
    match (a, b) {
        (Sig::Const(x), Sig::Const(y)) => Sig::Const(x ^ y),
        (Sig::Const(false), x) | (x, Sig::Const(false)) => x,
        (Sig::Const(true), x) | (x, Sig::Const(true)) => !x,
        (Sig::Lit(la), Sig::Lit(lb)) => {
            if la == lb {
                return Sig::FALSE;
            }
            if la == !lb {
                return Sig::TRUE;
            }
            // Canonical: positive operands; output polarity absorbs
            // the stripped negations.
            let out_neg = la.is_neg() ^ lb.is_neg();
            let pa = Lit::new(la.var(), false);
            let pb = Lit::new(lb.var(), false);
            let (l0, l1) = sort2(pa, pb);
            let key = GateKey::Gate(KIND_XOR, [l0.code() as u32, l1.code() as u32, 0]);
            let z = match s.cached_gate(&key) {
                Some(z) => z,
                None => {
                    let z = s.new_var();
                    s.add_clause(&[!l0, !l1, !z]);
                    s.add_clause(&[l0, l1, !z]);
                    s.add_clause(&[!l0, l1, z]);
                    s.add_clause(&[l0, !l1, z]);
                    s.cache_gate(key, z);
                    z
                }
            };
            Sig::Lit(if out_neg { !z } else { z })
        }
    }
}

/// `sel ? t : e` with folding, hashing and the redundant consensus
/// clauses that make propagation three-valued-consistent.
pub fn mux(s: &mut Solver, sel: Sig, t: Sig, e: Sig) -> Sig {
    if t == e {
        return t;
    }
    match sel {
        Sig::Const(true) => return t,
        Sig::Const(false) => return e,
        Sig::Lit(_) => {}
    }
    if t == !e {
        // mux(sel, t, ¬t): sel=1 → t, sel=0 → ¬t, i.e. ¬(sel ⊕ t).
        return !xor(s, sel, t);
    }
    match (t, e) {
        (Sig::Const(true), _) => return or(s, sel, e),
        (Sig::Const(false), _) => return and(s, !sel, e),
        (_, Sig::Const(true)) => return or(s, !sel, t),
        (_, Sig::Const(false)) => return and(s, sel, t),
        _ => {}
    }
    let (mut sl, mut tl, mut el) = (sel.lit(s), t.lit(s), e.lit(s));
    // Canonical: positive select (swapping branches), then strip a
    // shared branch negation into the output.
    if sl.is_neg() {
        sl = !sl;
        std::mem::swap(&mut tl, &mut el);
    }
    let out_neg = tl.is_neg() && el.is_neg();
    if out_neg {
        tl = !tl;
        el = !el;
    }
    let key = GateKey::Gate(
        KIND_MUX,
        [sl.code() as u32, tl.code() as u32, el.code() as u32],
    );
    let z = match s.cached_gate(&key) {
        Some(z) => z,
        None => {
            let z = s.new_var();
            s.add_clause(&[!sl, !tl, z]);
            s.add_clause(&[!sl, tl, !z]);
            s.add_clause(&[sl, !el, z]);
            s.add_clause(&[sl, el, !z]);
            // Consensus pair: both branches agree => output known
            // regardless of the select.
            s.add_clause(&[!tl, !el, z]);
            s.add_clause(&[tl, el, !z]);
            s.cache_gate(key, z);
            z
        }
    };
    Sig::Lit(if out_neg { !z } else { z })
}

/// Majority of three (the full-adder carry), with folding and hashing.
pub fn maj(s: &mut Solver, a: Sig, b: Sig, c: Sig) -> Sig {
    // Fold constants: maj(a, b, 0) = a∧b, maj(a, b, 1) = a∨b.
    match (a.as_const(), b.as_const(), c.as_const()) {
        (Some(false), _, _) => return and(s, b, c),
        (Some(true), _, _) => return or(s, b, c),
        (_, Some(false), _) => return and(s, a, c),
        (_, Some(true), _) => return or(s, a, c),
        (_, _, Some(false)) => return and(s, a, b),
        (_, _, Some(true)) => return or(s, a, b),
        _ => {}
    }
    if a == b {
        return a;
    }
    if a == c {
        return a;
    }
    if b == c {
        return b;
    }
    if a == !b {
        return c;
    }
    if a == !c {
        return b;
    }
    if b == !c {
        return a;
    }
    let mut ls = [a.lit(s), b.lit(s), c.lit(s)];
    ls.sort();
    let key = GateKey::Gate(
        KIND_MAJ,
        [
            ls[0].code() as u32,
            ls[1].code() as u32,
            ls[2].code() as u32,
        ],
    );
    let z = match s.cached_gate(&key) {
        Some(z) => z,
        None => {
            let z = s.new_var();
            let [la, lb, lc] = ls;
            s.add_clause(&[!la, !lb, z]);
            s.add_clause(&[!la, !lc, z]);
            s.add_clause(&[!lb, !lc, z]);
            s.add_clause(&[la, lb, !z]);
            s.add_clause(&[la, lc, !z]);
            s.add_clause(&[lb, lc, !z]);
            s.cache_gate(key, z);
            z
        }
    };
    Sig::Lit(z)
}

/// Full adder: `(sum, carry)` of `a + b + cin`.
pub fn full_adder(s: &mut Solver, a: Sig, b: Sig, cin: Sig) -> (Sig, Sig) {
    let ab = xor(s, a, b);
    let sum = xor(s, ab, cin);
    let carry = maj(s, a, b, cin);
    (sum, carry)
}

/// Ripple-carry sum of two little-endian vectors (plus carry-in),
/// `max(a, b) + 1` bits wide.
pub fn ripple_add(s: &mut Solver, a: &[Sig], b: &[Sig], cin: Sig) -> Vec<Sig> {
    let w = a.len().max(b.len());
    let mut out = Vec::with_capacity(w + 1);
    let mut carry = cin;
    for i in 0..w {
        let ai = a.get(i).copied().unwrap_or(Sig::FALSE);
        let bi = b.get(i).copied().unwrap_or(Sig::FALSE);
        let (sum, c) = full_adder(s, ai, bi, carry);
        out.push(sum);
        carry = c;
    }
    out.push(carry);
    out
}

/// Exact unsigned product of two little-endian vectors, as a
/// shift-add (ripple array) reference circuit: the behavioral
/// `Multiplier` contract rendered in CNF.
pub fn exact_product(s: &mut Solver, a: &[Sig], b: &[Sig]) -> Vec<Sig> {
    let w = a.len() + b.len();
    let mut acc: Vec<Sig> = vec![Sig::FALSE; w.max(1)];
    for (j, &bj) in b.iter().enumerate() {
        let mut carry = Sig::FALSE;
        for (i, &ai) in a.iter().enumerate() {
            let pp = and(s, ai, bj);
            let (sum, c) = full_adder(s, acc[j + i], pp, carry);
            acc[j + i] = sum;
            carry = c;
        }
        let mut k = j + a.len();
        while k < acc.len() {
            let (sum, c) = full_adder(s, acc[k], carry, Sig::FALSE);
            acc[k] = sum;
            carry = c;
            if carry == Sig::FALSE {
                break;
            }
            k += 1;
        }
    }
    acc
}

/// `|p − e|` of two little-endian unsigned vectors, `max(w) + 1` bits.
///
/// Computes the two's-complement difference `p + ¬e + 1` at width
/// `w + 1` (so the sign is explicit), then conditionally negates:
/// `abs = (d ⊕ sign) + sign`.
pub fn abs_diff(s: &mut Solver, p: &[Sig], e: &[Sig]) -> Vec<Sig> {
    let w = p.len().max(e.len());
    // d = p + ~e + 1 over w+1 bits (operands zero-extended to w+1
    // before complementing, so ~e's extension bit is 1).
    let mut carry = Sig::TRUE;
    let mut d = Vec::with_capacity(w + 1);
    for i in 0..=w {
        let pi = p.get(i).copied().unwrap_or(Sig::FALSE);
        let ei = e.get(i).copied().unwrap_or(Sig::FALSE);
        let (sum, c) = full_adder(s, pi, !ei, carry);
        d.push(sum);
        carry = c;
    }
    let sign = d[w];
    // abs = (d ^ sign) + sign, ripple increment.
    let mut out = Vec::with_capacity(w + 1);
    let mut inc = sign;
    for &di in d.iter().take(w + 1) {
        let flipped = xor(s, di, sign);
        let sum = xor(s, flipped, inc);
        inc = and(s, flipped, inc);
        out.push(sum);
    }
    out
}

/// `x > k` for a little-endian vector against a constant.
pub fn gt_const(s: &mut Solver, x: &[Sig], k: u128) -> Sig {
    if x.len() < 128 && (k >> x.len()) != 0 {
        return Sig::FALSE;
    }
    let mut acc = Sig::FALSE;
    for (i, &xi) in x.iter().enumerate() {
        let ki = (k >> i) & 1 == 1;
        acc = if ki { and(s, xi, acc) } else { or(s, xi, acc) };
    }
    acc
}

/// Decodes a little-endian vector under a model.
#[must_use]
pub fn decode(model: &Model, bits: &[Sig]) -> u128 {
    let mut v = 0u128;
    for (i, &b) in bits.iter().enumerate().take(128) {
        if b.value(model) {
            v |= 1 << i;
        }
    }
    v
}

fn sort2(a: Lit, b: Lit) -> (Lit, Lit) {
    if a.code() <= b.code() {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn model_for(s: &mut Solver, assumps: &[Lit]) -> Model {
        match s.solve(assumps, 100_000) {
            SolveResult::Sat(m) => m,
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn gates_match_boolean_semantics_exhaustively() {
        for bits in 0u32..8 {
            let (va, vb, vc) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let mut s = Solver::new();
            let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
            let (sa, sb, sc) = (Sig::Lit(a), Sig::Lit(b), Sig::Lit(c));
            let g_and = and(&mut s, sa, sb);
            let g_xor = xor(&mut s, sa, sb);
            let g_or = or(&mut s, sa, sb);
            let g_mux = mux(&mut s, sa, sb, sc);
            let g_maj = maj(&mut s, sa, sb, sc);
            let (g_sum, g_cry) = full_adder(&mut s, sa, sb, sc);
            let fix = [
                Lit::new(a.var(), !va),
                Lit::new(b.var(), !vb),
                Lit::new(c.var(), !vc),
            ];
            let m = model_for(&mut s, &fix);
            assert_eq!(g_and.value(&m), va & vb);
            assert_eq!(g_xor.value(&m), va ^ vb);
            assert_eq!(g_or.value(&m), va | vb);
            assert_eq!(g_mux.value(&m), if va { vb } else { vc });
            assert_eq!(g_maj.value(&m), (va & vb) | (va & vc) | (vb & vc));
            let total = va as u32 + vb as u32 + vc as u32;
            assert_eq!(g_sum.value(&m), total & 1 == 1);
            assert_eq!(g_cry.value(&m), total >= 2);
        }
    }

    #[test]
    fn constant_folding_emits_no_clauses() {
        let mut s = Solver::new();
        let a = Sig::Lit(s.new_var());
        let before = s.num_vars();
        assert_eq!(and(&mut s, a, Sig::TRUE), a);
        assert_eq!(and(&mut s, a, Sig::FALSE), Sig::FALSE);
        assert_eq!(xor(&mut s, a, Sig::FALSE), a);
        assert_eq!(xor(&mut s, a, Sig::TRUE), !a);
        assert_eq!(xor(&mut s, a, a), Sig::FALSE);
        assert_eq!(xor(&mut s, a, !a), Sig::TRUE);
        assert_eq!(mux(&mut s, a, Sig::TRUE, Sig::FALSE), a);
        assert_eq!(mux(&mut s, Sig::TRUE, a, !a), a);
        assert_eq!(maj(&mut s, a, a, !a), a);
        assert_eq!(s.num_vars(), before, "folded gates must not allocate");
    }

    #[test]
    fn structural_hashing_reuses_variables() {
        let mut s = Solver::new();
        let a = Sig::Lit(s.new_var());
        let b = Sig::Lit(s.new_var());
        let x1 = xor(&mut s, a, b);
        let n = s.num_vars();
        let x2 = xor(&mut s, b, a); // commuted: same gate
        let x3 = xor(&mut s, !a, b); // polarity-stripped: same var, negated
        assert_eq!(x1, x2);
        assert_eq!(x3, !x1);
        assert_eq!(s.num_vars(), n);
        let m1 = mux(&mut s, a, b, x1);
        let n = s.num_vars();
        let m2 = mux(&mut s, !a, x1, b); // select-flipped: same gate
        assert_eq!(m1, m2);
        assert_eq!(s.num_vars(), n);
    }

    #[test]
    fn exact_product_and_abs_diff_decode_correctly() {
        // 4x4: pin operands via assumptions, read the product back.
        let mut s = Solver::new();
        let a: Vec<Sig> = (0..4).map(|_| Sig::Lit(s.new_var())).collect();
        let b: Vec<Sig> = (0..4).map(|_| Sig::Lit(s.new_var())).collect();
        let prod = exact_product(&mut s, &a, &b);
        for (av, bv) in [(0u128, 0u128), (3, 5), (15, 15), (9, 12), (7, 11)] {
            let mut assumps = Vec::new();
            for (i, sig) in a.iter().enumerate() {
                let l = sig.lit(&s);
                assumps.push(if (av >> i) & 1 == 1 { l } else { !l });
            }
            for (i, sig) in b.iter().enumerate() {
                let l = sig.lit(&s);
                assumps.push(if (bv >> i) & 1 == 1 { l } else { !l });
            }
            let m = model_for(&mut s, &assumps);
            assert_eq!(decode(&m, &prod), av * bv, "{av}*{bv}");
        }
    }

    #[test]
    fn abs_diff_and_comparator_agree_with_integers() {
        let mut s = Solver::new();
        let p: Vec<Sig> = (0..5).map(|_| Sig::Lit(s.new_var())).collect();
        let e: Vec<Sig> = (0..5).map(|_| Sig::Lit(s.new_var())).collect();
        let d = abs_diff(&mut s, &p, &e);
        let g = gt_const(&mut s, &d, 7);
        for (pv, ev) in [
            (0u128, 0u128),
            (31, 0),
            (0, 31),
            (12, 19),
            (19, 12),
            (20, 13),
        ] {
            let mut assumps = Vec::new();
            for (i, sig) in p.iter().enumerate() {
                let l = sig.lit(&s);
                assumps.push(if (pv >> i) & 1 == 1 { l } else { !l });
            }
            for (i, sig) in e.iter().enumerate() {
                let l = sig.lit(&s);
                assumps.push(if (ev >> i) & 1 == 1 { l } else { !l });
            }
            let m = model_for(&mut s, &assumps);
            let expect = pv.abs_diff(ev);
            assert_eq!(decode(&m, &d), expect, "|{pv}-{ev}|");
            assert_eq!(g.value(&m), expect > 7);
        }
    }

    #[test]
    fn gt_const_folds_oversized_constants() {
        let mut s = Solver::new();
        let x: Vec<Sig> = (0..4).map(|_| Sig::Lit(s.new_var())).collect();
        assert_eq!(gt_const(&mut s, &x, 1 << 20), Sig::FALSE);
        // x > 15 is impossible for a 4-bit vector... but the builder
        // only folds when the constant has bits beyond the vector; the
        // 4-bit/15 case needs all bits set AND one more, which the
        // and/or chain correctly reduces to FALSE only via solving.
        let g = gt_const(&mut s, &x, 15);
        let gl = g.lit(&s);
        assert!(matches!(s.solve(&[gl], 10_000), SolveResult::Unsat));
    }
}
