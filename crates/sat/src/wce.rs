//! Exact worst-case-error proofs: `wce = max |approx(a,b) − a·b|`.
//!
//! The netlist and a CNF ripple shift-add exact reference share one
//! set of input variables; `|P − E|` is built as a two's-complement
//! difference plus conditional negation, and a comparator asks
//! `|P − E| > m` for a candidate bound `m`.
//!
//! The search is a CEGAR-style *ascent* rather than a blind binary
//! search: `m` is seeded by replaying deterministic corner/sample
//! inputs (plus any caller hint, e.g. an absint witness), then each
//! SAT answer to `|P − E| > m` is decoded and replayed through
//! `Netlist::eval` to a concrete error `e > m`, which becomes the new
//! `m` together with its witness. Only the final query — the UNSAT one
//! that *proves* no input errs by more than `m` — pays the full
//! refutation cost, and by then the solver has learned the instance.
//! The result is the exact worst-case error with a witness input that
//! achieves it, both independently confirmed by replay.

use std::time::Instant;

use axmul_fabric::Netlist;

use crate::equiv::{multiplier_interface, solve_with_split, split_order, ProofOptions, ProofStats};
use crate::gates::{self, Sig};
use crate::solver::Solver;
use crate::SatError;

/// Knobs for the worst-case-error proof.
#[derive(Debug, Clone, Copy)]
pub struct WceOptions {
    /// Solver budget/splitting knobs.
    pub proof: ProofOptions,
    /// Random seed-sample count for the initial lower bound.
    pub samples: u64,
    /// Optional witness hint (e.g. absint's `ErrorBound::witness`):
    /// replayed into the seed bound.
    pub hint: Option<(u64, u64)>,
}

impl Default for WceOptions {
    fn default() -> Self {
        WceOptions {
            proof: ProofOptions::default(),
            samples: 4096,
            hint: None,
        }
    }
}

/// A proven exact worst-case error.
#[derive(Debug, Clone)]
pub struct WceProof {
    /// Operand widths.
    pub a_bits: u32,
    /// Operand widths.
    pub b_bits: u32,
    /// The exact worst-case absolute error.
    pub wce: u128,
    /// An input pair achieving it (confirmed by replay).
    pub witness: (u64, u64),
    /// How many SAT models raised the bound past its seed.
    pub ascent_steps: u32,
    /// Search effort (the final UNSAT proof included).
    pub stats: ProofStats,
}

/// Proves the exact worst-case error of a multiplier netlist.
///
/// # Errors
///
/// [`SatError::Interface`]/[`SatError::Width`] for non-multiplier
/// shapes, [`SatError::Budget`] if the refutation defeats the budget
/// even after case-splitting, [`SatError::Replay`] if a model fails to
/// replay (soundness self-check).
pub fn prove_wce(netlist: &Netlist, opts: &WceOptions) -> Result<WceProof, SatError> {
    let (wa, wb) = multiplier_interface(netlist)?;
    let started = Instant::now();

    let err_at = |a: u64, b: u64| -> Result<u128, SatError> {
        let out = netlist
            .eval(&[a, b])
            .map_err(|e| SatError::Replay(e.to_string()))?;
        let p = out[0] as u128;
        let e = (a as u128) * (b as u128);
        Ok(p.abs_diff(e))
    };

    // Seed the lower bound from deterministic corners, a splitmix
    // stream, and the caller's hint.
    let corners = |w: u32| -> Vec<u64> {
        let max = (1u128 << w) - 1;
        let mut v = vec![
            0u64,
            1,
            max as u64,
            (max >> 1) as u64,
            ((max >> 1) + 1) as u64,
            (0x5555_5555_5555_5555u64) & max as u64,
            (0xAAAA_AAAA_AAAA_AAAAu64) & max as u64,
            (0x3333_3333_3333_3333u64) & max as u64,
            (0x7777_7777_7777_7777u64) & max as u64,
            (0x6666_6666_6666_6666u64) & max as u64,
        ];
        v.dedup();
        v
    };
    let mut m: u128 = 0;
    let mut witness = (0u64, 0u64);
    let consider =
        |m: &mut u128, witness: &mut (u64, u64), a: u64, b: u64| -> Result<(), SatError> {
            let e = err_at(a, b)?;
            if e > *m {
                *m = e;
                *witness = (a, b);
            }
            Ok(())
        };
    for &a in &corners(wa) {
        for &b in &corners(wb) {
            consider(&mut m, &mut witness, a, b)?;
        }
    }
    if let Some((a, b)) = opts.hint {
        let mask_a = if wa == 64 { u64::MAX } else { (1u64 << wa) - 1 };
        let mask_b = if wb == 64 { u64::MAX } else { (1u64 << wb) - 1 };
        consider(&mut m, &mut witness, a & mask_a, b & mask_b)?;
    }
    let mut state = 0x05EE_D5A7_u64 ^ ((wa as u64) << 32) ^ (wb as u64);
    for _ in 0..opts.samples {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let a = z & ((1u128 << wa) - 1) as u64;
        let b = (z >> 32) & ((1u128 << wb) - 1) as u64;
        consider(&mut m, &mut witness, a, b)?;
    }

    // Encode netlist + reference once; comparators accrete per round.
    let mut solver = Solver::new();
    let before = solver.stats();
    let enc = crate::encode::encode_netlist(&mut solver, netlist, None)?;
    let exact = gates::exact_product(&mut solver, &enc.inputs[0].1, &enc.inputs[1].1);
    let abs = gates::abs_diff(&mut solver, &enc.outputs[0].1, &exact);
    let splits = split_order(&enc);

    let mut ascent_steps = 0u32;
    loop {
        let gt = gates::gt_const(&mut solver, &abs, m);
        let model = match gt {
            Sig::Const(false) => None,
            Sig::Const(true) => {
                // |P − E| exceeds m for *every* input — possible only
                // while m is below a structurally-forced error.
                let mut assumps = Vec::new();
                solve_with_split(&mut solver, &mut assumps, &splits, &opts.proof)?
            }
            Sig::Lit(l) => {
                let mut assumps = vec![l];
                solve_with_split(&mut solver, &mut assumps, &splits, &opts.proof)?
            }
        };
        match model {
            None => break,
            Some(model) => {
                let a = gates::decode(&model, &enc.inputs[0].1) as u64;
                let b = gates::decode(&model, &enc.inputs[1].1) as u64;
                let e = err_at(a, b)?;
                if e <= m {
                    return Err(SatError::Replay(format!(
                        "model ({a}, {b}) claims error > {m} but replays to {e}"
                    )));
                }
                m = e;
                witness = (a, b);
                ascent_steps += 1;
            }
        }
    }

    let after = solver.stats();
    Ok(WceProof {
        a_bits: wa,
        b_bits: wb,
        wce: m,
        witness,
        ascent_steps,
        stats: ProofStats {
            solves: after.solves - before.solves,
            conflicts: after.conflicts - before.conflicts,
            decisions: after.decisions - before.decisions,
            propagations: after.propagations - before.propagations,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_baselines::{
        array_mult_netlist, kulkarni_netlist, pp_truncated_netlist, rehman_netlist,
    };

    /// Exhaustive ground-truth worst-case error.
    fn exhaustive_wce(nl: &Netlist, wa: u32, wb: u32) -> (u128, (u64, u64)) {
        let mut worst = 0u128;
        let mut at = (0, 0);
        for a in 0..(1u64 << wa) {
            for b in 0..(1u64 << wb) {
                let p = nl.eval(&[a, b]).expect("eval")[0] as u128;
                let e = (a as u128 * b as u128).abs_diff(p);
                if e > worst {
                    worst = e;
                    at = (a, b);
                }
            }
        }
        (worst, at)
    }

    #[test]
    fn proven_wce_matches_exhaustive_truth_at_4x4() {
        for nl in [
            kulkarni_netlist(4).expect("width"),
            rehman_netlist(4).expect("width"),
            pp_truncated_netlist(4, 4, 2),
            array_mult_netlist(4, 4),
        ] {
            let (truth, _) = exhaustive_wce(&nl, 4, 4);
            let proof = prove_wce(&nl, &WceOptions::default()).expect("provable");
            assert_eq!(proof.wce, truth, "{}", nl.name());
            // The witness must achieve the proven error.
            let (a, b) = proof.witness;
            let p = nl.eval(&[a, b]).expect("eval")[0] as u128;
            assert_eq!((a as u128 * b as u128).abs_diff(p), proof.wce);
        }
    }

    #[test]
    fn proven_wce_matches_exhaustive_truth_at_8x8() {
        let nl = kulkarni_netlist(8).expect("width");
        let (truth, _) = exhaustive_wce(&nl, 8, 8);
        let proof = prove_wce(&nl, &WceOptions::default()).expect("provable");
        assert_eq!(proof.wce, truth);
        assert!(
            proof.stats.solves >= 1,
            "the UNSAT certificate is mandatory"
        );
    }

    #[test]
    fn exact_multiplier_proves_zero_error() {
        let nl = array_mult_netlist(6, 6);
        let proof = prove_wce(&nl, &WceOptions::default()).expect("provable");
        assert_eq!(proof.wce, 0);
        assert_eq!(proof.ascent_steps, 0);
    }

    #[test]
    fn hint_is_used_and_clamped() {
        let nl = kulkarni_netlist(4).expect("width");
        let (truth, at) = exhaustive_wce(&nl, 4, 4);
        let opts = WceOptions {
            hint: Some((at.0 | 0xF0, at.1)), // out-of-range bits must be masked
            samples: 0,
            ..WceOptions::default()
        };
        let proof = prove_wce(&nl, &opts).expect("provable");
        assert_eq!(proof.wce, truth);
    }
}
