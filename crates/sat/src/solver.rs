//! A small, std-only CDCL SAT solver.
//!
//! The feature set is the classic modern core: two-watched-literal
//! propagation with blockers, first-UIP conflict analysis with basic
//! (reason-local) clause minimization, VSIDS decision ordering on an
//! indexed max-heap, phase saving, Luby restarts, activity-driven
//! learned-clause-database reduction, and incremental solving under
//! assumptions with a conflict budget (exceeding it returns
//! [`SolveResult::Unknown`], never a wrong answer).
//!
//! Variable 0 is reserved as the constant `true` (pinned by a unit
//! clause at construction), so encoders can hand out literals for
//! constants without special cases. The solver never panics on any
//! clause set: tautologies and duplicate literals are normalized away
//! in [`Solver::add_clause`], and contradictory input just drives the
//! solver into a permanent UNSAT state.

use std::collections::HashMap;

/// A literal: a variable index plus a polarity.
///
/// Encoded as `var * 2 + negated` so it can index watch lists directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal for variable `var` with the given polarity.
    #[must_use]
    pub const fn new(var: u32, negated: bool) -> Self {
        Lit(var * 2 + negated as u32)
    }

    /// The literal's variable index.
    #[must_use]
    pub const fn var(self) -> u32 {
        self.0 / 2
    }

    /// `true` if the literal is the negation of its variable.
    #[must_use]
    pub const fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code usable as an array index (`var * 2 + negated`).
    #[must_use]
    pub const fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "~x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Outcome of one [`Solver::solve`] call.
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// Satisfiable: a total assignment consistent with the clauses and
    /// the assumptions.
    Sat(Model),
    /// Unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget ran out before a verdict was reached.
    Unknown,
}

/// A total satisfying assignment.
#[derive(Debug, Clone)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Value of a literal under the model.
    ///
    /// Variables beyond the model (never created at solve time) read as
    /// `false`.
    #[must_use]
    pub fn value(&self, lit: Lit) -> bool {
        let v = self
            .values
            .get(lit.var() as usize)
            .copied()
            .unwrap_or(false);
        v ^ lit.is_neg()
    }
}

/// Cumulative solver statistics (monotone across `solve` calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts hit (and clauses learned from them).
    pub conflicts: u64,
    /// Decision literals picked.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently in the database.
    pub learned: u64,
    /// `solve` calls answered.
    pub solves: u64,
}

/// Keys for the structural-hashing cache used by the gate builders in
/// [`crate::gates`]: two identical gates over identical literals fuse
/// into one variable, so miters over structurally similar netlists
/// collapse before the search even starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKey {
    /// Binary/ternary gate: (kind tag, operand literal codes, 0-padded).
    Gate(u8, [u32; 3]),
    /// LUT cofactor function: (reduced truth table, support literal
    /// codes, 0-padded to 6).
    Lut(u64, [u32; 6]),
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    activity: f64,
}

const NO_REASON: u32 = u32::MAX;
const VALUE_UNDEF: i8 = 0;

/// The CDCL solver. See the [module docs](self) for the feature set.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    learned_cap: u64,
    cache: HashMap<GateKey, Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with the constant-`true` variable pre-pinned.
    #[must_use]
    pub fn new() -> Self {
        let mut s = Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            learned_cap: 20_000,
            cache: HashMap::new(),
        };
        let t = s.new_var();
        s.add_clause(&[t]);
        s
    }

    /// The literal that is always true.
    #[must_use]
    pub fn true_lit(&self) -> Lit {
        Lit::new(0, false)
    }

    /// The literal that is always false.
    #[must_use]
    pub fn false_lit(&self) -> Lit {
        Lit::new(0, true)
    }

    /// Number of variables (including the reserved constant).
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Looks up a structurally-hashed gate output.
    #[must_use]
    pub fn cached_gate(&self, key: &GateKey) -> Option<Lit> {
        self.cache.get(key).copied()
    }

    /// Records a structurally-hashed gate output.
    pub fn cache_gate(&mut self, key: GateKey, out: Lit) {
        self.cache.insert(key, out);
    }

    /// Creates a fresh variable and returns its positive literal.
    pub fn new_var(&mut self) -> Lit {
        let v = self.assigns.len() as u32;
        self.assigns.push(VALUE_UNDEF);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        Lit::new(v, false)
    }

    fn value_lit(&self, l: Lit) -> i8 {
        let v = self.assigns[l.var() as usize];
        if l.is_neg() {
            -v
        } else {
            v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause, normalizing duplicates and tautologies.
    ///
    /// May be called between `solve` calls; the trail is first unwound
    /// to decision level 0. An empty (or all-false-at-level-0) clause
    /// puts the solver into a permanent UNSAT state instead of
    /// panicking.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if !self.ok {
            return;
        }
        self.backtrack(0);
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if l.var() >= self.num_vars() {
                // Hostile input: grow rather than panic.
                while self.num_vars() <= l.var() {
                    self.new_var();
                }
            }
            if c.contains(&!l) {
                return; // tautology
            }
            match self.value_lit(l) {
                1 => return,    // satisfied at level 0
                -1 => continue, // falsified at level 0: drop the literal
                _ => {}
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].code()].push(Watch {
                    clause: idx,
                    blocker: c[1],
                });
                self.watches[c[1].code()].push(Watch {
                    clause: idx,
                    blocker: c[0],
                });
                self.clauses.push(Clause {
                    lits: c,
                    learned: false,
                    activity: 0.0,
                });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assigns[v], VALUE_UNDEF);
        self.assigns[v] = if l.is_neg() { -1 } else { 1 };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagates to fixpoint; returns a conflicting clause index.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.value_lit(w.blocker) == 1 {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.value_lit(first) == 1 {
                    ws[i] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value_lit(lk) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.code()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No replacement watch: unit or conflict.
                if self.value_lit(first) == -1 {
                    self.watches[false_lit.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.clause);
                }
                self.enqueue(first, w.clause);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let bound = self.trail_lim.pop().expect("level > 0 has a bound");
            while self.trail.len() > bound {
                let l = self.trail.pop().expect("non-empty trail");
                let v = l.var() as usize;
                self.assigns[v] = VALUE_UNDEF;
                self.reason[v] = NO_REASON;
                self.heap.insert(v as u32, &self.activity);
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn var_bump(&mut self, v: u32) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn clause_bump(&mut self, ci: usize) {
        let c = &mut self.clauses[ci];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (with
    /// the asserting literal at index 0) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::new(0, false)];
        let mut to_clear: Vec<u32> = Vec::new();
        let mut path_c = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = conflict;
        loop {
            if self.clauses[confl as usize].learned {
                self.clause_bump(confl as usize);
            }
            let start = usize::from(p.is_some());
            let clen = self.clauses[confl as usize].lits.len();
            for j in start..clen {
                let q = self.clauses[confl as usize].lits[j];
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.var_bump(v);
                    self.seen[v as usize] = true;
                    to_clear.push(v);
                    if self.level[v as usize] >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                break;
            }
            confl = self.reason[pl.var() as usize];
            debug_assert_ne!(confl, NO_REASON, "interior UIP-path literal has a reason");
        }
        learnt[0] = !p.expect("conflict analysis found the UIP");

        // Basic (reason-local) minimization.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&q| !self.lit_redundant(q))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        for v in to_clear {
            self.seen[v as usize] = false;
        }

        // Backjump level: highest level among the non-asserting lits.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, bt)
    }

    fn lit_redundant(&self, q: Lit) -> bool {
        let r = self.reason[q.var() as usize];
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize]
            .lits
            .iter()
            .skip(1)
            .all(|&l| self.seen[l.var() as usize] || self.level[l.var() as usize] == 0)
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        self.stats.conflicts += 1;
        let assert_lit = learnt[0];
        match learnt.len() {
            1 => {
                self.enqueue(assert_lit, NO_REASON);
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[learnt[0].code()].push(Watch {
                    clause: idx,
                    blocker: learnt[1],
                });
                self.watches[learnt[1].code()].push(Watch {
                    clause: idx,
                    blocker: learnt[0],
                });
                self.clauses.push(Clause {
                    lits: learnt,
                    learned: true,
                    activity: self.cla_inc,
                });
                self.stats.learned += 1;
                self.enqueue(assert_lit, idx);
            }
        }
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Drops the least active half of the learned clauses. Only runs at
    /// decision level 0, where no learned clause can be a reason.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for &l in &self.trail {
            self.reason[l.var() as usize] = NO_REASON;
        }
        let mut acts: Vec<f64> = self
            .clauses
            .iter()
            .filter(|c| c.learned && c.lits.len() > 2)
            .map(|c| c.activity)
            .collect();
        if acts.is_empty() {
            return;
        }
        acts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = acts[acts.len() / 2];
        let mut kept: Vec<Clause> = Vec::with_capacity(self.clauses.len());
        for c in self.clauses.drain(..) {
            if c.learned && c.lits.len() > 2 && c.activity < median {
                continue;
            }
            kept.push(c);
        }
        self.clauses = kept;
        self.stats.learned = self.clauses.iter().filter(|c| c.learned).count() as u64;
        self.rebuild_watches();
    }

    /// Reconstructs all watch lists from scratch (level 0 only).
    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        let mut units: Vec<Lit> = Vec::new();
        for (idx, c) in self.clauses.iter_mut().enumerate() {
            // Prefer watching non-false literals.
            let mut front = 0;
            for k in 0..c.lits.len() {
                let v = {
                    let l = c.lits[k];
                    let a = self.assigns[l.var() as usize];
                    if l.is_neg() {
                        -a
                    } else {
                        a
                    }
                };
                if v != -1 {
                    c.lits.swap(front, k);
                    front += 1;
                    if front == 2 {
                        break;
                    }
                }
            }
            if front == 1 {
                let v0 = {
                    let l = c.lits[0];
                    let a = self.assigns[l.var() as usize];
                    if l.is_neg() {
                        -a
                    } else {
                        a
                    }
                };
                if v0 == 0 {
                    units.push(c.lits[0]);
                }
            } else if front == 0 {
                self.ok = false;
            }
            self.watches[c.lits[0].code()].push(Watch {
                clause: idx as u32,
                blocker: c.lits[1 % c.lits.len().max(1)],
            });
            if c.lits.len() > 1 {
                self.watches[c.lits[1].code()].push(Watch {
                    clause: idx as u32,
                    blocker: c.lits[0],
                });
            }
        }
        for u in units {
            if self.value_lit(u) == 0 {
                self.enqueue(u, NO_REASON);
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    /// Solves under `assumptions` with a conflict budget.
    ///
    /// Returns [`SolveResult::Unknown`] once `max_conflicts` conflicts
    /// have been spent in this call. Learned clauses persist across
    /// calls, so retrying (or re-solving under different assumptions)
    /// resumes with everything already derived.
    pub fn solve(&mut self, assumptions: &[Lit], max_conflicts: u64) -> SolveResult {
        self.stats.solves += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let budget_end = self.stats.conflicts.saturating_add(max_conflicts);
        let mut restart_idx = 0u64;
        loop {
            restart_idx += 1;
            let restart_budget = 128 * luby(restart_idx);
            match self.search(assumptions, restart_budget, budget_end) {
                SearchOutcome::Sat => {
                    let values: Vec<bool> = self.assigns.iter().map(|&a| a == 1).collect();
                    self.backtrack(0);
                    return SolveResult::Sat(Model { values });
                }
                SearchOutcome::Unsat => {
                    self.backtrack(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::BudgetExhausted => {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    if self.stats.learned > self.learned_cap {
                        self.reduce_db();
                        self.learned_cap += self.learned_cap / 2;
                    }
                }
            }
        }
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        restart_budget: u64,
        budget_end: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                if (self.decision_level() as usize) <= assumptions.len() {
                    // Conflict inside the assumption prefix: UNSAT
                    // under these assumptions (but not globally).
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                self.learn(learnt);
                conflicts_here += 1;
                if self.stats.conflicts >= budget_end {
                    return SearchOutcome::BudgetExhausted;
                }
                if conflicts_here >= restart_budget {
                    return SearchOutcome::Restart;
                }
                continue;
            }
            // Assumption prefix: one decision level per assumption.
            while (self.decision_level() as usize) < assumptions.len() {
                let a = assumptions[self.decision_level() as usize];
                match self.value_lit(a) {
                    1 => {
                        self.trail_lim.push(self.trail.len());
                    }
                    -1 => return SearchOutcome::Unsat,
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, NO_REASON);
                        break;
                    }
                }
            }
            if self.qhead < self.trail.len() {
                continue;
            }
            // Pick a branch variable.
            let next = loop {
                match self.heap.pop_max(&self.activity) {
                    Some(v) => {
                        if self.assigns[v as usize] == VALUE_UNDEF {
                            break Some(v);
                        }
                    }
                    None => break None,
                }
            };
            match next {
                None => return SearchOutcome::Sat,
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let phase = self.phase[v as usize];
                    self.enqueue(Lit::new(v, !phase), NO_REASON);
                }
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i + 1 {
            k += 1;
        }
        if (1u64 << k) - 1 == i + 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Indexed binary max-heap over variable activities.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<u32>,
    pos: Vec<i32>,
}

impl VarHeap {
    fn new() -> Self {
        VarHeap::default()
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        while self.pos.len() <= v as usize {
            self.pos.push(-1);
        }
        if self.pos[v as usize] >= 0 {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: u32, act: &[f64]) {
        if (v as usize) < self.pos.len() && self.pos[v as usize] >= 0 {
            self.sift_up(self.pos[v as usize] as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[p] as usize] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[1]]);
        match s.solve(&[], 1_000) {
            SolveResult::Sat(m) => assert!(m.value(v[1])),
            other => panic!("expected SAT, got {other:?}"),
        }
        s.add_clause(&[!v[1]]);
        assert!(matches!(s.solve(&[], 1_000), SolveResult::Unsat));
    }

    #[test]
    fn constant_true_var_is_pinned() {
        let mut s = Solver::new();
        let t = s.true_lit();
        match s.solve(&[], 100) {
            SolveResult::Sat(m) => {
                assert!(m.value(t));
                assert!(!m.value(!t));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        // Assuming the false literal is immediately UNSAT.
        let f = s.false_lit();
        assert!(matches!(s.solve(&[f], 100), SolveResult::Unsat));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes every row of p
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i sits in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[!p[i][j], !p[k][j]]);
                }
            }
        }
        assert!(matches!(s.solve(&[], 100_000), SolveResult::Unsat));
    }

    #[test]
    fn assumptions_are_incremental() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        // v0 -> v1, v1 -> v2
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        match s.solve(&[v[0], !v[2]], 10_000) {
            SolveResult::Unsat => {}
            other => panic!("expected UNSAT under assumptions, got {other:?}"),
        }
        // Same solver, compatible assumptions: still SAT.
        match s.solve(&[v[0], v[2]], 10_000) {
            SolveResult::Sat(m) => {
                assert!(m.value(v[0]) && m.value(v[1]) && m.value(v[2]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_normalized() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[0], v[1]]);
        s.add_clause(&[v[0], !v[0]]); // tautology: dropped
        s.add_clause(&[!v[0]]);
        match s.solve(&[], 1_000) {
            SolveResult::Sat(m) => {
                assert!(!m.value(v[0]));
                assert!(m.value(v[1]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes every row of p
    fn conflict_budget_returns_unknown() {
        // A hard instance (pigeonhole 7 into 6) with a 1-conflict
        // budget must come back Unknown, not loop or lie.
        let n = 7;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n).map(|_| vars(&mut s, n - 1)).collect();
        for row in &p {
            s.add_clause(&row.clone());
        }
        for j in 0..n - 1 {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[!p[i][j], !p[k][j]]);
                }
            }
        }
        assert!(matches!(s.solve(&[], 1), SolveResult::Unknown));
        // With a real budget it resolves to UNSAT.
        assert!(matches!(s.solve(&[], 2_000_000), SolveResult::Unsat));
    }

    #[test]
    fn random_3sat_models_satisfy_all_clauses() {
        // Deterministic xorshift stream; low clause density => SAT.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..10 {
            let nv = 30;
            let nc = 60 + round * 5;
            let mut s = Solver::new();
            let v = vars(&mut s, nv);
            let mut cls: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = (next() % nv as u64) as usize;
                    let neg = next() & 1 == 1;
                    c.push(if neg { !v[var] } else { v[var] });
                }
                cls.push(c.clone());
                s.add_clause(&c);
            }
            if let SolveResult::Sat(m) = s.solve(&[], 1_000_000) {
                for c in &cls {
                    assert!(c.iter().any(|&l| m.value(l)), "model violates clause {c:?}");
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..9).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }
}
