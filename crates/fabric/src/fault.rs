//! Stuck-at fault injection and testability analysis.
//!
//! A production netlist library needs to answer two questions its
//! behavioral models cannot: *does any single hardware fault go
//! unnoticed* (redundant logic), and *which test vectors expose which
//! faults* (manufacturing test). This module simulates the classic
//! single-stuck-at fault model over any [`Netlist`]:
//!
//! * [`Fault`] — a net forced to a constant.
//! * [`eval_with_faults`] — functional simulation under injected
//!   faults.
//! * [`fault_coverage`] — runs a vector set against every single
//!   stuck-at fault and reports which are detected.

use crate::compile::{CompiledNetlist, CompiledSim};
use crate::netlist::{Cell, Driver};
use crate::{FabricError, NetId, Netlist};

/// A single stuck-at fault: `net` permanently reads `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulty net.
    pub net: NetId,
    /// The stuck value.
    pub stuck_at: bool,
}

impl Fault {
    /// Stuck-at-0 on `net`.
    #[must_use]
    pub fn sa0(net: NetId) -> Self {
        Fault {
            net,
            stuck_at: false,
        }
    }

    /// Stuck-at-1 on `net`.
    #[must_use]
    pub fn sa1(net: NetId) -> Self {
        Fault {
            net,
            stuck_at: true,
        }
    }
}

/// Evaluates `netlist` on one input vector with the given faults
/// injected (each faulty net reads its stuck value everywhere it is
/// consumed).
///
/// # Errors
///
/// Returns [`FabricError::InputArity`] on a malformed input vector.
pub fn eval_with_faults(
    netlist: &Netlist,
    inputs: &[u64],
    faults: &[Fault],
) -> Result<Vec<u64>, FabricError> {
    let buses = netlist.input_buses();
    if inputs.len() != buses.len() {
        return Err(FabricError::InputArity {
            expected: buses.len(),
            got: inputs.len(),
        });
    }
    let mut values = vec![false; netlist.net_count()];
    for (bus, (_, bits)) in buses.iter().enumerate() {
        for (bit, net) in bits.iter().enumerate() {
            values[net.index()] = inputs[bus] >> bit & 1 == 1;
        }
    }
    for (net, d) in netlist.drivers().iter().enumerate() {
        if let Driver::Const(c) = d {
            values[net] = *c;
        }
    }
    let force = |values: &mut [bool]| {
        for f in faults {
            values[f.net.index()] = f.stuck_at;
        }
    };
    force(&mut values);
    for cell in netlist.cells() {
        match cell {
            Cell::Lut {
                init,
                inputs: pins,
                o6,
                o5,
            } => {
                let mut idx = 0u8;
                for (k, n) in pins.iter().enumerate() {
                    if values[n.index()] {
                        idx |= 1 << k;
                    }
                }
                values[o6.index()] = init.o6(idx);
                if let Some(o5) = o5 {
                    values[o5.index()] = init.o5(idx);
                }
            }
            Cell::Carry4 { cin, s, di, o, co } => {
                let mut carry = values[cin.index()];
                for stage in 0..4 {
                    let sv = values[s[stage].index()];
                    let dv = values[di[stage].index()];
                    if let Some(n) = o[stage] {
                        values[n.index()] = sv ^ carry;
                    }
                    carry = if sv { carry } else { dv };
                    if let Some(n) = co[stage] {
                        values[n.index()] = carry;
                    }
                }
            }
        }
        force(&mut values);
    }
    Ok(netlist
        .output_buses()
        .iter()
        .map(|(_, bits)| {
            bits.iter()
                .enumerate()
                .map(|(k, n)| u64::from(values[n.index()]) << k)
                .sum()
        })
        .collect())
}

/// Result of a stuck-at fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCoverage {
    /// Total injected faults (two polarities per candidate net).
    pub total: usize,
    /// Faults whose effect reached an output for at least one vector.
    pub detected: usize,
    /// The undetected faults (redundant logic or insufficient vectors).
    pub undetected: Vec<Fault>,
}

impl FaultCoverage {
    /// Detection ratio in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Lane-block width used by the fault campaign (256 vectors per pass).
const FAULT_WORDS: usize = 4;

/// Runs every single stuck-at fault (both polarities, on every
/// observable cell-driven net and primary input) against the given
/// test vectors, comparing faulty outputs to the fault-free reference.
///
/// Each fault is compiled into its own bit-sliced program
/// ([`CompiledNetlist::compile_with_faults`]) and the vector set is
/// streamed through it in 256-lane blocks; detection compares the
/// bit-sliced output words directly against the fault-free reference
/// words — no per-lane gather — and stops at the first differing
/// block. Detection semantics are identical to the scalar
/// [`eval_with_faults`] loop this replaces.
///
/// # Errors
///
/// Propagates simulation errors from malformed vectors.
pub fn fault_coverage(
    netlist: &Netlist,
    vectors: &[Vec<u64>],
) -> Result<FaultCoverage, FabricError> {
    // Fault sites: everything except constant nets and nets nothing
    // observes (dangling O5 outputs, pins the truth tables ignore) —
    // faults there are unobservable by construction, not by escape.
    let fanouts = netlist.fanouts();
    let sites: Vec<NetId> = netlist
        .drivers()
        .iter()
        .enumerate()
        .filter(|&(i, d)| !matches!(d, Driver::Const(_)) && fanouts[i] > 0)
        .map(|(i, _)| NetId(i as u32))
        .collect();
    let n_buses = netlist.input_buses().len();
    for v in vectors {
        if v.len() != n_buses {
            return Err(FabricError::InputArity {
                expected: n_buses,
                got: v.len(),
            });
        }
    }
    // Transpose the vector set once into lane-major per-block bus
    // arrays shared by the golden run and every fault run.
    let blocks: Vec<Vec<Vec<u64>>> = vectors
        .chunks(64 * FAULT_WORDS)
        .map(|chunk| {
            (0..n_buses)
                .map(|bus| chunk.iter().map(|v| v[bus]).collect())
                .collect()
        })
        .collect();
    let out_bits: usize = netlist.output_buses().iter().map(|(_, b)| b.len()).sum();
    // Masked output words of one program over all blocks, flattened as
    // `[block][output bit][word]`.
    let run_all = |prog: &CompiledNetlist| -> Result<Vec<[u64; FAULT_WORDS]>, FabricError> {
        let mut sim: CompiledSim<'_, FAULT_WORDS> = prog.simulator();
        let mut words = Vec::with_capacity(blocks.len() * out_bits);
        for block in &blocks {
            let refs: Vec<&[u64]> = block.iter().map(Vec::as_slice).collect();
            let lanes = sim.load(&refs)?;
            sim.run();
            for bus in 0..netlist.output_buses().len() {
                for bit in 0..netlist.output_buses()[bus].1.len() {
                    let mut w = sim.output_word(bus, bit);
                    for (wi, word) in w.iter_mut().enumerate() {
                        let used = lanes.saturating_sub(64 * wi).min(64);
                        *word &= match used {
                            64 => u64::MAX,
                            0 => 0,
                            n => (1u64 << n) - 1,
                        };
                    }
                    words.push(w);
                }
            }
        }
        Ok(words)
    };
    let golden = run_all(&CompiledNetlist::compile(netlist))?;
    let mut detected = 0;
    let mut undetected = Vec::new();
    for &site in &sites {
        for stuck in [false, true] {
            let fault = Fault {
                net: site,
                stuck_at: stuck,
            };
            let prog = CompiledNetlist::compile_with_faults(netlist, &[fault]);
            let mut sim: CompiledSim<'_, FAULT_WORDS> = prog.simulator();
            let mut seen = false;
            'blocks: for (bi, block) in blocks.iter().enumerate() {
                let refs: Vec<&[u64]> = block.iter().map(Vec::as_slice).collect();
                let lanes = sim.load(&refs)?;
                sim.run();
                let mut flat = 0;
                for bus in 0..netlist.output_buses().len() {
                    for bit in 0..netlist.output_buses()[bus].1.len() {
                        let mut w = sim.output_word(bus, bit);
                        for (wi, word) in w.iter_mut().enumerate() {
                            let used = lanes.saturating_sub(64 * wi).min(64);
                            *word &= match used {
                                64 => u64::MAX,
                                0 => 0,
                                n => (1u64 << n) - 1,
                            };
                        }
                        if w != golden[bi * out_bits + flat] {
                            seen = true;
                            break 'blocks;
                        }
                        flat += 1;
                    }
                }
            }
            if seen {
                detected += 1;
            } else {
                undetected.push(fault);
            }
        }
    }
    Ok(FaultCoverage {
        total: 2 * sites.len(),
        detected,
        undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    fn adder2() -> Netlist {
        let mut b = NetlistBuilder::new("add2");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let mut props = Vec::new();
        for i in 0..2 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &[a[0], a[1]]);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    fn all_vectors(bits: u32) -> Vec<Vec<u64>> {
        (0..1u64 << (2 * bits))
            .map(|v| vec![v & ((1 << bits) - 1), v >> bits])
            .collect()
    }

    #[test]
    fn fault_free_matches_plain_eval() {
        let nl = adder2();
        for v in all_vectors(2) {
            assert_eq!(
                eval_with_faults(&nl, &v, &[]).unwrap(),
                nl.eval(&v).unwrap()
            );
        }
    }

    #[test]
    fn injected_fault_changes_behavior() {
        let nl = adder2();
        let a0 = nl.input_buses()[0].1[0];
        let out = eval_with_faults(&nl, &[1, 0], &[Fault::sa0(a0)]).unwrap();
        assert_eq!(out[0], 0, "a stuck low turns 1+0 into 0+0");
    }

    #[test]
    fn exhaustive_vectors_detect_every_fault_in_the_adder() {
        let nl = adder2();
        let cov = fault_coverage(&nl, &all_vectors(2)).unwrap();
        assert_eq!(cov.detected, cov.total, "undetected: {:?}", cov.undetected);
        assert_eq!(cov.ratio(), 1.0);
    }

    #[test]
    fn too_few_vectors_miss_faults() {
        let nl = adder2();
        let cov = fault_coverage(&nl, &[vec![0, 0]]).unwrap();
        assert!(cov.ratio() < 1.0, "the all-zero vector cannot excite sa0");
        assert_eq!(cov.detected + cov.undetected.len(), cov.total);
    }

    #[test]
    fn multiplier_has_high_stuck_at_coverage() {
        // An exact 4x4 array multiplier under the exhaustive
        // 256-vector set: every stuck-at fault on every net is
        // observable (no redundant logic in the array).
        let nl = array_4x4();
        let vectors: Vec<Vec<u64>> = (0..256u64).map(|v| vec![v & 15, v >> 4]).collect();
        let cov = fault_coverage(&nl, &vectors).unwrap();
        assert!(
            cov.ratio() > 0.95,
            "coverage {} ({:?})",
            cov.ratio(),
            cov.undetected
        );
    }

    // A simple exact 4x4 array multiplier built locally so this
    // crate's tests stay independent of axmul-core (which depends on
    // this crate): AND-gate partial products + three carry-chain adds.
    fn array_4x4() -> Netlist {
        let mut bld = NetlistBuilder::new("array4x4");
        let a = bld.inputs("a", 4);
        let b = bld.inputs("b", 4);
        let zero = bld.constant(false);
        // Partial product rows: row j = (a & {4 bits}) * b_j.
        let mut rows: Vec<Vec<crate::NetId>> = Vec::new();
        for &bj in &b {
            let mut row = Vec::new();
            for &ai in &a {
                let (o6, _) = bld.lut2(Init::AND2, ai, bj);
                row.push(o6);
            }
            rows.push(row);
        }
        // acc = row0, then acc += row_j << j via 2-operand chains.
        let mut acc: Vec<crate::NetId> = rows[0].clone();
        for (j, row) in rows.iter().enumerate().skip(1) {
            // Add rows[j] into acc at offset j.
            let width = (acc.len()).max(j + 4) - j;
            let mut props = Vec::new();
            let mut gens = Vec::new();
            for k in 0..width {
                let x = acc.get(j + k).copied();
                let y = row.get(k).copied();
                match (x, y) {
                    (Some(x), Some(y)) => {
                        let (o6, _) = bld.lut2(Init::XOR2, x, y);
                        props.push(o6);
                        gens.push(x);
                    }
                    (Some(v), None) | (None, Some(v)) => {
                        props.push(v);
                        gens.push(zero);
                    }
                    (None, None) => unreachable!("width bound"),
                }
            }
            let (sums, cout) = bld.carry_chain(zero, &props, &gens);
            acc.truncate(j);
            acc.extend(sums);
            acc.push(cout);
        }
        acc.truncate(8);
        bld.output_bus("p", &acc);
        bld.finish().expect("array4x4 is well-formed")
    }

    #[test]
    fn local_array_multiplier_is_exact() {
        let nl = array_4x4();
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(nl.eval(&[a, b]).unwrap()[0], a * b, "a={a} b={b}");
            }
        }
    }
}
