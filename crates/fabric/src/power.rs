//! Toggle-count dynamic-energy proxy.
//!
//! Vendor power analyzers estimate dynamic power as
//! `P = α · C · V² · f` summed over nets, where `α` is the switching
//! activity. For *relative* energy-delay-product comparisons between
//! multiplier netlists under identical stimulus — all the paper needs
//! for Fig. 1 and Fig. 7 — the `C·V²·f` factors cancel and the ranking
//! is determined by fanout-weighted toggle counts. This module measures
//! exactly that on the compiled bit-sliced simulator
//! ([`crate::compile`]): the stimulus is packed once into lane words
//! ([`PackedStimulus`], step `l` in bit `l % 64`), each pass evaluates
//! `64 * SWEEP_WORDS` consecutive steps, and toggles are counted as
//! exact integer popcounts of `word ^ (word >> 1)` accumulated per
//! value slot over the whole run. The float [`EnergyModel`] weights are
//! applied exactly once at the end, in ascending-net order — so the
//! resulting [`EnergyReport`] is **bit-identical** for any lane width,
//! batch size, or worker count, the same guarantee the error path's
//! `exhaustive_wide` gives `ErrorStats`. [`measure_reference`] is the
//! scalar single-step ground truth that property tests and the CI
//! bench gate compare against.

use crate::compile::{CompiledNetlist, CompiledSim, SWEEP_WORDS};
use crate::netlist::Driver;
use crate::sim::WideSim;
use crate::timing::{analyze, DelayModel};
use crate::{FabricError, Netlist};

/// Relative capacitance weights for the energy proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Weight of a LUT output toggle (logic + local interconnect).
    pub c_lut: f64,
    /// Additional weight per unit of net fanout (global interconnect).
    pub c_fanout: f64,
    /// Weight of a carry-chain node toggle (dedicated, low-capacitance).
    pub c_carry: f64,
}

impl EnergyModel {
    /// Default weights: interconnect dominates, carry wiring is cheap.
    #[must_use]
    pub fn virtex7() -> Self {
        EnergyModel {
            c_lut: 1.0,
            c_fanout: 0.35,
            c_carry: 0.25,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::virtex7()
    }
}

/// Energy/EDP summary of a netlist under a stimulus sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Average weighted toggle energy per input transition
    /// (arbitrary but consistent units).
    pub energy_per_op: f64,
    /// Critical path used for the EDP, in ns.
    pub critical_path_ns: f64,
    /// Energy-delay product: `energy_per_op * critical_path_ns`.
    pub edp: f64,
    /// Number of input transitions measured.
    pub transitions: u64,
}

/// A stimulus sequence packed into lane words, ready for
/// [`CompiledSim::load_packed`]: row `k` is combined input bit `k`
/// (bus 0 in the low positions), and step `l` lives in bit `l % 64` of
/// word `l / 64`. Packing happens once per measurement instead of a
/// `Vec<Vec<u64>>` transpose per 64-step batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedStimulus {
    bits: Vec<Vec<u64>>,
    steps: usize,
    bus_widths: Vec<usize>,
}

impl PackedStimulus {
    /// Packs step-major stimulus vectors (one word per input bus per
    /// step, as in [`Netlist::eval`]) into lane words.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] if any vector has the wrong number
    /// of buses.
    pub fn pack(netlist: &Netlist, stimulus: &[Vec<u64>]) -> Result<Self, FabricError> {
        let bus_widths: Vec<usize> = netlist.input_buses().iter().map(|(_, b)| b.len()).collect();
        for v in stimulus {
            if v.len() != bus_widths.len() {
                return Err(FabricError::InputArity {
                    expected: bus_widths.len(),
                    got: v.len(),
                });
            }
        }
        let total_bits: usize = bus_widths.iter().sum();
        let words = stimulus.len().div_ceil(64);
        let mut bits = vec![vec![0u64; words]; total_bits];
        for (step, v) in stimulus.iter().enumerate() {
            let (w, sh) = (step / 64, step % 64);
            let mut k = 0usize;
            for (bus, &val) in v.iter().enumerate() {
                for bit in 0..bus_widths[bus] {
                    bits[k][w] |= ((val >> bit) & 1) << sh;
                    k += 1;
                }
            }
        }
        Ok(PackedStimulus {
            bits,
            steps: stimulus.len(),
            bus_widths,
        })
    }

    /// `n` uniform-random steps packed directly into lane words —
    /// bit-identical to `pack(netlist, &uniform_stimulus(netlist, n,
    /// seed))` (same SplitMix64 draw sequence) without materializing
    /// the step-major vectors.
    #[must_use]
    pub fn uniform(netlist: &Netlist, n: usize, seed: u64) -> Self {
        let bus_widths: Vec<usize> = netlist.input_buses().iter().map(|(_, b)| b.len()).collect();
        let total_bits: usize = bus_widths.iter().sum();
        let mut bits = vec![vec![0u64; n.div_ceil(64)]; total_bits];
        let mut next = splitmix64(seed);
        for step in 0..n {
            let (w, sh) = (step / 64, step % 64);
            let mut k = 0usize;
            for &width in &bus_widths {
                let mask = if width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                let val = next() & mask;
                for bit in 0..width {
                    bits[k][w] |= ((val >> bit) & 1) << sh;
                    k += 1;
                }
            }
        }
        PackedStimulus {
            bits,
            steps: n,
            bus_widths,
        }
    }

    /// Number of stimulus steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// Per-net toggle weight under `energy`: constants burn nothing, carry
/// nodes ride the dedicated low-capacitance chain, everything else is a
/// LUT output plus fanout interconnect.
fn net_weights(netlist: &Netlist, energy: &EnergyModel) -> Vec<f64> {
    let fanouts = netlist.fanouts();
    netlist
        .drivers()
        .iter()
        .enumerate()
        .map(|(net, d)| match d {
            Driver::Const(_) => 0.0,
            Driver::CarrySum(..) | Driver::CarryCout(..) => {
                energy.c_carry + energy.c_fanout * f64::from(fanouts[net])
            }
            _ => energy.c_lut + energy.c_fanout * f64::from(fanouts[net]),
        })
        .collect()
}

/// The distinct value slots behind the weighted nets, ascending, plus
/// each net's index into that list (`usize::MAX` for weight-0 nets).
/// Aliased/CSE-merged nets share a slot, so the simulator readout
/// touches each distinct value exactly once per pass.
fn tracked_slots(prog: &CompiledNetlist, weights: &[f64]) -> (Vec<u32>, Vec<usize>) {
    let mut slots: Vec<u32> = (0..weights.len())
        .filter(|&net| weights[net] != 0.0)
        .map(|net| prog.net_slot(crate::NetId::new(net as u32)))
        .collect();
    slots.sort_unstable();
    slots.dedup();
    let index = (0..weights.len())
        .map(|net| {
            if weights[net] == 0.0 {
                usize::MAX
            } else {
                let slot = prog.net_slot(crate::NetId::new(net as u32));
                slots.binary_search(&slot).expect("slot collected above")
            }
        })
        .collect();
    (slots, index)
}

/// Integer toggle counts for the tracked slots over the pass range
/// `[pass_lo, pass_hi)` of the packed stimulus. A shard starting past
/// pass 0 replays its predecessor pass first to recover the boundary
/// lane, so counts depend only on the stimulus — never on how passes
/// are sharded.
fn count_shard<const W: usize>(
    prog: &CompiledNetlist,
    stim: &PackedStimulus,
    rows: &[&[u64]],
    slots: &[u32],
    pass_lo: usize,
    pass_hi: usize,
) -> Vec<u64> {
    let lanes_per_pass = 64 * W;
    let mut sim: CompiledSim<'_, W> = prog.simulator();
    let mut counts = vec![0u64; slots.len()];
    // Last-lane bit of each tracked slot from the previous pass.
    let mut carry = vec![0u64; slots.len()];
    let mut has_carry = false;
    if pass_lo > 0 {
        sim.load_packed(rows, (pass_lo - 1) * W)
            .expect("rows validated by caller");
        sim.run();
        // A predecessor pass is always full (only the final pass of the
        // whole stimulus can be partial).
        for (c, &slot) in carry.iter_mut().zip(slots) {
            *c = sim.slot_word(slot)[W - 1] >> 63;
        }
        has_carry = true;
    }
    for pass in pass_lo..pass_hi {
        sim.load_packed(rows, pass * W)
            .expect("rows validated by caller");
        sim.run();
        let lanes = (stim.steps - pass * lanes_per_pass).min(lanes_per_pass);
        for (i, &slot) in slots.iter().enumerate() {
            let word = sim.slot_word(slot);
            let mut t = 0u64;
            let mut prev = carry[i];
            let mut have_prev = has_carry;
            let mut remaining = lanes;
            for &w in &word {
                if remaining == 0 {
                    break;
                }
                let here = remaining.min(64);
                if here > 1 {
                    // Adjacent-lane toggles inside the word.
                    t += ((w ^ (w >> 1)) & ((1u64 << (here - 1)) - 1)).count_ones() as u64;
                }
                if have_prev {
                    t += prev ^ (w & 1);
                }
                prev = (w >> (here - 1)) & 1;
                have_prev = true;
                remaining -= here;
            }
            counts[i] += t;
            carry[i] = prev;
        }
        has_carry = true;
    }
    counts
}

/// Integer toggle counts for the whole stimulus, sharded over `workers`
/// scoped threads with a fixed-order merge. Integer sums are exactly
/// associative, so the result is identical for every worker count.
fn count_toggles<const W: usize>(
    prog: &CompiledNetlist,
    stim: &PackedStimulus,
    slots: &[u32],
    workers: usize,
) -> Vec<u64> {
    let rows: Vec<&[u64]> = stim.bits.iter().map(Vec::as_slice).collect();
    let passes = stim.steps.div_ceil(64 * W);
    let workers = workers.max(1).min(passes.max(1));
    if workers <= 1 {
        return count_shard::<W>(prog, stim, &rows, slots, 0, passes);
    }
    let per = passes.div_ceil(workers);
    let shards: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let rows = &rows;
                let lo = w * per;
                let hi = ((w + 1) * per).min(passes);
                scope.spawn(move || count_shard::<W>(prog, stim, rows, slots, lo, hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut counts = vec![0u64; slots.len()];
    for shard in shards {
        for (c, s) in counts.iter_mut().zip(shard) {
            *c += s;
        }
    }
    counts
}

/// The single end-of-run float fold shared by every measurement path:
/// ascending-net order, weight-0 nets skipped. Keeping this fold (and
/// only this fold) in floating point is what makes the report
/// bit-identical across lane widths, batch sizes, and worker counts.
fn weighted_total(weights: &[f64], count_of_net: impl Fn(usize) -> u64) -> f64 {
    let mut total = 0.0f64;
    for (net, &weight) in weights.iter().enumerate() {
        if weight != 0.0 {
            total += weight * count_of_net(net) as f64;
        }
    }
    total
}

fn finish_report(total: f64, steps: usize, critical_path_ns: f64) -> EnergyReport {
    let transitions = (steps.saturating_sub(1) as u64).max(1);
    let energy_per_op = total / transitions as f64;
    EnergyReport {
        energy_per_op,
        critical_path_ns,
        edp: energy_per_op * critical_path_ns,
        transitions,
    }
}

/// Measures the average switching energy of `netlist` over a stimulus
/// sequence and combines it with STA delay into an EDP.
///
/// `stimulus` yields one input-vector per step (one word per input bus,
/// as in [`Netlist::eval`]); energy is accumulated over each consecutive
/// pair of vectors.
///
/// # Errors
///
/// Returns [`FabricError::InputArity`] if a stimulus vector has the
/// wrong number of buses, and propagates simulation errors.
///
/// # Examples
///
/// ```
/// use axmul_fabric::{Init, NetlistBuilder};
/// use axmul_fabric::power::{measure, uniform_stimulus, EnergyModel};
/// use axmul_fabric::timing::DelayModel;
///
/// let mut b = NetlistBuilder::new("x");
/// let a = b.inputs("a", 4);
/// let c = b.inputs("b", 4);
/// let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
/// b.output("y", o6);
/// let nl = b.finish()?;
/// let stim = uniform_stimulus(&nl, 1000, 7);
/// let report = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim)?;
/// assert!(report.energy_per_op > 0.0);
/// assert!(report.edp > 0.0);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
pub fn measure(
    netlist: &Netlist,
    energy: &EnergyModel,
    delay: &DelayModel,
    stimulus: &[Vec<u64>],
) -> Result<EnergyReport, FabricError> {
    measure_with(
        netlist,
        &CompiledNetlist::compile(netlist),
        energy,
        delay,
        stimulus,
    )
}

/// [`measure`] over an already-compiled program, for callers that also
/// sweep the same netlist (e.g. the DSE characterization cache) and
/// want to compile it exactly once. Packs the stimulus, runs one STA,
/// and delegates to [`measure_packed`] with one worker.
///
/// # Errors
///
/// Same as [`measure`].
pub fn measure_with(
    netlist: &Netlist,
    prog: &CompiledNetlist,
    energy: &EnergyModel,
    delay: &DelayModel,
    stimulus: &[Vec<u64>],
) -> Result<EnergyReport, FabricError> {
    let stim = PackedStimulus::pack(netlist, stimulus)?;
    let critical_path_ns = analyze(netlist, delay).critical_path_ns;
    measure_packed(netlist, prog, energy, critical_path_ns, &stim, 1)
}

/// The wide-lane measurement core: evaluates the packed stimulus
/// `64 * SWEEP_WORDS` consecutive steps per pass, accumulates exact
/// integer toggle counts per distinct value slot (sharded over
/// `workers` scoped threads when > 1), and applies the float
/// [`EnergyModel`] weights exactly once at the end. The report is
/// bit-identical to [`measure_reference`] on the same step-major
/// stimulus, for any `workers`.
///
/// `prog` must be the compilation of `netlist` (without faults);
/// `critical_path_ns` is the caller's STA result — hoisted out so
/// characterization runs `analyze` once, not twice.
///
/// # Errors
///
/// [`FabricError::InputArity`] if `stim` was packed for a different
/// input-bus shape than `netlist`.
pub fn measure_packed(
    netlist: &Netlist,
    prog: &CompiledNetlist,
    energy: &EnergyModel,
    critical_path_ns: f64,
    stim: &PackedStimulus,
    workers: usize,
) -> Result<EnergyReport, FabricError> {
    let widths: Vec<usize> = netlist.input_buses().iter().map(|(_, b)| b.len()).collect();
    if widths != stim.bus_widths {
        return Err(FabricError::InputArity {
            expected: widths.iter().sum(),
            got: stim.bus_widths.iter().sum(),
        });
    }
    let weights = net_weights(netlist, energy);
    let (slots, index) = tracked_slots(prog, &weights);
    let counts = if stim.steps < 2 || slots.is_empty() {
        vec![0u64; slots.len()]
    } else {
        count_toggles::<SWEEP_WORDS>(prog, stim, &slots, workers)
    };
    let total = weighted_total(&weights, |net| counts[index[net]]);
    Ok(finish_report(total, stim.steps, critical_path_ns))
}

/// Scalar single-step reference measurement: the interpretive
/// [`WideSim`] evaluates one stimulus step per call, toggles are
/// counted as integers per net, and the same end-of-run weighted fold
/// as [`measure_packed`] produces the report. This is the ground truth
/// the wide-lane path is gated bit-identical against (tests and the
/// `sim-bench` CI gate) — it shares no lane-word machinery with it.
///
/// # Errors
///
/// Same as [`measure`].
pub fn measure_reference(
    netlist: &Netlist,
    energy: &EnergyModel,
    delay: &DelayModel,
    stimulus: &[Vec<u64>],
) -> Result<EnergyReport, FabricError> {
    let weights = net_weights(netlist, energy);
    let mut sim = WideSim::new(netlist);
    let mut counts = vec![0u64; netlist.net_count()];
    let mut prev: Vec<u64> = Vec::new();
    for (step, v) in stimulus.iter().enumerate() {
        let lanes: Vec<[u64; 1]> = v.iter().map(|&val| [val]).collect();
        let refs: Vec<&[u64]> = lanes.iter().map(|l| &l[..]).collect();
        let nets = sim.eval_nets(&refs)?;
        if step > 0 {
            for (count, (&now, &was)) in counts.iter_mut().zip(nets.iter().zip(&prev)) {
                *count += (now ^ was) & 1;
            }
        } else {
            prev = vec![0; nets.len()];
        }
        prev.copy_from_slice(nets);
    }
    let total = weighted_total(&weights, |net| counts[net]);
    let critical_path_ns = analyze(netlist, delay).critical_path_ns;
    Ok(finish_report(total, stimulus.len(), critical_path_ns))
}

fn splitmix64(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        // SplitMix64 (public domain, Steele et al.).
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Generates `n` uniform-random stimulus vectors for `netlist` using a
/// deterministic SplitMix64 stream seeded with `seed` (no external RNG
/// dependency; reproducible across runs and platforms).
#[must_use]
pub fn uniform_stimulus(netlist: &Netlist, n: usize, seed: u64) -> Vec<Vec<u64>> {
    let widths: Vec<usize> = netlist.input_buses().iter().map(|(_, b)| b.len()).collect();
    let mut next = splitmix64(seed);
    (0..n)
        .map(|_| {
            widths
                .iter()
                .map(|&w| {
                    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    next() & mask
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("x");
        let a = b.inputs("a", 1);
        let c = b.inputs("b", 1);
        let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
        b.output("y", o6);
        b.finish().unwrap()
    }

    /// A netlist with some depth, a carry chain, and shared nets so the
    /// slot-level readout differs from a naive per-net walk.
    fn adder_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("add");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let mut props = Vec::new();
        for i in 0..4 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &[a[0], a[1], a[2], a[3]]);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    #[test]
    fn constant_stimulus_burns_nothing() {
        let nl = xor_netlist();
        let stim = vec![vec![1, 0]; 100];
        let r = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).unwrap();
        assert_eq!(r.energy_per_op, 0.0);
    }

    #[test]
    fn toggling_stimulus_burns_energy() {
        let nl = xor_netlist();
        let stim: Vec<Vec<u64>> = (0..100).map(|i| vec![i & 1, 0]).collect();
        let r = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).unwrap();
        assert!(r.energy_per_op > 0.0);
        assert!((r.edp - r.energy_per_op * r.critical_path_ns).abs() < 1e-12);
    }

    #[test]
    fn batch_boundary_toggles_are_counted() {
        // 65 steps crosses the first 64-lane word; alternate every step
        // so the boundary transition (step 63 -> 64) matters.
        let nl = xor_netlist();
        let stim: Vec<Vec<u64>> = (0..65).map(|i| vec![i & 1, 0]).collect();
        let r = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).unwrap();
        assert_eq!(r.transitions, 64);
        // Every transition toggles input + output: energy identical each
        // step, so per-op energy equals the single-step energy exactly.
        let two = measure(
            &nl,
            &EnergyModel::virtex7(),
            &DelayModel::virtex7(),
            &stim[..2],
        )
        .unwrap();
        assert!((r.energy_per_op - two.energy_per_op).abs() < 1e-9);
    }

    #[test]
    fn wide_path_matches_scalar_reference_bitwise() {
        let energy = EnergyModel::virtex7();
        let delay = DelayModel::virtex7();
        for nl in [xor_netlist(), adder_netlist()] {
            // Lengths straddle word (64) and pass (256) boundaries.
            for n in [1usize, 2, 63, 64, 65, 255, 256, 257, 1000] {
                let stim = uniform_stimulus(&nl, n, 0xF00D + n as u64);
                let fast = measure(&nl, &energy, &delay, &stim).unwrap();
                let slow = measure_reference(&nl, &energy, &delay, &stim).unwrap();
                assert_eq!(
                    fast.energy_per_op.to_bits(),
                    slow.energy_per_op.to_bits(),
                    "{} n={n}",
                    nl.name()
                );
                assert_eq!(
                    fast.edp.to_bits(),
                    slow.edp.to_bits(),
                    "{} n={n}",
                    nl.name()
                );
                assert_eq!(fast.transitions, slow.transitions);
            }
        }
    }

    #[test]
    fn worker_count_and_lane_width_do_not_change_counts() {
        let nl = adder_netlist();
        let prog = CompiledNetlist::compile(&nl);
        let weights = net_weights(&nl, &EnergyModel::virtex7());
        let (slots, _) = tracked_slots(&prog, &weights);
        // 1000 steps = 16 single-word passes, enough for real sharding.
        let stim = PackedStimulus::uniform(&nl, 1000, 99);
        let base = count_toggles::<1>(&prog, &stim, &slots, 1);
        for workers in 2..=5 {
            assert_eq!(count_toggles::<1>(&prog, &stim, &slots, workers), base);
        }
        for workers in 1..=3 {
            assert_eq!(count_toggles::<2>(&prog, &stim, &slots, workers), base);
            assert_eq!(count_toggles::<4>(&prog, &stim, &slots, workers), base);
        }
    }

    #[test]
    fn packed_uniform_matches_packed_stepwise() {
        for nl in [xor_netlist(), adder_netlist()] {
            for n in [0usize, 1, 64, 65, 300] {
                let direct = PackedStimulus::uniform(&nl, n, 0x5EED);
                let packed = PackedStimulus::pack(&nl, &uniform_stimulus(&nl, n, 0x5EED)).unwrap();
                assert_eq!(direct, packed, "{} n={n}", nl.name());
            }
        }
    }

    #[test]
    fn uniform_stimulus_is_deterministic_and_masked() {
        let nl = xor_netlist();
        let s1 = uniform_stimulus(&nl, 50, 42);
        let s2 = uniform_stimulus(&nl, 50, 42);
        assert_eq!(s1, s2);
        assert!(s1.iter().flatten().all(|&v| v <= 1));
        let s3 = uniform_stimulus(&nl, 50, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn wrong_arity_rejected() {
        let nl = xor_netlist();
        let stim = vec![vec![1]];
        assert!(measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).is_err());
        // A packed stimulus from a different input shape is rejected too.
        let other = adder_netlist();
        let packed = PackedStimulus::uniform(&other, 16, 1);
        let prog = CompiledNetlist::compile(&nl);
        assert!(measure_packed(&nl, &prog, &EnergyModel::virtex7(), 1.0, &packed, 1).is_err());
    }
}
