//! Toggle-count dynamic-energy proxy.
//!
//! Vendor power analyzers estimate dynamic power as
//! `P = α · C · V² · f` summed over nets, where `α` is the switching
//! activity. For *relative* energy-delay-product comparisons between
//! multiplier netlists under identical stimulus — all the paper needs
//! for Fig. 1 and Fig. 7 — the `C·V²·f` factors cancel and the ranking
//! is determined by fanout-weighted toggle counts. This module measures
//! exactly that, streaming the stimulus through the compiled bit-sliced
//! simulator ([`crate::compile`]) 64 lanes at a time (adjacent lanes
//! are consecutive stimulus vectors).

use crate::compile::{CompiledNetlist, CompiledSim};
use crate::netlist::Driver;
use crate::timing::{analyze, DelayModel};
use crate::{FabricError, NetId, Netlist};

/// Relative capacitance weights for the energy proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Weight of a LUT output toggle (logic + local interconnect).
    pub c_lut: f64,
    /// Additional weight per unit of net fanout (global interconnect).
    pub c_fanout: f64,
    /// Weight of a carry-chain node toggle (dedicated, low-capacitance).
    pub c_carry: f64,
}

impl EnergyModel {
    /// Default weights: interconnect dominates, carry wiring is cheap.
    #[must_use]
    pub fn virtex7() -> Self {
        EnergyModel {
            c_lut: 1.0,
            c_fanout: 0.35,
            c_carry: 0.25,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::virtex7()
    }
}

/// Energy/EDP summary of a netlist under a stimulus sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Average weighted toggle energy per input transition
    /// (arbitrary but consistent units).
    pub energy_per_op: f64,
    /// Critical path used for the EDP, in ns.
    pub critical_path_ns: f64,
    /// Energy-delay product: `energy_per_op * critical_path_ns`.
    pub edp: f64,
    /// Number of input transitions measured.
    pub transitions: u64,
}

/// Measures the average switching energy of `netlist` over a stimulus
/// sequence and combines it with STA delay into an EDP.
///
/// `stimulus` yields one input-vector per step (one word per input bus,
/// as in [`Netlist::eval`]); energy is accumulated over each consecutive
/// pair of vectors.
///
/// # Errors
///
/// Returns [`FabricError::InputArity`] if a stimulus vector has the
/// wrong number of buses, and propagates simulation errors.
///
/// # Examples
///
/// ```
/// use axmul_fabric::{Init, NetlistBuilder};
/// use axmul_fabric::power::{measure, uniform_stimulus, EnergyModel};
/// use axmul_fabric::timing::DelayModel;
///
/// let mut b = NetlistBuilder::new("x");
/// let a = b.inputs("a", 4);
/// let c = b.inputs("b", 4);
/// let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
/// b.output("y", o6);
/// let nl = b.finish()?;
/// let stim = uniform_stimulus(&nl, 1000, 7);
/// let report = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim)?;
/// assert!(report.energy_per_op > 0.0);
/// assert!(report.edp > 0.0);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
pub fn measure(
    netlist: &Netlist,
    energy: &EnergyModel,
    delay: &DelayModel,
    stimulus: &[Vec<u64>],
) -> Result<EnergyReport, FabricError> {
    measure_with(
        netlist,
        &CompiledNetlist::compile(netlist),
        energy,
        delay,
        stimulus,
    )
}

/// [`measure`] over an already-compiled program, for callers that also
/// sweep the same netlist (e.g. the DSE characterization cache) and
/// want to compile it exactly once.
///
/// `prog` must be the compilation of `netlist` (without faults); the
/// per-net toggle counts are read through the program's net-to-slot
/// map, so they are bit-identical to what the interpretive simulator
/// would have produced.
///
/// # Errors
///
/// Same as [`measure`].
pub fn measure_with(
    netlist: &Netlist,
    prog: &CompiledNetlist,
    energy: &EnergyModel,
    delay: &DelayModel,
    stimulus: &[Vec<u64>],
) -> Result<EnergyReport, FabricError> {
    let n_buses = netlist.input_buses().len();
    for v in stimulus {
        if v.len() != n_buses {
            return Err(FabricError::InputArity {
                expected: n_buses,
                got: v.len(),
            });
        }
    }
    let fanouts = netlist.fanouts();
    let drivers = netlist.drivers();
    // Per-net toggle weight.
    let weights: Vec<f64> = drivers
        .iter()
        .enumerate()
        .map(|(net, d)| match d {
            Driver::Const(_) => 0.0,
            Driver::CarrySum(..) | Driver::CarryCout(..) => {
                energy.c_carry + energy.c_fanout * f64::from(fanouts[net])
            }
            _ => energy.c_lut + energy.c_fanout * f64::from(fanouts[net]),
        })
        .collect();

    let mut sim: CompiledSim<'_, 1> = prog.simulator();
    let mut total = 0.0f64;
    let mut transitions = 0u64;
    let mut boundary: Option<Vec<bool>> = None;

    // Feed up to 64 consecutive vectors per pass; adjacent lanes are
    // consecutive stimulus steps, so XOR of adjacent lane bits = toggles.
    let mut pos = 0usize;
    while pos < stimulus.len() {
        let n = (stimulus.len() - pos).min(64);
        let mut buses: Vec<Vec<u64>> = vec![Vec::with_capacity(n); n_buses];
        for step in &stimulus[pos..pos + n] {
            for (bus, &val) in step.iter().enumerate() {
                buses[bus].push(val);
            }
        }
        let refs: Vec<&[u64]> = buses.iter().map(Vec::as_slice).collect();
        sim.load(&refs)?;
        sim.run();
        for (net, &weight) in weights.iter().enumerate() {
            if weight == 0.0 {
                continue;
            }
            let word = sim.net_word(NetId::new(net as u32))[0];
            // Toggles between adjacent lanes within the word.
            let within = (word ^ (word >> 1)) & ((1u64 << (n - 1)) - 1);
            let mut t = within.count_ones() as u64;
            // Toggle across the batch boundary.
            if let Some(prev) = &boundary {
                if prev[net] != (word & 1 == 1) {
                    t += 1;
                }
            }
            total += weight * t as f64;
        }
        transitions += (n - 1) as u64 + u64::from(boundary.is_some());
        boundary = Some(
            (0..netlist.net_count())
                .map(|net| (sim.net_word(NetId::new(net as u32))[0] >> (n - 1)) & 1 == 1)
                .collect::<Vec<bool>>(),
        );
        pos += n;
    }

    let transitions = transitions.max(1);
    let energy_per_op = total / transitions as f64;
    let critical_path_ns = analyze(netlist, delay).critical_path_ns;
    Ok(EnergyReport {
        energy_per_op,
        critical_path_ns,
        edp: energy_per_op * critical_path_ns,
        transitions,
    })
}

/// Generates `n` uniform-random stimulus vectors for `netlist` using a
/// deterministic SplitMix64 stream seeded with `seed` (no external RNG
/// dependency; reproducible across runs and platforms).
#[must_use]
pub fn uniform_stimulus(netlist: &Netlist, n: usize, seed: u64) -> Vec<Vec<u64>> {
    let widths: Vec<usize> = netlist.input_buses().iter().map(|(_, b)| b.len()).collect();
    let mut state = seed;
    let mut next = move || -> u64 {
        // SplitMix64 (public domain, Steele et al.).
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            widths
                .iter()
                .map(|&w| {
                    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    next() & mask
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("x");
        let a = b.inputs("a", 1);
        let c = b.inputs("b", 1);
        let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
        b.output("y", o6);
        b.finish().unwrap()
    }

    #[test]
    fn constant_stimulus_burns_nothing() {
        let nl = xor_netlist();
        let stim = vec![vec![1, 0]; 100];
        let r = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).unwrap();
        assert_eq!(r.energy_per_op, 0.0);
    }

    #[test]
    fn toggling_stimulus_burns_energy() {
        let nl = xor_netlist();
        let stim: Vec<Vec<u64>> = (0..100).map(|i| vec![i & 1, 0]).collect();
        let r = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).unwrap();
        assert!(r.energy_per_op > 0.0);
        assert!((r.edp - r.energy_per_op * r.critical_path_ns).abs() < 1e-12);
    }

    #[test]
    fn batch_boundary_toggles_are_counted() {
        // 65 steps forces two batches; alternate every step so the
        // boundary transition (step 63 -> 64) matters.
        let nl = xor_netlist();
        let stim: Vec<Vec<u64>> = (0..65).map(|i| vec![i & 1, 0]).collect();
        let r = measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).unwrap();
        assert_eq!(r.transitions, 64);
        // Every transition toggles input + output: energy identical each
        // step, so per-op energy equals the single-step energy exactly.
        let two = measure(
            &nl,
            &EnergyModel::virtex7(),
            &DelayModel::virtex7(),
            &stim[..2],
        )
        .unwrap();
        assert!((r.energy_per_op - two.energy_per_op).abs() < 1e-9);
    }

    #[test]
    fn uniform_stimulus_is_deterministic_and_masked() {
        let nl = xor_netlist();
        let s1 = uniform_stimulus(&nl, 50, 42);
        let s2 = uniform_stimulus(&nl, 50, 42);
        assert_eq!(s1, s2);
        assert!(s1.iter().flatten().all(|&v| v <= 1));
        let s3 = uniform_stimulus(&nl, 50, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn wrong_arity_rejected() {
        let nl = xor_netlist();
        let stim = vec![vec![1]];
        assert!(measure(&nl, &EnergyModel::virtex7(), &DelayModel::virtex7(), &stim).is_err());
    }
}
