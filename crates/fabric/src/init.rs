use std::fmt;
use std::str::FromStr;

use crate::FabricError;

/// A 64-bit `LUT6_2` truth table — the "INIT value" of Xilinx parlance.
///
/// A 7-series `LUT6_2` is a fracturable 6-input lookup table with two
/// outputs:
///
/// * `O6 = INIT[{I5, I4, I3, I2, I1, I0}]` — the full 6-input function;
/// * `O5 = INIT[{0, I4, I3, I2, I1, I0}]` — a 5-input function stored in
///   the *lower* 32 bits of the INIT vector.
///
/// When both outputs are used as independent 5-input functions, `I5` is
/// tied to logic `1` so that `O6` reads the *upper* 32 bits while `O5`
/// reads the lower 32 bits. This is exactly the convention of Table 3 of
/// the DAC'18 paper, which this crate reproduces verbatim.
///
/// The bit index is `I5*32 + I4*16 + I3*8 + I2*4 + I1*2 + I0`.
///
/// # Examples
///
/// ```
/// use axmul_fabric::Init;
///
/// // AND of I0 and I1 (upper inputs ignored -> replicate across table).
/// let and2 = Init::from_fn(|i| (i & 1 == 1) && (i >> 1 & 1 == 1));
/// assert!(and2.o6(0b000011));
/// assert!(!and2.o6(0b000001));
///
/// // Table 3, LUT3 of the approximate 4x4 multiplier:
/// let lut3: Init = "F800000000000000".parse()?;
/// assert_eq!(lut3.to_string(), "64'hF800000000000000");
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Init(u64);

impl Init {
    /// The constant-zero truth table.
    pub const ZERO: Init = Init(0);
    /// The constant-one truth table.
    pub const ONE: Init = Init(u64::MAX);
    /// 2-input XOR of `I0`, `I1` (replicated over the unused inputs).
    pub const XOR2: Init = Init(0x6666_6666_6666_6666);
    /// 2-input AND of `I0`, `I1` (replicated over the unused inputs).
    pub const AND2: Init = Init(0x8888_8888_8888_8888);
    /// 2-input OR of `I0`, `I1` (replicated over the unused inputs).
    pub const OR2: Init = Init(0xEEEE_EEEE_EEEE_EEEE);
    /// 3-input XOR of `I0..=I2` (replicated over the unused inputs).
    pub const XOR3: Init = Init(0x9696_9696_9696_9696);
    /// Identity on `I0` (buffer).
    pub const BUF: Init = Init(0xAAAA_AAAA_AAAA_AAAA);

    /// Builds an INIT vector from a raw 64-bit truth table.
    ///
    /// Bit `i` of `raw` is the value of `O6` for the input combination
    /// whose 6-bit encoding (`{I5..I0}`) equals `i`.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Init(raw)
    }

    /// Returns the raw 64-bit truth table.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Builds an INIT vector by evaluating `f` on all 64 input
    /// combinations. `f` receives the 6-bit index `{I5..I0}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use axmul_fabric::Init;
    /// // Majority of I0, I1, I2.
    /// let maj = Init::from_fn(|i| (i & 1) + (i >> 1 & 1) + (i >> 2 & 1) >= 2);
    /// assert!(maj.o6(0b000110));
    /// assert!(!maj.o6(0b000100));
    /// ```
    #[must_use]
    pub fn from_fn(mut f: impl FnMut(u8) -> bool) -> Self {
        let mut raw = 0u64;
        for i in 0..64u8 {
            if f(i) {
                raw |= 1 << i;
            }
        }
        Init(raw)
    }

    /// Builds the INIT of a dual-output (`LUT6_2`) cell from two 5-input
    /// functions: `o5` occupies the lower 32 entries and `o6_upper` the
    /// upper 32. Use this with `I5` tied to `1`.
    ///
    /// Each closure receives the 5-bit index `{I4..I0}`.
    #[must_use]
    pub fn from_dual(mut o6_upper: impl FnMut(u8) -> bool, mut o5: impl FnMut(u8) -> bool) -> Self {
        let mut raw = 0u64;
        for i in 0..32u8 {
            if o5(i) {
                raw |= 1 << i;
            }
            if o6_upper(i) {
                raw |= 1 << (32 + i);
            }
        }
        Init(raw)
    }

    /// Evaluates the `O6` output for the 6-bit input encoding
    /// `{I5, I4, I3, I2, I1, I0}` (bit 5 is `I5`).
    #[must_use]
    pub const fn o6(self, index: u8) -> bool {
        (self.0 >> (index & 0x3F)) & 1 == 1
    }

    /// Evaluates the `O5` output: the lower-half table indexed by
    /// `{I4, I3, I2, I1, I0}` (`I5` is ignored, per the 7-series CLB).
    #[must_use]
    pub const fn o5(self, index: u8) -> bool {
        (self.0 >> (index & 0x1F)) & 1 == 1
    }

    /// Number of input combinations (out of 64) for which `O6` is `1`.
    #[must_use]
    pub const fn ones(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if `O6` actually depends on input `i` (0..=5),
    /// i.e. toggling `Ii` changes the output for at least one setting of
    /// the other inputs.
    ///
    /// Useful for sanity-checking hand-written INIT constants, and used
    /// by the timing analyzer to ignore tied-off pins.
    #[must_use]
    pub fn depends_on(self, i: u8) -> bool {
        assert!(i < 6, "LUT6 has inputs 0..=5");
        let stride = 1u8 << i;
        for idx in 0..64u8 {
            if idx & stride == 0 && self.o6(idx) != self.o6(idx | stride) {
                return true;
            }
        }
        false
    }

    /// Returns `true` if the `O5` output (lower-half table) depends on
    /// input `i` (0..=4). `I5` never reaches `O5`, so `depends_on_o5(5)`
    /// is always `false`.
    ///
    /// The timing analyzer uses this to give each output of a fractured
    /// `LUT6_2` its own arrival time: e.g. in the ternary adder, `O5`
    /// (the exported majority) does not depend on the incoming majority
    /// pin, so majority signals do not ripple.
    #[must_use]
    pub fn depends_on_o5(self, i: u8) -> bool {
        assert!(i < 6, "LUT6 has inputs 0..=5");
        if i == 5 {
            return false;
        }
        let stride = 1u8 << i;
        for idx in 0..32u8 {
            if idx & stride == 0 && self.o5(idx) != self.o5(idx | stride) {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Init {
    /// Formats as Verilog-style `64'hXXXXXXXXXXXXXXXX`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "64'h{:016X}", self.0)
    }
}

impl fmt::LowerHex for Init {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Init {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Init {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u64> for Init {
    fn from(raw: u64) -> Self {
        Init(raw)
    }
}

impl From<Init> for u64 {
    fn from(init: Init) -> u64 {
        init.0
    }
}

impl FromStr for Init {
    type Err = FabricError;

    /// Parses a bare 16-digit (or shorter) hex literal, optionally
    /// prefixed with `0x` or `64'h`, as printed by Vivado and by
    /// Table 3 of the paper.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s
            .trim()
            .trim_start_matches("64'h")
            .trim_start_matches("0x")
            .trim_start_matches("0X");
        u64::from_str_radix(t, 16)
            .map(Init)
            .map_err(|_| FabricError::ParseInit {
                literal: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o6_indexes_full_table() {
        let init = Init::from_raw(1 << 37);
        assert!(init.o6(37));
        assert!(!init.o6(36));
    }

    #[test]
    fn o5_ignores_i5() {
        let init = Init::from_raw((1 << 3) | (1 << (32 + 9)));
        assert!(init.o5(3));
        assert!(init.o5(3 | 0b10_0000), "O5 must mask off I5");
        assert!(!init.o5(9), "upper-half bits never reach O5");
    }

    #[test]
    fn from_fn_matches_manual() {
        let xor = Init::from_fn(|i| ((i & 1) ^ (i >> 1 & 1)) == 1);
        assert_eq!(xor, Init::XOR2);
    }

    #[test]
    fn from_dual_places_halves() {
        let d = Init::from_dual(|i| i == 0, |i| i == 31);
        assert!(d.o6(32));
        assert!(!d.o6(0));
        assert!(d.o5(31));
    }

    #[test]
    fn named_tables_are_correct() {
        for i in 0..64u8 {
            let a = i & 1 == 1;
            let b = i >> 1 & 1 == 1;
            let c = i >> 2 & 1 == 1;
            assert_eq!(Init::XOR2.o6(i), a ^ b);
            assert_eq!(Init::AND2.o6(i), a && b);
            assert_eq!(Init::OR2.o6(i), a || b);
            assert_eq!(Init::XOR3.o6(i), a ^ b ^ c);
            assert_eq!(Init::BUF.o6(i), a);
        }
    }

    #[test]
    fn parse_accepts_paper_and_verilog_styles() {
        let a: Init = "B4CCF00066AACC00".parse().unwrap();
        let b: Init = "0xB4CCF00066AACC00".parse().unwrap();
        let c: Init = "64'hB4CCF00066AACC00".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.raw(), 0xB4CC_F000_66AA_CC00);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("zz".parse::<Init>().is_err());
        assert!("".parse::<Init>().is_err());
        assert!("123456789ABCDEF01".parse::<Init>().is_err(), "17 digits");
    }

    #[test]
    fn display_round_trips() {
        let a = Init::from_raw(0x07C0_FF00_0000_0000);
        let shown = a.to_string();
        assert_eq!(shown, "64'h07C0FF0000000000");
        assert_eq!(shown.parse::<Init>().unwrap(), a);
    }

    #[test]
    fn depends_on_detects_support() {
        assert!(Init::XOR2.depends_on(0));
        assert!(Init::XOR2.depends_on(1));
        assert!(!Init::XOR2.depends_on(5));
        assert!(!Init::ZERO.depends_on(0));
    }
}
