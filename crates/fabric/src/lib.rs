//! # axmul-fabric
//!
//! A bit-accurate model of the Xilinx 7-series-style FPGA fabric used by
//! the DAC'18 paper *"Area-Optimized Low-Latency Approximate Multipliers
//! for FPGA-based Hardware Accelerators"* (Ullah et al.).
//!
//! The crate provides everything needed to *build*, *simulate*, and
//! *characterize* LUT-level arithmetic circuits without an HDL toolchain:
//!
//! * [`Init`] — 64-bit LUT truth tables ("INIT values") with the exact
//!   `LUT6_2` dual-output semantics of the 7-series CLB (`O6`/`O5`).
//! * [`Netlist`] / [`NetlistBuilder`] — a cell/net graph of `LUT6_2` and
//!   `CARRY4` primitives with primary inputs/outputs and constants.
//! * [`sim`] — scalar and 64-lane bit-parallel netlist simulation.
//! * [`compile`] — the compiled bit-sliced simulator: mux-tree LUT
//!   kernels over const-generic multi-word lane blocks, the backend of
//!   every exhaustive sweep in the workspace.
//! * [`timing`] — static timing analysis with a calibrated Virtex-7-like
//!   delay model ([`timing::DelayModel`]).
//! * [`area`] — LUT/carry/slice area accounting.
//! * [`power`] — a toggle-count dynamic-energy proxy for EDP comparisons.
//! * [`cost`] — a device-level resource/cost model (LUT budget, DSP
//!   blocks, routing-pressure penalties) used by the Table 1 case study.
//!
//! ## Quick example: a full adder packed into one `LUT6_2` plus `CARRY4`
//!
//! ```
//! use axmul_fabric::{Init, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("adder4");
//! let a = b.inputs("a", 4);
//! let c = b.inputs("b", 4);
//! // Per bit: O6 = a XOR b (carry propagate), route `a` to DI (generate).
//! let mut props = Vec::new();
//! for i in 0..4 {
//!     let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
//!     props.push(o6);
//! }
//! let zero = b.constant(false);
//! let (sums, cout) = b.carry4(zero, props.clone().try_into().unwrap(),
//!                             [a[0], a[1], a[2], a[3]]);
//! for (i, s) in sums.iter().enumerate() {
//!     b.output(&format!("s{i}"), *s);
//! }
//! b.output("cout", cout);
//! let netlist = b.finish()?;
//! // 4-bit ripple add: s = a + b
//! let out = netlist.eval(&[0b0011, 0b0101])?; // a=3, b=5
//! assert_eq!(out[..4], [0, 0, 0, 1]); // 8 = 0b1000
//! # Ok::<(), axmul_fabric::FabricError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod compile;
pub mod cost;
mod error;
pub mod export;
pub mod fault;
mod init;
mod netlist;
pub mod power;
pub mod sim;
pub mod timing;

pub use error::FabricError;
pub use init::Init;
pub use netlist::{BitRef, Cell, CellId, Driver, NetId, Netlist, NetlistBuilder};
