use std::fmt;

use crate::{FabricError, Init};

/// Identifier of a single-bit net (wire) inside a [`Netlist`].
///
/// `NetId`s are minted exclusively by [`NetlistBuilder`] methods, which
/// guarantees that every net has exactly one driver and that cells are
/// recorded in topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of the net, usable as an array index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index.
    ///
    /// Only meaningful together with [`Netlist::from_parts`], which is
    /// the one entry point that accepts externally-minted ids; nets for
    /// [`NetlistBuilder`] APIs must come from the builder itself.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NetId(index)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a cell (LUT or carry chain element) inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Raw index of the cell.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `CellId` from a raw index (see [`NetId::new`]).
    #[must_use]
    pub const fn new(index: u32) -> Self {
        CellId(index)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What drives a net. Exposed for timing/power analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// A primary-input bit (bus index, bit index).
    Input(u16, u16),
    /// A constant.
    Const(bool),
    /// The `O6` output of a LUT cell.
    LutO6(CellId),
    /// The `O5` output of a LUT cell.
    LutO5(CellId),
    /// Sum output `O[i]` of a `CARRY4` cell.
    CarrySum(CellId, u8),
    /// Carry output `CO[i]` of a `CARRY4` cell.
    CarryCout(CellId, u8),
}

/// A fabric primitive instance.
///
/// Only the two primitives the DAC'18 designs use are modeled: the
/// fracturable 6-input LUT (`LUT6_2`) and the 4-bit carry chain
/// (`CARRY4`). Input arrays are ordered `[I0, I1, I2, I3, I4, I5]`
/// (LSB-first), matching the truth-table bit index of [`Init`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// A `LUT6_2`: 6 inputs, `O6` always present, `O5` optional.
    Lut {
        /// Truth table.
        init: Init,
        /// Inputs `[I0..=I5]`.
        inputs: [NetId; 6],
        /// Full 6-input function output.
        o6: NetId,
        /// Lower-half 5-input function output, if used.
        o5: Option<NetId>,
    },
    /// A `CARRY4`: 4-bit carry-lookahead segment.
    ///
    /// Per stage `i`: `O[i] = S[i] XOR C[i]` and
    /// `C[i+1] = S[i] ? C[i] : DI[i]` where `C[0] = CIN`.
    Carry4 {
        /// Carry input.
        cin: NetId,
        /// Carry-propagate ("select") inputs, usually LUT `O6` outputs.
        s: [NetId; 4],
        /// Carry-generate ("data") inputs, usually LUT `O5` or bypass.
        di: [NetId; 4],
        /// Sum outputs (`XORCY`), if used.
        o: [Option<NetId>; 4],
        /// Per-stage carry outputs (`MUXCY`), if used. `co[3]` cascades
        /// into the next `CARRY4`.
        co: [Option<NetId>; 4],
    },
}

/// Weighted bit-group metadata: where a net sits inside a named
/// primary bus (see [`Netlist::bit_of`]).
///
/// Buses are little-endian weighted groups: bit `i` of a bus carries
/// weight `2^i` in the bus value, so a `BitRef` pins down both the
/// net's name (`bus[bit]`) and its arithmetic weight — the metadata
/// range analyses and lint messages need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRef<'a> {
    /// Name of the bus.
    pub bus: &'a str,
    /// Bit index within the bus, LSB-first.
    pub bit: u32,
    /// `true` for an output bus, `false` for an input bus.
    pub is_output: bool,
}

impl BitRef<'_> {
    /// The bit's weight in the bus value (`2^bit`).
    #[must_use]
    pub fn weight(&self) -> u128 {
        1u128 << self.bit
    }
}

/// An elaborated, validated LUT-level netlist.
///
/// Create one with [`NetlistBuilder`]. The cell list is guaranteed to be
/// in topological order and every net to have exactly one driver, so
/// simulation is a single forward pass.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a full adder example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_count: u32,
    drivers: Vec<Driver>,
    cells: Vec<Cell>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
}

impl Netlist {
    /// Netlist name (diagnostic only).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of single-bit nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count as usize
    }

    /// All cells in topological order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The driver of each net, indexed by [`NetId::index`].
    #[must_use]
    pub fn drivers(&self) -> &[Driver] {
        &self.drivers
    }

    /// Primary-input buses `(name, bits)`, LSB-first.
    #[must_use]
    pub fn input_buses(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// Primary-output buses `(name, bits)`, LSB-first.
    #[must_use]
    pub fn output_buses(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Total primary-input bits across all buses — the width the
    /// truth-table and known-bits engines reason over.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.inputs.iter().map(|(_, b)| b.len() as u32).sum()
    }

    /// Locates `net` inside the primary buses: the bus name, the bit
    /// index (LSB-first, so the bit carries weight `2^bit` in the bus
    /// value) and whether the bus is an output. Output buses are
    /// searched first, so a net that is both an input and an output
    /// bit reports its output position. Returns `None` for internal
    /// nets.
    #[must_use]
    pub fn bit_of(&self, net: NetId) -> Option<BitRef<'_>> {
        fn find<'a>(
            buses: &'a [(String, Vec<NetId>)],
            net: NetId,
            is_output: bool,
        ) -> Option<BitRef<'a>> {
            buses.iter().find_map(|(name, bits)| {
                bits.iter().position(|&n| n == net).map(|bit| BitRef {
                    bus: name.as_str(),
                    bit: bit as u32,
                    is_output,
                })
            })
        }
        find(&self.outputs, net, true).or_else(|| find(&self.inputs, net, false))
    }

    /// Number of LUT cells — the paper's area unit.
    #[must_use]
    pub fn lut_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, Cell::Lut { .. }))
            .count()
    }

    /// Number of `CARRY4` cells.
    #[must_use]
    pub fn carry4_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, Cell::Carry4 { .. }))
            .count()
    }

    /// Assembles a netlist from raw parts **without validation**.
    ///
    /// Unlike [`NetlistBuilder::finish`], no invariant is checked: the
    /// driver table may disagree with the cell list, cells may be out
    /// of topological order, nets may be dangling or multiply driven,
    /// and combinational cycles are representable. Simulating or
    /// analyzing such a netlist is undefined in the "garbage in,
    /// garbage out" sense (no memory unsafety — the crate forbids
    /// `unsafe`, but indices may panic on out-of-range access).
    ///
    /// This is the escape hatch for code that must *represent* broken
    /// netlists: the `axmul-lint` static analyzer uses it to build
    /// deliberately-ill-formed fixtures, and importers of
    /// externally-generated netlists can construct first and let lint
    /// judge. Everything else should go through [`NetlistBuilder`].
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        drivers: Vec<Driver>,
        cells: Vec<Cell>,
        inputs: Vec<(String, Vec<NetId>)>,
        outputs: Vec<(String, Vec<NetId>)>,
    ) -> Self {
        Netlist {
            name: name.into(),
            net_count: drivers.len() as u32,
            drivers,
            cells,
            inputs,
            outputs,
        }
    }

    /// Fanout (number of cell/output sinks) of every net.
    #[must_use]
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.net_count as usize];
        for cell in &self.cells {
            match cell {
                Cell::Lut { inputs, init, .. } => {
                    for (i, n) in inputs.iter().enumerate() {
                        // Don't count inputs the truth table ignores
                        // (constant ties used only for packing).
                        if init.depends_on(i as u8) {
                            fo[n.index()] += 1;
                        }
                    }
                }
                Cell::Carry4 { cin, s, di, .. } => {
                    fo[cin.index()] += 1;
                    for n in s.iter().chain(di.iter()) {
                        fo[n.index()] += 1;
                    }
                }
            }
        }
        for (_, bits) in &self.outputs {
            for n in bits {
                fo[n.index()] += 1;
            }
        }
        fo
    }

    /// Fanout of every net counting **every connected pin**, including
    /// LUT pins the INIT truth table ignores (which [`Netlist::fanouts`]
    /// excludes).
    ///
    /// The difference between the two counts is what the lint
    /// dead-logic pass and [`crate::area::AreaReport`] call *ignored
    /// pins*: wires routed to a LUT input that cannot influence any of
    /// its used outputs.
    #[must_use]
    pub fn connected_fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.net_count as usize];
        for cell in &self.cells {
            match cell {
                Cell::Lut { inputs, .. } => {
                    for n in inputs {
                        fo[n.index()] += 1;
                    }
                }
                Cell::Carry4 { cin, s, di, .. } => {
                    fo[cin.index()] += 1;
                    for n in s.iter().chain(di.iter()) {
                        fo[n.index()] += 1;
                    }
                }
            }
        }
        for (_, bits) in &self.outputs {
            for n in bits {
                fo[n.index()] += 1;
            }
        }
        fo
    }

    /// Evaluates the netlist on one input vector.
    ///
    /// `inputs` holds one word per input bus, in declaration order, with
    /// bit `j` of the word driving bit `j` of the bus. Returns one word
    /// per output bus.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InputArity`] if `inputs.len()` differs from
    /// the number of input buses.
    pub fn eval(&self, inputs: &[u64]) -> Result<Vec<u64>, FabricError> {
        let lanes: Vec<&[u64]> = inputs.iter().map(std::slice::from_ref).collect();
        let out = crate::sim::WideSim::new(self).eval(&lanes)?;
        Ok(out.into_iter().map(|v| v[0]).collect())
    }
}

/// Incremental builder for [`Netlist`].
///
/// All `NetId`s handed out by the builder are already driven, so a
/// netlist built through this API is acyclic and single-driver by
/// construction; [`NetlistBuilder::finish`] re-validates anyway.
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    drivers: Vec<Driver>,
    cells: Vec<Cell>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Starts a new empty netlist with the given diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            drivers: Vec::new(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    fn fresh(&mut self, driver: Driver) -> NetId {
        let id = NetId(self.drivers.len() as u32);
        self.drivers.push(driver);
        id
    }

    /// Declares a primary-input bus of `width` bits (LSB-first).
    pub fn inputs(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let bus = self.inputs.len() as u16;
        let bits: Vec<NetId> = (0..width)
            .map(|j| self.fresh(Driver::Input(bus, j as u16)))
            .collect();
        self.inputs.push((name.into(), bits.clone()));
        bits
    }

    /// Returns the net driven by the given constant (memoized).
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = if value {
            &mut self.const1
        } else {
            &mut self.const0
        };
        if let Some(id) = *slot {
            return id;
        }
        let id = NetId(self.drivers.len() as u32);
        self.drivers.push(Driver::Const(value));
        if value {
            self.const1 = Some(id);
        } else {
            self.const0 = Some(id);
        }
        id
    }

    /// Instantiates a full `LUT6_2` with both outputs.
    ///
    /// `inputs` are `[I0..=I5]`. Returns `(o6, o5)`.
    pub fn lut6_2(&mut self, init: Init, inputs: [NetId; 6]) -> (NetId, NetId) {
        let cell = CellId(self.cells.len() as u32);
        let o6 = self.fresh(Driver::LutO6(cell));
        let o5 = self.fresh(Driver::LutO5(cell));
        self.cells.push(Cell::Lut {
            init,
            inputs,
            o6,
            o5: Some(o5),
        });
        (o6, o5)
    }

    /// Instantiates a LUT using only the `O6` output.
    ///
    /// `inputs` are `[I0..=I5]`.
    pub fn lut6(&mut self, init: Init, inputs: [NetId; 6]) -> NetId {
        let cell = CellId(self.cells.len() as u32);
        let o6 = self.fresh(Driver::LutO6(cell));
        self.cells.push(Cell::Lut {
            init,
            inputs,
            o6,
            o5: None,
        });
        o6
    }

    /// 1-input LUT (`O6` only); unused inputs tied low.
    pub fn lut1(&mut self, init: Init, i0: NetId) -> NetId {
        let z = self.constant(false);
        self.lut6(init, [i0, z, z, z, z, z])
    }

    /// 2-input LUT. Returns `(o6, o5)`; `o5` sees the same inputs.
    pub fn lut2(&mut self, init: Init, i0: NetId, i1: NetId) -> (NetId, NetId) {
        let z = self.constant(false);
        self.lut6_2(init, [i0, i1, z, z, z, z])
    }

    /// 3-input LUT (`O6` only); unused inputs tied low.
    pub fn lut3(&mut self, init: Init, i0: NetId, i1: NetId, i2: NetId) -> NetId {
        let z = self.constant(false);
        self.lut6(init, [i0, i1, i2, z, z, z])
    }

    /// Instantiates a `CARRY4` with all four sum outputs and the final
    /// carry-out. Returns `(sums, cout)`.
    pub fn carry4(&mut self, cin: NetId, s: [NetId; 4], di: [NetId; 4]) -> ([NetId; 4], NetId) {
        let cell = CellId(self.cells.len() as u32);
        let sums = [
            self.fresh(Driver::CarrySum(cell, 0)),
            self.fresh(Driver::CarrySum(cell, 1)),
            self.fresh(Driver::CarrySum(cell, 2)),
            self.fresh(Driver::CarrySum(cell, 3)),
        ];
        let cout = self.fresh(Driver::CarryCout(cell, 3));
        self.cells.push(Cell::Carry4 {
            cin,
            s,
            di,
            o: sums.map(Some),
            co: [None, None, None, Some(cout)],
        });
        (sums, cout)
    }

    /// Builds a carry chain of arbitrary length from cascaded `CARRY4`s.
    ///
    /// `prop[i]`/`gen[i]` feed stage `i`; the chain is padded with
    /// constant-zero propagate stages up to a multiple of 4 (the padding
    /// consumes no LUTs, mirroring the device). Returns the per-stage
    /// sums and the final carry out of stage `prop.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `prop` and `gen` have different lengths or are empty.
    pub fn carry_chain(
        &mut self,
        cin: NetId,
        prop: &[NetId],
        gen: &[NetId],
    ) -> (Vec<NetId>, NetId) {
        assert_eq!(prop.len(), gen.len(), "prop/gen length mismatch");
        assert!(!prop.is_empty(), "carry chain must have at least 1 stage");
        let zero = self.constant(false);
        let mut sums = Vec::with_capacity(prop.len());
        let mut carry = cin;
        let mut final_cout = cin;
        for chunk_start in (0..prop.len()).step_by(4) {
            let n = (prop.len() - chunk_start).min(4);
            let mut s = [zero; 4];
            let mut d = [zero; 4];
            s[..n].copy_from_slice(&prop[chunk_start..chunk_start + n]);
            d[..n].copy_from_slice(&gen[chunk_start..chunk_start + n]);
            let cell = CellId(self.cells.len() as u32);
            let mut o = [None; 4];
            let mut co = [None; 4];
            for (k, slot) in o.iter_mut().enumerate().take(n) {
                *slot = Some(self.fresh(Driver::CarrySum(cell, k as u8)));
            }
            // Carry out of the last *used* stage.
            co[n - 1] = Some(self.fresh(Driver::CarryCout(cell, (n - 1) as u8)));
            // If the chunk is full and more stages follow, cascade co[3].
            self.cells.push(Cell::Carry4 {
                cin: carry,
                s,
                di: d,
                o,
                co,
            });
            for slot in o.iter().take(n) {
                sums.push(slot.expect("sum allocated above"));
            }
            final_cout = co[n - 1].expect("cout allocated above");
            carry = final_cout;
        }
        (sums, final_cout)
    }

    /// Inlines (flattens) a sub-netlist into this builder.
    ///
    /// `inputs[k]` supplies the nets driving the `k`-th input bus of
    /// `sub` (same width). Every cell of `sub` is copied with its nets
    /// remapped; constants are re-memoized. Returns the nets of each
    /// output bus of `sub`, in declaration order.
    ///
    /// This is how hierarchical designs (e.g. an 8×8 multiplier built
    /// from four 4×4 blocks plus summation logic) are composed.
    ///
    /// # Panics
    ///
    /// Panics if the number or widths of `inputs` do not match `sub`'s
    /// input buses.
    pub fn instantiate(&mut self, sub: &Netlist, inputs: &[&[NetId]]) -> Vec<Vec<NetId>> {
        let buses = sub.input_buses();
        assert_eq!(
            inputs.len(),
            buses.len(),
            "instantiate: input bus count mismatch for `{}`",
            sub.name()
        );
        let mut map: Vec<Option<NetId>> = vec![None; sub.net_count()];
        for (k, (name, bits)) in buses.iter().enumerate() {
            assert_eq!(
                inputs[k].len(),
                bits.len(),
                "instantiate: width mismatch on bus `{name}` of `{}`",
                sub.name()
            );
            for (bit, net) in bits.iter().enumerate() {
                map[net.index()] = Some(inputs[k][bit]);
            }
        }
        for (net, driver) in sub.drivers.iter().enumerate() {
            if let Driver::Const(c) = driver {
                map[net] = Some(self.constant(*c));
            }
        }
        for cell in &sub.cells {
            match cell {
                Cell::Lut {
                    init,
                    inputs: ins,
                    o6,
                    o5,
                } => {
                    let mapped =
                        ins.map(|n| map[n.index()].expect("sub-netlist is topologically ordered"));
                    if let Some(o5) = o5 {
                        let (n6, n5) = self.lut6_2(*init, mapped);
                        map[o6.index()] = Some(n6);
                        map[o5.index()] = Some(n5);
                    } else {
                        let n6 = self.lut6(*init, mapped);
                        map[o6.index()] = Some(n6);
                    }
                }
                Cell::Carry4 { cin, s, di, o, co } => {
                    let rm = |n: NetId, map: &[Option<NetId>]| {
                        map[n.index()].expect("sub-netlist is topologically ordered")
                    };
                    let cell_id = CellId(self.cells.len() as u32);
                    let mcin = rm(*cin, &map);
                    let ms = s.map(|n| rm(n, &map));
                    let mdi = di.map(|n| rm(n, &map));
                    let mut mo = [None; 4];
                    let mut mco = [None; 4];
                    for stage in 0..4 {
                        if let Some(n) = o[stage] {
                            let fresh = self.fresh(Driver::CarrySum(cell_id, stage as u8));
                            mo[stage] = Some(fresh);
                            map[n.index()] = Some(fresh);
                        }
                        if let Some(n) = co[stage] {
                            let fresh = self.fresh(Driver::CarryCout(cell_id, stage as u8));
                            mco[stage] = Some(fresh);
                            map[n.index()] = Some(fresh);
                        }
                    }
                    self.cells.push(Cell::Carry4 {
                        cin: mcin,
                        s: ms,
                        di: mdi,
                        o: mo,
                        co: mco,
                    });
                }
            }
        }
        sub.output_buses()
            .iter()
            .map(|(_, bits)| {
                bits.iter()
                    .map(|n| map[n.index()].expect("output driven"))
                    .collect()
            })
            .collect()
    }

    /// Declares a single-bit primary output.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), vec![net]));
    }

    /// Declares a multi-bit primary-output bus (LSB-first).
    pub fn output_bus(&mut self, name: impl Into<String>, bits: &[NetId]) {
        self.outputs.push((name.into(), bits.to_vec()));
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// * [`FabricError::DuplicatePort`] if two buses share a name.
    /// * [`FabricError::UndrivenNet`] if a referenced net is out of range
    ///   (can only happen if a `NetId` from another builder leaked in).
    pub fn finish(self) -> Result<Netlist, FabricError> {
        let n = self.drivers.len() as u32;
        let check = |id: NetId| -> Result<(), FabricError> {
            if id.0 < n {
                Ok(())
            } else {
                Err(FabricError::UndrivenNet {
                    net: id.0,
                    netlist: self.name.clone(),
                })
            }
        };
        for cell in &self.cells {
            match cell {
                Cell::Lut { inputs, .. } => inputs.iter().try_for_each(|&i| check(i))?,
                Cell::Carry4 { cin, s, di, .. } => {
                    check(*cin)?;
                    s.iter().chain(di.iter()).try_for_each(|&i| check(i))?;
                }
            }
        }
        let mut names: Vec<&str> = self
            .inputs
            .iter()
            .map(|(s, _)| s.as_str())
            .chain(self.outputs.iter().map(|(s, _)| s.as_str()))
            .collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] {
                return Err(FabricError::DuplicatePort {
                    name: w[0].to_string(),
                });
            }
        }
        for (_, bits) in self.outputs.iter() {
            bits.iter().try_for_each(|&b| check(b))?;
        }
        Ok(Netlist {
            name: self.name,
            net_count: n,
            drivers: self.drivers,
            cells: self.cells,
            inputs: self.inputs,
            outputs: self.outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval_identity() {
        let mut b = NetlistBuilder::new("id");
        let a = b.inputs("a", 2);
        b.output("y0", a[0]);
        b.output("y1", a[1]);
        let nl = b.finish().unwrap();
        assert_eq!(nl.eval(&[0b10]).unwrap(), vec![0, 1]);
        assert_eq!(nl.name(), "id");
    }

    #[test]
    fn lut2_and_gate() {
        let mut b = NetlistBuilder::new("and");
        let a = b.inputs("a", 1);
        let c = b.inputs("b", 1);
        let (o6, _) = b.lut2(Init::AND2, a[0], c[0]);
        b.output("y", o6);
        let nl = b.finish().unwrap();
        for (x, y, want) in [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)] {
            assert_eq!(nl.eval(&[x, y]).unwrap()[0], want);
        }
    }

    #[test]
    fn carry4_is_a_4bit_adder() {
        // prop = a XOR b, gen = a (classic carry-chain adder mapping)
        let mut b = NetlistBuilder::new("add4");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let mut props = [a[0]; 4];
        for i in 0..4 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props[i] = o6;
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry4(zero, props, [a[0], a[1], a[2], a[3]]);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        let nl = b.finish().unwrap();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let out = nl.eval(&[x, y]).unwrap();
                let got = out[0] | (out[1] << 4);
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn carry_chain_handles_non_multiple_of_four() {
        let mut b = NetlistBuilder::new("add6");
        let a = b.inputs("a", 6);
        let c = b.inputs("b", 6);
        let mut props = Vec::new();
        for i in 0..6 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let gens: Vec<NetId> = a.clone();
        let (sums, cout) = b.carry_chain(zero, &props, &gens);
        assert_eq!(sums.len(), 6);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        let nl = b.finish().unwrap();
        assert_eq!(nl.carry4_count(), 2);
        for x in 0..64u64 {
            for y in 0..64u64 {
                let out = nl.eval(&[x, y]).unwrap();
                assert_eq!(out[0] | (out[1] << 6), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn constants_are_memoized() {
        let mut b = NetlistBuilder::new("c");
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o1 = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
    }

    #[test]
    fn duplicate_port_rejected() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.inputs("a", 1);
        b.output("a", a[0]);
        assert!(matches!(b.finish(), Err(FabricError::DuplicatePort { .. })));
    }

    #[test]
    fn lut_count_excludes_carries() {
        let mut b = NetlistBuilder::new("n");
        let a = b.inputs("a", 4);
        let z = b.constant(false);
        let (o6, _) = b.lut2(Init::XOR2, a[0], a[1]);
        let _ = b.carry4(z, [o6; 4], [a[0], a[1], a[2], a[3]]);
        let nl = b.finish().unwrap();
        assert_eq!(nl.lut_count(), 1);
        assert_eq!(nl.carry4_count(), 1);
    }

    #[test]
    fn fanouts_ignore_unused_lut_pins() {
        let mut b = NetlistBuilder::new("f");
        let a = b.inputs("a", 2);
        // XOR2 only depends on I0, I1; the zero-constant ties must not
        // count toward the constant net's fanout.
        let (o6, _) = b.lut2(Init::XOR2, a[0], a[1]);
        b.output("y", o6);
        let nl = b.finish().unwrap();
        let fo = nl.fanouts();
        assert_eq!(fo[a[0].index()], 1);
        assert_eq!(fo[o6.index()], 1);
    }

    #[test]
    fn instantiate_flattens_hierarchy() {
        // Build a 2-bit adder as a sub-netlist, instantiate it twice to
        // form (a+b)+c over 2-bit operands (mod 4 on the sum bus).
        let mut sb = NetlistBuilder::new("add2");
        let x = sb.inputs("x", 2);
        let y = sb.inputs("y", 2);
        let mut props = Vec::new();
        for i in 0..2 {
            let (o6, _) = sb.lut2(Init::XOR2, x[i], y[i]);
            props.push(o6);
        }
        let zero = sb.constant(false);
        let (sums, _) = sb.carry_chain(zero, &props, &x);
        sb.output_bus("s", &sums);
        let sub = sb.finish().unwrap();

        let mut b = NetlistBuilder::new("add3ops");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let d = b.inputs("c", 2);
        let first = b.instantiate(&sub, &[&a, &c]);
        let second = b.instantiate(&sub, &[&first[0], &d]);
        b.output_bus("s", &second[0]);
        let nl = b.finish().unwrap();
        assert_eq!(nl.lut_count(), 4);
        assert_eq!(nl.carry4_count(), 2);
        for a_v in 0..4u64 {
            for b_v in 0..4u64 {
                for c_v in 0..4u64 {
                    let out = nl.eval(&[a_v, b_v, c_v]).unwrap();
                    assert_eq!(out[0], (a_v + b_v + c_v) & 3);
                }
            }
        }
    }

    #[test]
    fn eval_wrong_arity_errors() {
        let mut b = NetlistBuilder::new("n");
        let a = b.inputs("a", 1);
        b.output("y", a[0]);
        let nl = b.finish().unwrap();
        assert!(matches!(
            nl.eval(&[]),
            Err(FabricError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }
}
