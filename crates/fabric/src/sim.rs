//! Bit-parallel netlist simulation.
//!
//! [`WideSim`] evaluates up to 64 independent input vectors ("lanes")
//! per pass by storing one `u64` per net, with lane `l` in bit `l`.
//! This is what makes exhaustive 8×8 characterization (65 536 vectors)
//! essentially free: 1 024 passes over the cell list.

use crate::netlist::{Cell, Driver};
use crate::{FabricError, Netlist};

/// A reusable 64-lane bit-parallel simulator over a borrowed [`Netlist`].
///
/// # Examples
///
/// ```
/// use axmul_fabric::{Init, NetlistBuilder, sim::WideSim};
///
/// let mut b = NetlistBuilder::new("xor");
/// let a = b.inputs("a", 1);
/// let c = b.inputs("b", 1);
/// let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
/// b.output("y", o6);
/// let nl = b.finish()?;
///
/// let mut sim = WideSim::new(&nl);
/// // Four lanes at once: (0,0) (0,1) (1,0) (1,1)
/// let out = sim.eval(&[&[0, 0, 1, 1], &[0, 1, 0, 1]])?;
/// assert_eq!(out[0], vec![0, 1, 1, 0]);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[derive(Debug)]
pub struct WideSim<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl<'a> WideSim<'a> {
    /// Creates a simulator for `netlist`.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        WideSim {
            netlist,
            values: vec![0; netlist.net_count()],
        }
    }

    /// Evaluates up to 64 lanes.
    ///
    /// `inputs[bus]` holds one word per lane for that input bus; all
    /// buses must supply the same number of lanes (1..=64). Returns
    /// `outputs[bus][lane]`.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] if the bus count or lane counts are
    /// inconsistent with the netlist.
    pub fn eval(&mut self, inputs: &[&[u64]]) -> Result<Vec<Vec<u64>>, FabricError> {
        let lanes = self.load(inputs)?;
        self.propagate();
        Ok(self.read_outputs(lanes))
    }

    /// Evaluates lanes and returns the value of *every net*, for
    /// analyses that need internal visibility (e.g. toggle counting).
    ///
    /// The returned slice is indexed by [`crate::NetId::index`]; bit `l`
    /// of each word is lane `l`.
    ///
    /// # Errors
    ///
    /// Same as [`WideSim::eval`].
    pub fn eval_nets(&mut self, inputs: &[&[u64]]) -> Result<&[u64], FabricError> {
        self.load(inputs)?;
        self.propagate();
        Ok(&self.values)
    }

    fn load(&mut self, inputs: &[&[u64]]) -> Result<usize, FabricError> {
        let buses = self.netlist.input_buses();
        if inputs.len() != buses.len() {
            return Err(FabricError::InputArity {
                expected: buses.len(),
                got: inputs.len(),
            });
        }
        let lanes = inputs.first().map_or(1, |b| b.len());
        if lanes == 0 || lanes > 64 || inputs.iter().any(|b| b.len() != lanes) {
            return Err(FabricError::InputArity {
                expected: lanes.clamp(1, 64),
                got: inputs.iter().map(|b| b.len()).max().unwrap_or(0),
            });
        }
        self.values.iter_mut().for_each(|v| *v = 0);
        // Transpose: lane-major input words -> bit-sliced net values.
        for (bus_idx, (_, bits)) in buses.iter().enumerate() {
            for (bit_idx, net) in bits.iter().enumerate() {
                let mut word = 0u64;
                for (lane, &val) in inputs[bus_idx].iter().enumerate() {
                    word |= ((val >> bit_idx) & 1) << lane;
                }
                self.values[net.index()] = word;
            }
        }
        // Constants broadcast to all lanes.
        for (net, driver) in self.netlist.drivers().iter().enumerate() {
            if let Driver::Const(c) = driver {
                self.values[net] = if *c { u64::MAX } else { 0 };
            }
        }
        Ok(lanes)
    }

    fn propagate(&mut self) {
        for cell in self.netlist.cells() {
            match cell {
                Cell::Lut {
                    init,
                    inputs,
                    o6,
                    o5,
                } => {
                    let iv = inputs.map(|n| self.values[n.index()]);
                    let mut w6 = 0u64;
                    let mut w5 = 0u64;
                    for lane in 0..64 {
                        let idx = ((iv[0] >> lane) & 1)
                            | ((iv[1] >> lane) & 1) << 1
                            | ((iv[2] >> lane) & 1) << 2
                            | ((iv[3] >> lane) & 1) << 3
                            | ((iv[4] >> lane) & 1) << 4
                            | ((iv[5] >> lane) & 1) << 5;
                        w6 |= ((init.raw() >> idx) & 1) << lane;
                        w5 |= ((init.raw() >> (idx & 0x1F)) & 1) << lane;
                    }
                    self.values[o6.index()] = w6;
                    if let Some(o5) = o5 {
                        self.values[o5.index()] = w5;
                    }
                }
                Cell::Carry4 { cin, s, di, o, co } => {
                    let mut carry = self.values[cin.index()];
                    for stage in 0..4 {
                        let sv = self.values[s[stage].index()];
                        let dv = self.values[di[stage].index()];
                        let sum = sv ^ carry;
                        let next = (sv & carry) | (!sv & dv);
                        if let Some(n) = o[stage] {
                            self.values[n.index()] = sum;
                        }
                        if let Some(n) = co[stage] {
                            self.values[n.index()] = next;
                        }
                        carry = next;
                    }
                }
            }
        }
    }

    fn read_outputs(&self, lanes: usize) -> Vec<Vec<u64>> {
        self.netlist
            .output_buses()
            .iter()
            .map(|(_, bits)| {
                (0..lanes)
                    .map(|lane| {
                        let mut val = 0u64;
                        for (bit_idx, net) in bits.iter().enumerate() {
                            val |= ((self.values[net.index()] >> lane) & 1) << bit_idx;
                        }
                        val
                    })
                    .collect()
            })
            .collect()
    }
}

/// Exhaustively evaluates a two-input-bus netlist over all operand
/// combinations, invoking `visit(a, b, outputs)` for each.
///
/// The netlist must have exactly two input buses (`a` first). Intended
/// for operand widths whose product space fits in memory-free streaming
/// (e.g. 8×8 → 65 536 evaluations).
///
/// # Errors
///
/// Propagates simulation errors; also returns [`FabricError::InputArity`]
/// if the netlist does not have exactly two input buses.
pub fn for_each_operand_pair(
    netlist: &Netlist,
    mut visit: impl FnMut(u64, u64, &[u64]),
) -> Result<(), FabricError> {
    let buses = netlist.input_buses();
    if buses.len() != 2 {
        return Err(FabricError::InputArity {
            expected: 2,
            got: buses.len(),
        });
    }
    let a_bits = buses[0].1.len();
    let b_bits = buses[1].1.len();
    assert!(
        a_bits + b_bits <= 32,
        "exhaustive sweep over {a_bits}x{b_bits} operands is infeasible"
    );
    let total: u64 = 1 << (a_bits + b_bits);
    let mut sim = WideSim::new(netlist);
    let mut idx = 0u64;
    let mut a_lane = [0u64; 64];
    let mut b_lane = [0u64; 64];
    while idx < total {
        let n = ((total - idx) as usize).min(64);
        for k in 0..n {
            let v = idx + k as u64;
            a_lane[k] = v & ((1 << a_bits) - 1);
            b_lane[k] = v >> a_bits;
        }
        let outs = sim.eval(&[&a_lane[..n], &b_lane[..n]])?;
        let mut row = vec![0u64; outs.len()];
        for k in 0..n {
            for (j, bus) in outs.iter().enumerate() {
                row[j] = bus[k];
            }
            visit(a_lane[k], b_lane[k], &row);
        }
        idx += n as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    fn adder2() -> Netlist {
        let mut b = NetlistBuilder::new("add2");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let mut props = Vec::new();
        for i in 0..2 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &[a[0], a[1]]);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    #[test]
    fn wide_matches_scalar() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        let a_vals: Vec<u64> = (0..16).map(|i| i & 3).collect();
        let b_vals: Vec<u64> = (0..16).map(|i| i >> 2).collect();
        let wide = sim.eval(&[&a_vals, &b_vals]).unwrap();
        for i in 0..16 {
            let scalar = nl.eval(&[a_vals[i], b_vals[i]]).unwrap();
            assert_eq!(wide[0][i], scalar[0]);
            assert_eq!(wide[1][i], scalar[1]);
        }
    }

    #[test]
    fn full_64_lanes() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        let a_vals: Vec<u64> = (0..64).map(|i| i % 4).collect();
        let b_vals: Vec<u64> = (0..64).map(|i| (i / 4) % 4).collect();
        let out = sim.eval(&[&a_vals, &b_vals]).unwrap();
        for i in 0..64 {
            let sum = a_vals[i] + b_vals[i];
            assert_eq!(out[0][i], sum & 3, "lane {i}");
            assert_eq!(out[1][i], sum >> 2, "lane {i}");
        }
    }

    #[test]
    fn exhaustive_visits_every_pair_once() {
        let nl = adder2();
        let mut seen = [false; 16];
        for_each_operand_pair(&nl, |a, b, out| {
            let k = (a | (b << 2)) as usize;
            assert!(!seen[k], "pair ({a},{b}) visited twice");
            seen[k] = true;
            assert_eq!(out[0] | (out[1] << 2), a + b);
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lane_count_validation() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        assert!(sim.eval(&[&[1], &[1, 2]]).is_err(), "ragged lanes");
        assert!(sim.eval(&[&[1]]).is_err(), "missing bus");
        let empty: &[u64] = &[];
        assert!(sim.eval(&[empty, empty]).is_err(), "zero lanes");
    }

    #[test]
    fn eval_nets_exposes_internals() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        let nets = sim.eval_nets(&[&[3], &[1]]).unwrap();
        assert_eq!(nets.len(), nl.net_count());
    }
}
