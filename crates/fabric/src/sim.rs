//! Bit-parallel netlist simulation.
//!
//! [`WideSim`] evaluates up to 64 independent input vectors ("lanes")
//! per pass by storing one `u64` per net, with lane `l` in bit `l`.
//! This is what makes exhaustive 8×8 characterization (65 536 vectors)
//! essentially free: 1 024 passes over the cell list.

use crate::netlist::{Cell, Driver};
use crate::{FabricError, Netlist};

/// A reusable 64-lane bit-parallel simulator over a borrowed [`Netlist`].
///
/// # Examples
///
/// ```
/// use axmul_fabric::{Init, NetlistBuilder, sim::WideSim};
///
/// let mut b = NetlistBuilder::new("xor");
/// let a = b.inputs("a", 1);
/// let c = b.inputs("b", 1);
/// let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
/// b.output("y", o6);
/// let nl = b.finish()?;
///
/// let mut sim = WideSim::new(&nl);
/// // Four lanes at once: (0,0) (0,1) (1,0) (1,1)
/// let out = sim.eval(&[&[0, 0, 1, 1], &[0, 1, 0, 1]])?;
/// assert_eq!(out[0], vec![0, 1, 1, 0]);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[derive(Debug)]
pub struct WideSim<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl<'a> WideSim<'a> {
    /// Creates a simulator for `netlist`.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut values = vec![0; netlist.net_count()];
        // Constants broadcast once: every other net is rewritten by
        // `load` (inputs) or `propagate` (cell outputs) on each pass,
        // so no per-pass clearing or re-broadcast is needed.
        for (net, driver) in netlist.drivers().iter().enumerate() {
            if let Driver::Const(c) = driver {
                values[net] = if *c { u64::MAX } else { 0 };
            }
        }
        WideSim { netlist, values }
    }

    /// Evaluates up to 64 lanes.
    ///
    /// `inputs[bus]` holds one word per lane for that input bus; all
    /// buses must supply the same number of lanes (1..=64). Returns
    /// `outputs[bus][lane]`.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] if the bus count or lane counts are
    /// inconsistent with the netlist.
    pub fn eval(&mut self, inputs: &[&[u64]]) -> Result<Vec<Vec<u64>>, FabricError> {
        let lanes = self.load(inputs)?;
        self.propagate();
        Ok(self.read_outputs(lanes))
    }

    /// Evaluates lanes and returns the value of *every net*, for
    /// analyses that need internal visibility (e.g. toggle counting).
    ///
    /// The returned slice is indexed by [`crate::NetId::index`]; bit `l`
    /// of each word is lane `l`.
    ///
    /// # Errors
    ///
    /// Same as [`WideSim::eval`].
    pub fn eval_nets(&mut self, inputs: &[&[u64]]) -> Result<&[u64], FabricError> {
        self.load(inputs)?;
        self.propagate();
        Ok(&self.values)
    }

    fn load(&mut self, inputs: &[&[u64]]) -> Result<usize, FabricError> {
        let buses = self.netlist.input_buses();
        if inputs.len() != buses.len() {
            return Err(FabricError::InputArity {
                expected: buses.len(),
                got: inputs.len(),
            });
        }
        let lanes = inputs.first().map_or(1, |b| b.len());
        if lanes == 0 || lanes > 64 || inputs.iter().any(|b| b.len() != lanes) {
            return Err(FabricError::InputArity {
                expected: lanes.clamp(1, 64),
                got: inputs.iter().map(|b| b.len()).max().unwrap_or(0),
            });
        }
        // Transpose: lane-major input words -> bit-sliced net values.
        // Input words are fully overwritten (unused high lanes read 0),
        // so no clearing of the previous pass is needed.
        for (bus_idx, (_, bits)) in buses.iter().enumerate() {
            for (bit_idx, net) in bits.iter().enumerate() {
                let mut word = 0u64;
                for (lane, &val) in inputs[bus_idx].iter().enumerate() {
                    word |= ((val >> bit_idx) & 1) << lane;
                }
                self.values[net.index()] = word;
            }
        }
        Ok(lanes)
    }

    fn propagate(&mut self) {
        for cell in self.netlist.cells() {
            match cell {
                Cell::Lut {
                    init,
                    inputs,
                    o6,
                    o5,
                } => {
                    let iv = inputs.map(|n| self.values[n.index()]);
                    let mut w6 = 0u64;
                    let mut w5 = 0u64;
                    for lane in 0..64 {
                        let idx = ((iv[0] >> lane) & 1)
                            | ((iv[1] >> lane) & 1) << 1
                            | ((iv[2] >> lane) & 1) << 2
                            | ((iv[3] >> lane) & 1) << 3
                            | ((iv[4] >> lane) & 1) << 4
                            | ((iv[5] >> lane) & 1) << 5;
                        w6 |= ((init.raw() >> idx) & 1) << lane;
                        w5 |= ((init.raw() >> (idx & 0x1F)) & 1) << lane;
                    }
                    self.values[o6.index()] = w6;
                    if let Some(o5) = o5 {
                        self.values[o5.index()] = w5;
                    }
                }
                Cell::Carry4 { cin, s, di, o, co } => {
                    let mut carry = self.values[cin.index()];
                    for stage in 0..4 {
                        let sv = self.values[s[stage].index()];
                        let dv = self.values[di[stage].index()];
                        let sum = sv ^ carry;
                        let next = (sv & carry) | (!sv & dv);
                        if let Some(n) = o[stage] {
                            self.values[n.index()] = sum;
                        }
                        if let Some(n) = co[stage] {
                            self.values[n.index()] = next;
                        }
                        carry = next;
                    }
                }
            }
        }
    }

    fn read_outputs(&self, lanes: usize) -> Vec<Vec<u64>> {
        self.netlist
            .output_buses()
            .iter()
            .map(|(_, bits)| {
                (0..lanes)
                    .map(|lane| {
                        let mut val = 0u64;
                        for (bit_idx, net) in bits.iter().enumerate() {
                            val |= ((self.values[net.index()] >> lane) & 1) << bit_idx;
                        }
                        val
                    })
                    .collect()
            })
            .collect()
    }
}

/// Exhaustively evaluates a two-input-bus netlist over all operand
/// combinations, invoking `visit(a, b, outputs)` for each, in ascending
/// combined-index order with `a` (bus 0) as the fast axis.
///
/// The netlist must have exactly two input buses (`a` first). Since the
/// compiled-simulator rework this compiles the netlist once
/// ([`crate::compile::CompiledNetlist`]) and streams 256-lane blocks
/// through the bit-sliced instruction stream; callers that sweep the
/// same netlist repeatedly (or in parallel shards) should compile it
/// themselves and use
/// [`crate::compile::CompiledNetlist::for_each_operand_pair_in`].
///
/// # Errors
///
/// Propagates simulation errors; also returns [`FabricError::InputArity`]
/// if the netlist does not have exactly two input buses.
///
/// # Panics
///
/// Panics if the operand space exceeds 2³² pairs.
pub fn for_each_operand_pair(
    netlist: &Netlist,
    visit: impl FnMut(u64, u64, &[u64]),
) -> Result<(), FabricError> {
    let prog = crate::compile::CompiledNetlist::compile(netlist);
    let (a_bits, b_bits) = prog.operand_widths()?;
    assert!(
        a_bits + b_bits <= 32,
        "exhaustive sweep over {a_bits}x{b_bits} operands is infeasible"
    );
    let total: u64 = 1 << (a_bits + b_bits);
    prog.for_each_operand_pair_in(0..total, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    fn adder2() -> Netlist {
        let mut b = NetlistBuilder::new("add2");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let mut props = Vec::new();
        for i in 0..2 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &[a[0], a[1]]);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    #[test]
    fn wide_matches_scalar() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        let a_vals: Vec<u64> = (0..16).map(|i| i & 3).collect();
        let b_vals: Vec<u64> = (0..16).map(|i| i >> 2).collect();
        let wide = sim.eval(&[&a_vals, &b_vals]).unwrap();
        for i in 0..16 {
            let scalar = nl.eval(&[a_vals[i], b_vals[i]]).unwrap();
            assert_eq!(wide[0][i], scalar[0]);
            assert_eq!(wide[1][i], scalar[1]);
        }
    }

    #[test]
    fn full_64_lanes() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        let a_vals: Vec<u64> = (0..64).map(|i| i % 4).collect();
        let b_vals: Vec<u64> = (0..64).map(|i| (i / 4) % 4).collect();
        let out = sim.eval(&[&a_vals, &b_vals]).unwrap();
        for i in 0..64 {
            let sum = a_vals[i] + b_vals[i];
            assert_eq!(out[0][i], sum & 3, "lane {i}");
            assert_eq!(out[1][i], sum >> 2, "lane {i}");
        }
    }

    #[test]
    fn exhaustive_visits_every_pair_once() {
        let nl = adder2();
        let mut seen = [false; 16];
        for_each_operand_pair(&nl, |a, b, out| {
            let k = (a | (b << 2)) as usize;
            assert!(!seen[k], "pair ({a},{b}) visited twice");
            seen[k] = true;
            assert_eq!(out[0] | (out[1] << 2), a + b);
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lane_count_validation() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        assert!(sim.eval(&[&[1], &[1, 2]]).is_err(), "ragged lanes");
        assert!(sim.eval(&[&[1]]).is_err(), "missing bus");
        let empty: &[u64] = &[];
        assert!(sim.eval(&[empty, empty]).is_err(), "zero lanes");
    }

    #[test]
    fn eval_nets_exposes_internals() {
        let nl = adder2();
        let mut sim = WideSim::new(&nl);
        let nets = sim.eval_nets(&[&[3], &[1]]).unwrap();
        assert_eq!(nets.len(), nl.net_count());
    }
}
