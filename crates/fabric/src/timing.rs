//! Static timing analysis over [`Netlist`]s.
//!
//! The delay model is a small set of per-resource constants in
//! nanoseconds, shaped like a Virtex-7 speed file: LUT propagation,
//! carry-chain mux/xor stages, general routing (fanout dependent),
//! in-slice local routing, dedicated carry cascades, and I/O boundary
//! delays. [`DelayModel::virtex7`] is **calibrated against Table 4 of
//! the DAC'18 paper** (the measured latencies of the proposed Ca
//! multipliers on a 7VX330T with Vivado 17.1); everything else the
//! model predicts is then genuinely a prediction.

use std::fmt;

use crate::netlist::{Cell, Driver};
use crate::Netlist;

/// Per-resource delay constants in nanoseconds.
///
/// # Examples
///
/// ```
/// use axmul_fabric::timing::DelayModel;
/// let m = DelayModel::virtex7();
/// assert!(m.t_lut > 0.0 && m.t_lut < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Input pad/buffer + entry routing.
    pub t_input: f64,
    /// Exit routing + output pad/buffer.
    pub t_output: f64,
    /// LUT6 propagation (any input to O6/O5).
    pub t_lut: f64,
    /// Base general-routing delay of a net.
    pub t_net: f64,
    /// Additional routing delay per extra fanout.
    pub t_net_fanout: f64,
    /// In-slice route from a LUT output to the carry chain S/DI pins.
    pub t_local: f64,
    /// Dedicated CO→CIN cascade between stacked `CARRY4`s.
    pub t_cascade: f64,
    /// CIN arrival to first MUXCY decision.
    pub t_cyinit: f64,
    /// Per-stage MUXCY delay along the chain.
    pub t_mux: f64,
    /// XORCY delay from the latest of {carry, S} to the sum output.
    pub t_xorcy: f64,
}

impl DelayModel {
    /// A Virtex-7 style model, calibrated so that STA of the proposed
    /// multiplier netlists reproduces Table 4 of the paper (both the Ca
    /// and Cc columns at 4/8/16 bits) within a few percent. See
    /// `EXPERIMENTS.md` for the calibration residuals.
    /// The calibration fits all six Table 4 latencies within 3.6 %:
    /// Ca 5.846/8.006/10.931 ns and Cc 5.846/6.696/7.846 ns at 4/8/16
    /// bits, versus the paper's 5.846/7.746/10.765 and
    /// 5.846/6.946/7.613.
    #[must_use]
    pub fn virtex7() -> Self {
        DelayModel {
            t_input: 1.8755,
            t_output: 1.8755,
            t_lut: 0.15,
            t_net: 0.40,
            t_net_fanout: 0.03,
            t_local: 0.05,
            t_cascade: 0.03,
            t_cyinit: 0.15,
            t_mux: 0.015,
            t_xorcy: 0.20,
        }
    }

    /// A unit-delay model (1 ns per LUT level, everything else free).
    /// Useful for counting logic depth in tests.
    #[must_use]
    pub fn unit() -> Self {
        DelayModel {
            t_input: 0.0,
            t_output: 0.0,
            t_lut: 1.0,
            t_net: 0.0,
            t_net_fanout: 0.0,
            t_local: 0.0,
            t_cascade: 0.0,
            t_cyinit: 0.0,
            t_mux: 0.0,
            t_xorcy: 0.0,
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::virtex7()
    }
}

/// Result of a timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst-case input-to-output delay in nanoseconds.
    pub critical_path_ns: f64,
    /// Name of the output bus on the critical path.
    pub worst_output: String,
    /// Bit index within that bus.
    pub worst_bit: usize,
    /// Arrival time (ns) at each net, indexed by [`crate::NetId::index`].
    pub arrivals: Vec<f64>,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "critical path {:.3} ns to {}[{}]",
            self.critical_path_ns, self.worst_output, self.worst_bit
        )
    }
}

/// Runs static timing analysis on `netlist` under `model`.
///
/// Cells are processed in the (guaranteed) topological order of the
/// netlist; arrival at a cell input pin is the arrival at the driving
/// net plus a routing delay that depends on the driver/sink resource
/// pair and the net's fanout. LUT inputs that the truth table provably
/// ignores (constant packing ties, `I5 = 1`) do not constrain the
/// output arrival.
///
/// # Examples
///
/// ```
/// use axmul_fabric::{Init, NetlistBuilder};
/// use axmul_fabric::timing::{analyze, DelayModel};
///
/// let mut b = NetlistBuilder::new("buf");
/// let a = b.inputs("a", 1);
/// let y = b.lut1(Init::BUF, a[0]);
/// b.output("y", y);
/// let nl = b.finish()?;
/// let report = analyze(&nl, &DelayModel::unit());
/// assert_eq!(report.critical_path_ns, 1.0); // one LUT level
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist, model: &DelayModel) -> TimingReport {
    let fanouts = netlist.fanouts();
    let drivers = netlist.drivers();
    let mut arrival = vec![0.0f64; netlist.net_count()];

    for (net, driver) in drivers.iter().enumerate() {
        if matches!(driver, Driver::Input(..)) {
            arrival[net] = model.t_input;
        }
    }

    // Routing delay seen by a sink reading `net`.
    let route = |net: usize, to_carry: bool, arrival: &[f64]| -> f64 {
        match drivers[net] {
            Driver::Const(_) => 0.0,
            Driver::CarryCout(..) if to_carry => arrival[net] + model.t_cascade,
            _ if to_carry => arrival[net] + model.t_local,
            _ => {
                let fo = fanouts[net].max(1) as f64;
                arrival[net] + model.t_net + model.t_net_fanout * (fo - 1.0)
            }
        }
    };

    for cell in netlist.cells() {
        match cell {
            Cell::Lut {
                init,
                inputs,
                o6,
                o5,
            } => {
                // Each fractured output has its own support and thus
                // its own arrival time.
                let mut t6 = 0.0f64;
                let mut t5 = 0.0f64;
                for (i, n) in inputs.iter().enumerate() {
                    if init.depends_on(i as u8) {
                        t6 = t6.max(route(n.index(), false, &arrival));
                    }
                    if o5.is_some() && init.depends_on_o5(i as u8) {
                        t5 = t5.max(route(n.index(), false, &arrival));
                    }
                }
                arrival[o6.index()] = t6 + model.t_lut;
                if let Some(o5) = o5 {
                    arrival[o5.index()] = t5 + model.t_lut;
                }
            }
            Cell::Carry4 { cin, s, di, o, co } => {
                let mut carry = route(cin.index(), true, &arrival) + model.t_cyinit;
                for stage in 0..4 {
                    let s_arr = route(s[stage].index(), true, &arrival);
                    let di_arr = route(di[stage].index(), true, &arrival);
                    if let Some(n) = o[stage] {
                        arrival[n.index()] = carry.max(s_arr) + model.t_xorcy;
                    }
                    carry = carry.max(s_arr).max(di_arr) + model.t_mux;
                    if let Some(n) = co[stage] {
                        arrival[n.index()] = carry;
                    }
                }
            }
        }
    }

    let mut worst = 0.0f64;
    let mut worst_output = String::new();
    let mut worst_bit = 0usize;
    for (name, bits) in netlist.output_buses() {
        for (bit, n) in bits.iter().enumerate() {
            let t = arrival[n.index()] + model.t_net + model.t_output;
            if t > worst {
                worst = t;
                worst_output = name.clone();
                worst_bit = bit;
            }
        }
    }
    TimingReport {
        critical_path_ns: worst,
        worst_output,
        worst_bit,
        arrivals: arrival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    #[test]
    fn unit_model_counts_lut_levels() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.inputs("a", 1);
        let l1 = b.lut1(Init::BUF, a[0]);
        let l2 = b.lut1(Init::BUF, l1);
        let l3 = b.lut1(Init::BUF, l2);
        b.output("y", l3);
        let nl = b.finish().unwrap();
        let r = analyze(&nl, &DelayModel::unit());
        assert_eq!(r.critical_path_ns, 3.0);
        assert_eq!(r.worst_output, "y");
    }

    #[test]
    fn ignored_lut_inputs_do_not_constrain() {
        // Build a slow net, feed it into a LUT pin the INIT ignores.
        let mut b = NetlistBuilder::new("ignore");
        let a = b.inputs("a", 2);
        let slow1 = b.lut1(Init::BUF, a[1]);
        let slow2 = b.lut1(Init::BUF, slow1);
        // BUF depends only on I0 = a[0]; slow2 is tied to I3 and ignored.
        let z = b.constant(false);
        let y = b.lut6(Init::BUF, [a[0], z, z, slow2, z, z]);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let r = analyze(&nl, &DelayModel::unit());
        assert_eq!(r.critical_path_ns, 1.0, "slow pin must be ignored");
    }

    #[test]
    fn carry_chain_grows_with_length() {
        let model = DelayModel::virtex7();
        let mut widths = Vec::new();
        for w in [4usize, 8, 16] {
            let mut b = NetlistBuilder::new("add");
            let a = b.inputs("a", w);
            let c = b.inputs("b", w);
            let mut props = Vec::new();
            for i in 0..w {
                let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
                props.push(o6);
            }
            let zero = b.constant(false);
            let (sums, cout) = b.carry_chain(zero, &props, &a);
            b.output_bus("s", &sums);
            b.output("cout", cout);
            let nl = b.finish().unwrap();
            widths.push(analyze(&nl, &model).critical_path_ns);
        }
        assert!(widths[0] < widths[1] && widths[1] < widths[2]);
        // Carry chains are fast: doubling width adds only mux delays.
        assert!(widths[2] - widths[1] < 1.0);
    }

    #[test]
    fn fanout_increases_delay() {
        let model = DelayModel::virtex7();
        let build = |sinks: usize| {
            let mut b = NetlistBuilder::new("fan");
            let a = b.inputs("a", 1);
            let src = b.lut1(Init::BUF, a[0]);
            let mut last = src;
            for _ in 0..sinks {
                last = b.lut1(Init::BUF, src);
            }
            b.output("y", last);
            let nl = b.finish().unwrap();
            analyze(&nl, &model).critical_path_ns
        };
        assert!(build(8) > build(1));
    }

    #[test]
    fn report_display_mentions_path() {
        let mut b = NetlistBuilder::new("d");
        let a = b.inputs("a", 1);
        b.output("y", a[0]);
        let nl = b.finish().unwrap();
        let r = analyze(&nl, &DelayModel::virtex7());
        let s = r.to_string();
        assert!(s.contains("critical path"));
        assert!(s.contains("y[0]"));
    }
}
