//! Compiled bit-sliced netlist simulation.
//!
//! [`crate::sim::WideSim`] interprets the cell list on every pass and
//! evaluates each `LUT6_2` with a scalar 64-iteration per-lane loop.
//! This module removes both costs with a one-time compilation step:
//!
//! * **Mux-tree LUT kernels** — every LUT's INIT vector is expanded at
//!   compile time through a Shannon decomposition into a handful of
//!   whole-word bitwise operations (`(t1 & s) | (t0 & !s)` folded over
//!   the select inputs, with constant sub-tables pruned and common
//!   subexpressions shared), so one pass evaluates the LUT for *all*
//!   lanes at once instead of 64 iterations of 6 shifts each.
//! * **A dense instruction stream** — [`CompiledNetlist::compile`]
//!   flattens the netlist into a flat vector of [`Op`]s over
//!   slot-allocated value storage. Constants are broadcast once at
//!   simulator construction, every op overwrites its own slot, and no
//!   per-pass `O(nets)` clear remains.
//! * **Const-generic multi-word lane blocks** — [`CompiledSim<W>`]
//!   stores `[u64; W]` per slot, so a single propagate pass covers up
//!   to `64 * W` vectors (256 at the default sweep width).
//! * **Closed-form exhaustive sweeps** — when enumerating consecutive
//!   operand assignments, each input bit's lane word is either a fixed
//!   alternating pattern or a broadcast constant, computed in O(1) per
//!   word instead of transposing lane-major vectors bit by bit
//!   ([`CompiledSim::load_sweep`]).
//!
//! The per-net visibility of the interpreter is preserved: every net
//! maps to a slot (constants and aliases share slots), so toggle
//! counting ([`crate::power`]) and truth-table extraction read the
//! same values the interpretive simulator would have produced —
//! bit-identically, which the crate's tests assert across the whole
//! design roster.

use std::collections::HashMap;

use crate::fault::Fault;
use crate::netlist::{Cell, Driver};
use crate::{FabricError, NetId, Netlist};

/// Bitwise word operation of the compiled instruction stream.
///
/// `AndNot`/`OrNot` absorb the negations produced when a mux collapses
/// against a constant branch (`s ? t1 : 0`, `s ? 1 : t0`, …), keeping
/// the common case at one instruction per surviving mux level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKind {
    /// `dst = !a`
    Not,
    /// `dst = a & b`
    And,
    /// `dst = a & !b`
    AndNot,
    /// `dst = a | b`
    Or,
    /// `dst = a | !b`
    OrNot,
    /// `dst = a ^ b`
    Xor,
    /// `dst = c ? b : a` (2:1 mux, select in `c`)
    Mux,
}

/// One compiled instruction: a word-wide bitwise op into its own slot.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    dst: u32,
    a: u32,
    b: u32,
    c: u32,
}

/// Compile-time symbolic value: a known constant or a computed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    Zero,
    One,
    Slot(u32),
}

/// Slot of the all-zeros constant word.
const ZERO_SLOT: u32 = 0;
/// Slot of the all-ones constant word.
const ONE_SLOT: u32 = 1;

impl Sym {
    fn slot(self) -> u32 {
        match self {
            Sym::Zero => ZERO_SLOT,
            Sym::One => ONE_SLOT,
            Sym::Slot(s) => s,
        }
    }

    fn from_slot(s: u32) -> Self {
        match s {
            ZERO_SLOT => Sym::Zero,
            ONE_SLOT => Sym::One,
            s => Sym::Slot(s),
        }
    }
}

/// Expression builder with constant folding and hash-consing CSE.
struct Compiler {
    ops: Vec<Op>,
    next_slot: u32,
    cse: HashMap<(OpKind, u32, u32, u32), u32>,
    /// `neg[s] = t` when slot `t` holds the complement of slot `s`
    /// (recorded in both directions), enabling `!!x = x` and the
    /// mux-to-XOR rewrite.
    neg: HashMap<u32, u32>,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            ops: Vec::new(),
            next_slot: 2, // slots 0/1 are the constant words
            cse: HashMap::new(),
            neg: HashMap::new(),
        }
    }

    fn alloc(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    fn emit(&mut self, kind: OpKind, a: u32, b: u32, c: u32) -> Sym {
        // Canonical operand order for the commutative ops.
        let (a, b) = match kind {
            OpKind::And | OpKind::Or | OpKind::Xor => (a.min(b), a.max(b)),
            _ => (a, b),
        };
        let key = (kind, a, b, c);
        if let Some(&dst) = self.cse.get(&key) {
            return Sym::Slot(dst);
        }
        let dst = self.alloc();
        self.ops.push(Op { kind, dst, a, b, c });
        self.cse.insert(key, dst);
        if kind == OpKind::Not {
            self.neg.insert(a, dst);
            self.neg.insert(dst, a);
        }
        Sym::Slot(dst)
    }

    fn not(&mut self, x: Sym) -> Sym {
        match x {
            Sym::Zero => Sym::One,
            Sym::One => Sym::Zero,
            Sym::Slot(s) => match self.neg.get(&s) {
                Some(&n) => Sym::Slot(n),
                None => self.emit(OpKind::Not, s, 0, 0),
            },
        }
    }

    fn and(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::Zero, _) | (_, Sym::Zero) => Sym::Zero,
            (Sym::One, v) | (v, Sym::One) => v,
            (Sym::Slot(a), Sym::Slot(b)) if a == b => x,
            (Sym::Slot(a), Sym::Slot(b)) if self.neg.get(&a) == Some(&b) => Sym::Zero,
            (Sym::Slot(a), Sym::Slot(b)) => self.emit(OpKind::And, a, b, 0),
        }
    }

    fn or(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::One, _) | (_, Sym::One) => Sym::One,
            (Sym::Zero, v) | (v, Sym::Zero) => v,
            (Sym::Slot(a), Sym::Slot(b)) if a == b => x,
            (Sym::Slot(a), Sym::Slot(b)) if self.neg.get(&a) == Some(&b) => Sym::One,
            (Sym::Slot(a), Sym::Slot(b)) => self.emit(OpKind::Or, a, b, 0),
        }
    }

    fn xor(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::Zero, v) | (v, Sym::Zero) => v,
            (Sym::One, v) | (v, Sym::One) => self.not(v),
            (Sym::Slot(a), Sym::Slot(b)) if a == b => Sym::Zero,
            (Sym::Slot(a), Sym::Slot(b)) if self.neg.get(&a) == Some(&b) => Sym::One,
            (Sym::Slot(a), Sym::Slot(b)) => self.emit(OpKind::Xor, a, b, 0),
        }
    }

    /// `x & !y`
    fn and_not(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::Zero, _) | (_, Sym::One) => Sym::Zero,
            (v, Sym::Zero) => v,
            (Sym::One, v) => self.not(v),
            (Sym::Slot(a), Sym::Slot(b)) if a == b => Sym::Zero,
            (Sym::Slot(a), Sym::Slot(b)) if self.neg.get(&a) == Some(&b) => x,
            (Sym::Slot(a), Sym::Slot(b)) => self.emit(OpKind::AndNot, a, b, 0),
        }
    }

    /// `x | !y`
    fn or_not(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::One, _) | (_, Sym::Zero) => Sym::One,
            (v, Sym::One) => v,
            (Sym::Zero, v) => self.not(v),
            (Sym::Slot(a), Sym::Slot(b)) if a == b => Sym::One,
            (Sym::Slot(a), Sym::Slot(b)) if self.neg.get(&a) == Some(&b) => x,
            (Sym::Slot(a), Sym::Slot(b)) => self.emit(OpKind::OrNot, a, b, 0),
        }
    }

    /// `s ? t1 : t0`, folded against every constant/shared-operand case
    /// so only truly three-way muxes emit a `Mux` instruction.
    fn mux(&mut self, t0: Sym, t1: Sym, s: Sym) -> Sym {
        match s {
            Sym::Zero => return t0,
            Sym::One => return t1,
            Sym::Slot(_) => {}
        }
        if t0 == t1 {
            return t0;
        }
        match (t0, t1) {
            (Sym::Zero, Sym::One) => s,
            (Sym::One, Sym::Zero) => self.not(s),
            (Sym::Zero, t1) => self.and(t1, s),
            (t0, Sym::Zero) => self.and_not(t0, s),
            (Sym::One, t1) => self.or_not(t1, s),
            (t0, Sym::One) => self.or(t0, s),
            (Sym::Slot(a), Sym::Slot(b)) => {
                if a == s.slot() {
                    // s ? t1 : s  ==  s & t1
                    return self.and(t1, s);
                }
                if b == s.slot() {
                    // s ? s : t0  ==  s | t0
                    return self.or(t0, s);
                }
                if self.neg.get(&a) == Some(&b) {
                    // s ? !t0 : t0  ==  t0 ^ s
                    return self.xor(t0, s);
                }
                if self.neg.get(&a) == Some(&s.slot()) {
                    // s ? t1 : !s  ==  t1 | !s
                    return self.or_not(t1, s);
                }
                if self.neg.get(&b) == Some(&s.slot()) {
                    // s ? !s : t0  ==  t0 & !s
                    return self.and_not(t0, s);
                }
                self.emit(OpKind::Mux, a, b, s.slot())
            }
        }
    }

    /// Shannon-expands `level` inputs of a truth table starting at bit
    /// `offset`, with constant sub-tables short-circuited.
    fn lut_tree(&mut self, init: u64, ins: &[Sym; 6], level: u32, offset: u32) -> Sym {
        let width = 1u32 << level;
        let chunk = if width == 64 {
            init
        } else {
            (init >> offset) & ((1u64 << width) - 1)
        };
        if chunk == 0 {
            return Sym::Zero;
        }
        if width == 64 && chunk == u64::MAX || width < 64 && chunk == (1u64 << width) - 1 {
            return Sym::One;
        }
        let half = width / 2;
        let sel = ins[(level - 1) as usize];
        match sel {
            Sym::Zero => self.lut_tree(init, ins, level - 1, offset),
            Sym::One => self.lut_tree(init, ins, level - 1, offset + half),
            Sym::Slot(_) => {
                // Structural shortcuts on the half-tables themselves:
                // equal halves make the select a don't-care, and
                // complementary halves are an XOR with the select —
                // catching both before recursion avoids emitting the
                // inner negation a post-hoc mux rewrite would need.
                let half_mask = (1u64 << half) - 1;
                let lo = chunk & half_mask;
                let hi = (chunk >> half) & half_mask;
                if lo == hi {
                    return self.lut_tree(init, ins, level - 1, offset);
                }
                let t0 = self.lut_tree(init, ins, level - 1, offset);
                if hi == lo ^ half_mask {
                    return self.xor(t0, sel);
                }
                let t1 = self.lut_tree(init, ins, level - 1, offset + half);
                self.mux(t0, t1, sel)
            }
        }
    }
}

/// A netlist compiled to a flat bitwise instruction stream.
///
/// Compile once with [`CompiledNetlist::compile`], then instantiate any
/// number of [`CompiledSim`]s (e.g. one per worker thread) over it.
///
/// # Examples
///
/// ```
/// use axmul_fabric::compile::{CompiledNetlist, CompiledSim};
/// use axmul_fabric::{Init, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("xor");
/// let a = b.inputs("a", 1);
/// let c = b.inputs("b", 1);
/// let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
/// b.output("y", o6);
/// let nl = b.finish()?;
///
/// let prog = CompiledNetlist::compile(&nl);
/// let mut sim: CompiledSim<1> = prog.simulator();
/// let out = sim.eval(&[&[0, 0, 1, 1], &[0, 1, 0, 1]])?;
/// assert_eq!(out[0], vec![0, 1, 1, 0]);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    ops: Vec<Op>,
    slot_count: usize,
    /// Slot of every net (constants and aliases share slots; nets an
    /// unvalidated netlist leaves undriven read the zero slot, matching
    /// the interpreter's zero-initialized storage).
    net_src: Vec<u32>,
    /// Per input bus: the slot of each bit.
    inputs: Vec<Vec<u32>>,
    /// Per output bus: the slot of each bit.
    outputs: Vec<Vec<u32>>,
    /// All input-bit slots in combined-assignment order (bus 0 in the
    /// low bits), for [`CompiledSim::load_sweep`].
    sweep_slots: Vec<u32>,
}

impl CompiledNetlist {
    /// Compiles `netlist` into an instruction stream.
    #[must_use]
    pub fn compile(netlist: &Netlist) -> Self {
        Self::compile_with_faults(netlist, &[])
    }

    /// Compiles `netlist` with stuck-at faults baked in: every read of
    /// a faulty net — by a cell or an output — resolves to the stuck
    /// constant, exactly as [`crate::fault::eval_with_faults`] forces
    /// it, but at zero per-pass cost.
    #[must_use]
    pub fn compile_with_faults(netlist: &Netlist, faults: &[Fault]) -> Self {
        let fault_of: HashMap<usize, bool> =
            faults.iter().map(|f| (f.net.index(), f.stuck_at)).collect();
        let mut c = Compiler::new();
        let mut net_src = vec![ZERO_SLOT; netlist.net_count()];

        // Primary inputs get one slot per bit; constants bind to the
        // shared constant slots.
        let mut inputs: Vec<Vec<u32>> = Vec::with_capacity(netlist.input_buses().len());
        for (_, bits) in netlist.input_buses() {
            let mut bus = Vec::with_capacity(bits.len());
            for net in bits {
                let slot = c.alloc();
                net_src[net.index()] = slot;
                bus.push(slot);
            }
            inputs.push(bus);
        }
        for (net, d) in netlist.drivers().iter().enumerate() {
            if let Driver::Const(k) = d {
                net_src[net] = if *k { ONE_SLOT } else { ZERO_SLOT };
            }
        }

        let read = |net_src: &[u32], net: NetId| -> Sym {
            match fault_of.get(&net.index()) {
                Some(true) => Sym::One,
                Some(false) => Sym::Zero,
                None => Sym::from_slot(net_src[net.index()]),
            }
        };

        for cell in netlist.cells() {
            match cell {
                Cell::Lut {
                    init,
                    inputs: pins,
                    o6,
                    o5,
                } => {
                    let ins: [Sym; 6] = std::array::from_fn(|k| read(&net_src, pins[k]));
                    let v6 = c.lut_tree(init.raw(), &ins, 6, 0);
                    net_src[o6.index()] = v6.slot();
                    if let Some(o5) = o5 {
                        // O5 reads the lower half of the table: I5 tied low.
                        let v5 = c.lut_tree(init.raw(), &ins, 5, 0);
                        net_src[o5.index()] = v5.slot();
                    }
                }
                Cell::Carry4 { cin, s, di, o, co } => {
                    let mut carry = read(&net_src, *cin);
                    for stage in 0..4 {
                        let sv = read(&net_src, s[stage]);
                        let dv = read(&net_src, di[stage]);
                        if let Some(n) = o[stage] {
                            let sum = c.xor(sv, carry);
                            net_src[n.index()] = sum.slot();
                        }
                        // C[i+1] = S ? C[i] : DI
                        carry = c.mux(dv, carry, sv);
                        if let Some(n) = co[stage] {
                            net_src[n.index()] = carry.slot();
                        }
                    }
                }
            }
        }

        // A faulty net reads stuck everywhere, including at outputs and
        // for external per-net observers.
        for f in faults {
            net_src[f.net.index()] = if f.stuck_at { ONE_SLOT } else { ZERO_SLOT };
        }

        let outputs = netlist
            .output_buses()
            .iter()
            .map(|(_, bits)| bits.iter().map(|n| net_src[n.index()]).collect())
            .collect();
        let sweep_slots = inputs.iter().flatten().copied().collect();
        CompiledNetlist {
            ops: c.ops,
            slot_count: c.next_slot as usize,
            net_src,
            inputs,
            outputs,
            sweep_slots,
        }
    }

    /// Number of instructions in the compiled stream.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of value slots (constants + inputs + computed).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The value slot backing `net` — aliased and CSE-merged nets share
    /// a slot, so slot-level readouts (e.g. toggle counting) touch each
    /// distinct value exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the compiled netlist.
    #[must_use]
    pub fn net_slot(&self, net: NetId) -> u32 {
        self.net_src[net.index()]
    }

    /// Total combined input bits (all buses, bus 0 first) — the row
    /// count a packed stimulus must supply to [`CompiledSim::load_packed`].
    #[must_use]
    pub fn input_bit_count(&self) -> usize {
        self.sweep_slots.len()
    }

    /// Creates a fresh simulator over this program with `64 * W` lanes
    /// per pass.
    #[must_use]
    pub fn simulator<const W: usize>(&self) -> CompiledSim<'_, W> {
        CompiledSim::new(self)
    }

    /// Operand widths `(a_bits, b_bits)` of a two-input-bus netlist.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] unless the netlist has exactly two
    /// input buses.
    pub fn operand_widths(&self) -> Result<(u32, u32), FabricError> {
        if self.inputs.len() != 2 {
            return Err(FabricError::InputArity {
                expected: 2,
                got: self.inputs.len(),
            });
        }
        Ok((self.inputs[0].len() as u32, self.inputs[1].len() as u32))
    }

    /// Evaluates the combined-operand range `[start, end)` of a
    /// two-input-bus netlist, invoking `visit(a, b, outputs)` for each
    /// assignment in ascending order (`a` = bus 0 = the fast axis, i.e.
    /// the low bits of the combined index).
    ///
    /// `start` must be a multiple of 64 so sweep blocks stay aligned to
    /// the closed-form lane patterns; `end` is capped by the operand
    /// space. This is the backend of
    /// [`crate::sim::for_each_operand_pair`] and of the sharded
    /// parallel sweeps in `axmul-metrics`.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] unless the netlist has exactly two
    /// input buses.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs, if `start` is not
    /// 64-aligned, or if the range is out of bounds.
    pub fn for_each_operand_pair_in(
        &self,
        range: std::ops::Range<u64>,
        mut visit: impl FnMut(u64, u64, &[u64]),
    ) -> Result<(), FabricError> {
        let (a_bits, b_bits) = self.operand_widths()?;
        assert!(
            a_bits + b_bits <= 32,
            "exhaustive sweep over {a_bits}x{b_bits} operands is infeasible"
        );
        let total = 1u64 << (a_bits + b_bits);
        assert!(
            range.start <= range.end && range.end <= total,
            "operand range {range:?} exceeds the {total}-pair space"
        );
        assert!(
            range.start.is_multiple_of(64),
            "sweep ranges must start on a 64-lane boundary"
        );
        let a_mask = (1u64 << a_bits) - 1;
        let n_buses = self.outputs.len();
        let mut sim: CompiledSim<'_, SWEEP_WORDS> = self.simulator();
        let mut rows = vec![0u64; 64 * n_buses];
        let mut idx = range.start;
        while idx < range.end {
            sim.load_sweep(idx);
            sim.run();
            let block_lanes = ((range.end - idx) as usize).min(64 * SWEEP_WORDS);
            for wi in 0..block_lanes.div_ceil(64) {
                let lanes_here = (block_lanes - 64 * wi).min(64);
                let lane_mask = if lanes_here == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes_here) - 1
                };
                rows[..64 * n_buses].fill(0);
                // Scatter output bits lane-by-set-lane: for the sparse
                // high product bits this visits only the lanes where
                // the bit is actually 1.
                for (j, bus) in self.outputs.iter().enumerate() {
                    for (bit, &slot) in bus.iter().enumerate() {
                        let mut word = sim.values[slot as usize][wi] & lane_mask;
                        while word != 0 {
                            let l = word.trailing_zeros() as usize;
                            rows[l * n_buses + j] |= 1u64 << bit;
                            word &= word - 1;
                        }
                    }
                }
                let lane0 = idx + (64 * wi) as u64;
                for (l, row) in rows.chunks_exact(n_buses).take(lanes_here).enumerate() {
                    let v = lane0 + l as u64;
                    visit(v & a_mask, v >> a_bits, row);
                }
            }
            idx += block_lanes as u64;
        }
        Ok(())
    }
}

/// Lane-block width (in 64-lane words) used by the operand sweeps: 256
/// assignments per propagate pass, keeping slot storage L1-resident for
/// the roster's netlists.
pub const SWEEP_WORDS: usize = 4;

/// `PATTERNS[p]` holds bit `p` of the lane index for lanes `0..64` —
/// the value every 64-aligned sweep word takes for combined-input bit
/// positions below 6.
const PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A reusable multi-word bit-parallel executor over a [`CompiledNetlist`].
///
/// Each value slot holds `[u64; W]`: lane `l` lives in bit `l % 64` of
/// word `l / 64`, giving `64 * W` lanes per [`CompiledSim::run`]. The
/// two constant slots are broadcast once at construction; every
/// instruction overwrites its own slot, so no per-pass clearing is
/// needed.
#[derive(Debug)]
pub struct CompiledSim<'p, const W: usize> {
    prog: &'p CompiledNetlist,
    values: Vec<[u64; W]>,
}

impl<'p, const W: usize> CompiledSim<'p, W> {
    /// Lanes evaluated per pass.
    pub const LANES: usize = 64 * W;

    /// Creates a simulator with zeroed inputs.
    #[must_use]
    pub fn new(prog: &'p CompiledNetlist) -> Self {
        let mut values = vec![[0u64; W]; prog.slot_count];
        values[ONE_SLOT as usize] = [u64::MAX; W];
        CompiledSim { prog, values }
    }

    /// The program this simulator executes.
    #[must_use]
    pub fn program(&self) -> &'p CompiledNetlist {
        self.prog
    }

    /// Loads lane-major input vectors: `inputs[bus][lane]`, all buses
    /// supplying the same `1..=64 * W` lane count. Returns the lane
    /// count.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] if the bus count or lane counts are
    /// inconsistent with the netlist.
    pub fn load(&mut self, inputs: &[&[u64]]) -> Result<usize, FabricError> {
        if inputs.len() != self.prog.inputs.len() {
            return Err(FabricError::InputArity {
                expected: self.prog.inputs.len(),
                got: inputs.len(),
            });
        }
        let lanes = inputs.first().map_or(1, |b| b.len());
        if lanes == 0 || lanes > 64 * W || inputs.iter().any(|b| b.len() != lanes) {
            return Err(FabricError::InputArity {
                expected: lanes.clamp(1, 64 * W),
                got: inputs.iter().map(|b| b.len()).max().unwrap_or(0),
            });
        }
        for (bus, slots) in inputs.iter().zip(&self.prog.inputs) {
            for (bit, &slot) in slots.iter().enumerate() {
                let mut word = [0u64; W];
                for (lane, &val) in bus.iter().enumerate() {
                    word[lane / 64] |= ((val >> bit) & 1) << (lane % 64);
                }
                self.values[slot as usize] = word;
            }
        }
        Ok(lanes)
    }

    /// Loads `W` consecutive lane words per combined input bit from a
    /// pre-packed stimulus: `bits[k]` holds the packed words of input
    /// bit `k` (bus 0 in the low positions, step `l` in bit `l % 64` of
    /// word `l / 64`), and the pass covers words
    /// `word_offset..word_offset + W`. Words past the end of a row are
    /// zero-filled, so a trailing partial pass is well-defined — callers
    /// mask out the lanes beyond the stimulus length themselves.
    ///
    /// This is the no-transpose path for consecutive-step workloads
    /// (toggle counting): packing happens once per stimulus, and each
    /// pass is a straight `W`-word copy per input bit.
    ///
    /// # Errors
    ///
    /// [`FabricError::InputArity`] unless `bits` supplies exactly
    /// [`CompiledNetlist::input_bit_count`] rows.
    pub fn load_packed(&mut self, bits: &[&[u64]], word_offset: usize) -> Result<(), FabricError> {
        if bits.len() != self.prog.sweep_slots.len() {
            return Err(FabricError::InputArity {
                expected: self.prog.sweep_slots.len(),
                got: bits.len(),
            });
        }
        for (row, &slot) in bits.iter().zip(&self.prog.sweep_slots) {
            let mut word = [0u64; W];
            for (wi, w) in word.iter_mut().enumerate() {
                *w = row.get(word_offset + wi).copied().unwrap_or(0);
            }
            self.values[slot as usize] = word;
        }
        Ok(())
    }

    /// Loads the block of `64 * W` consecutive combined-input
    /// assignments starting at `base` (bus 0 in the low bits of the
    /// assignment index). Each input bit's lane word is a fixed
    /// alternating pattern (positions below 6) or a broadcast constant
    /// — O(1) per word, no per-lane transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `base` is a multiple of 64.
    pub fn load_sweep(&mut self, base: u64) {
        assert!(
            base.is_multiple_of(64),
            "sweep blocks must start on a 64-lane boundary"
        );
        for (p, &slot) in self.prog.sweep_slots.iter().enumerate() {
            let mut word = [0u64; W];
            for (wi, w) in word.iter_mut().enumerate() {
                let lane_base = base + 64 * wi as u64;
                *w = if p < 6 {
                    PATTERNS[p]
                } else if (lane_base >> p) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                };
            }
            self.values[slot as usize] = word;
        }
    }

    /// Executes the instruction stream over the loaded lanes.
    pub fn run(&mut self) {
        let vals = &mut self.values;
        for op in &self.prog.ops {
            // Operand words are copied out (≤ 64 bytes each) so the
            // destination write needs no split borrow.
            let a = vals[op.a as usize];
            let out: [u64; W] = match op.kind {
                OpKind::Not => std::array::from_fn(|i| !a[i]),
                OpKind::And => {
                    let b = vals[op.b as usize];
                    std::array::from_fn(|i| a[i] & b[i])
                }
                OpKind::AndNot => {
                    let b = vals[op.b as usize];
                    std::array::from_fn(|i| a[i] & !b[i])
                }
                OpKind::Or => {
                    let b = vals[op.b as usize];
                    std::array::from_fn(|i| a[i] | b[i])
                }
                OpKind::OrNot => {
                    let b = vals[op.b as usize];
                    std::array::from_fn(|i| a[i] | !b[i])
                }
                OpKind::Xor => {
                    let b = vals[op.b as usize];
                    std::array::from_fn(|i| a[i] ^ b[i])
                }
                OpKind::Mux => {
                    let b = vals[op.b as usize];
                    let c = vals[op.c as usize];
                    std::array::from_fn(|i| (b[i] & c[i]) | (a[i] & !c[i]))
                }
            };
            vals[op.dst as usize] = out;
        }
    }

    /// The lane words of `net` after [`CompiledSim::run`] — the same
    /// per-net visibility [`crate::sim::WideSim::eval_nets`] offers,
    /// read through the net-to-slot map.
    #[must_use]
    pub fn net_word(&self, net: NetId) -> [u64; W] {
        self.values[self.prog.net_src[net.index()] as usize]
    }

    /// The lane words of value slot `slot` after [`CompiledSim::run`].
    /// Combined with [`CompiledNetlist::net_slot`] this reads shared
    /// (aliased/CSE-merged) values once instead of once per net.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the program.
    #[must_use]
    pub fn slot_word(&self, slot: u32) -> [u64; W] {
        self.values[slot as usize]
    }

    /// The lane words of output bus `bus`, bit `bit`.
    #[must_use]
    pub fn output_word(&self, bus: usize, bit: usize) -> [u64; W] {
        self.values[self.prog.outputs[bus][bit] as usize]
    }

    /// Loads, runs, and gathers outputs as `outputs[bus][lane]` — the
    /// drop-in equivalent of [`crate::sim::WideSim::eval`] with
    /// `64 * W` lanes.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledSim::load`].
    pub fn eval(&mut self, inputs: &[&[u64]]) -> Result<Vec<Vec<u64>>, FabricError> {
        let lanes = self.load(inputs)?;
        self.run();
        Ok(self
            .prog
            .outputs
            .iter()
            .map(|bus| {
                (0..lanes)
                    .map(|lane| {
                        let mut val = 0u64;
                        for (bit, &slot) in bus.iter().enumerate() {
                            let w = self.values[slot as usize][lane / 64];
                            val |= ((w >> (lane % 64)) & 1) << bit;
                        }
                        val
                    })
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::eval_with_faults;
    use crate::sim::WideSim;
    use crate::{Init, NetlistBuilder};

    fn adder4() -> Netlist {
        let mut b = NetlistBuilder::new("add4");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let mut props = Vec::new();
        for i in 0..4 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &[a[0], a[1], a[2], a[3]]);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    #[test]
    fn compiled_matches_scalar_eval_exhaustively() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        let mut sim: CompiledSim<'_, 2> = prog.simulator();
        for a in 0..16u64 {
            for c in 0..16u64 {
                let out = sim.eval(&[&[a], &[c]]).unwrap();
                let scalar = nl.eval(&[a, c]).unwrap();
                assert_eq!(out[0][0], scalar[0], "{a}+{c}");
                assert_eq!(out[1][0], scalar[1], "{a}+{c}");
            }
        }
    }

    #[test]
    fn multi_word_lanes_cover_full_blocks() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        let mut sim: CompiledSim<'_, 4> = prog.simulator();
        let a: Vec<u64> = (0..256u64).map(|v| v & 15).collect();
        let c: Vec<u64> = (0..256u64).map(|v| v >> 4).collect();
        let out = sim.eval(&[&a, &c]).unwrap();
        for l in 0..256 {
            let sum = a[l] + c[l];
            assert_eq!(out[0][l], sum & 15, "lane {l}");
            assert_eq!(out[1][l], sum >> 4, "lane {l}");
        }
    }

    #[test]
    fn net_words_match_wide_sim_nets() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        let mut sim: CompiledSim<'_, 1> = prog.simulator();
        let mut wide = WideSim::new(&nl);
        let a: Vec<u64> = (0..64u64).map(|v| v % 16).collect();
        let c: Vec<u64> = (0..64u64).map(|v| (v / 16) % 16).collect();
        sim.load(&[&a, &c]).unwrap();
        sim.run();
        let nets = wide.eval_nets(&[&a, &c]).unwrap();
        for (net, &want) in nets.iter().enumerate() {
            assert_eq!(sim.net_word(NetId::new(net as u32))[0], want, "net {net}");
        }
    }

    #[test]
    fn load_packed_matches_explicit_transpose() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        assert_eq!(prog.input_bit_count(), 8);
        // 300 consecutive steps: a = step & 15, b = (step >> 4) & 15.
        let a: Vec<u64> = (0..300u64).map(|v| v & 15).collect();
        let c: Vec<u64> = (0..300u64).map(|v| (v >> 4) & 15).collect();
        // Pack: bits[k][w] holds step `64*w + sh` in bit `sh`.
        let words = 300usize.div_ceil(64);
        let mut bits = vec![vec![0u64; words]; 8];
        for step in 0..300usize {
            let (w, sh) = (step / 64, step % 64);
            for bit in 0..4 {
                bits[bit][w] |= ((a[step] >> bit) & 1) << sh;
                bits[4 + bit][w] |= ((c[step] >> bit) & 1) << sh;
            }
        }
        let rows: Vec<&[u64]> = bits.iter().map(Vec::as_slice).collect();
        let mut packed: CompiledSim<'_, 2> = prog.simulator();
        let mut lane: CompiledSim<'_, 2> = prog.simulator();
        for pass in 0..words.div_ceil(2) {
            packed.load_packed(&rows, pass * 2).unwrap();
            packed.run();
            let lo = pass * 128;
            let n = (300 - lo).min(128);
            lane.load(&[&a[lo..lo + n], &c[lo..lo + n]]).unwrap();
            lane.run();
            for net in 0..nl.net_count() {
                let id = NetId::new(net as u32);
                let got = packed.net_word(id);
                let want = lane.net_word(id);
                for (wi, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    let lanes_here = n.saturating_sub(wi * 64).min(64);
                    if lanes_here == 0 {
                        continue;
                    }
                    let mask = if lanes_here == 64 {
                        u64::MAX
                    } else {
                        (1u64 << lanes_here) - 1
                    };
                    assert_eq!(g & mask, w & mask, "pass {pass} net {net} word {wi}");
                }
                assert_eq!(
                    prog.net_slot(id) as usize,
                    prog.net_src[id.index()] as usize
                );
            }
        }
        // Wrong row count is rejected.
        assert!(packed.load_packed(&rows[..7], 0).is_err());
    }

    #[test]
    fn sweep_range_visits_in_order() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        let mut seen = Vec::new();
        prog.for_each_operand_pair_in(0..256, |a, b, out| {
            assert_eq!(out[0] | (out[1] << 4), a + b);
            seen.push((a, b));
        })
        .unwrap();
        assert_eq!(seen.len(), 256);
        for (v, &(a, b)) in seen.iter().enumerate() {
            assert_eq!(a, (v as u64) & 15);
            assert_eq!(b, (v as u64) >> 4);
        }
        // A 64-aligned sub-range visits exactly its slice.
        let mut sub = Vec::new();
        prog.for_each_operand_pair_in(64..192, |a, b, _| sub.push((a, b)))
            .unwrap();
        assert_eq!(sub.as_slice(), &seen[64..192]);
    }

    #[test]
    fn lut_kernel_matches_init_semantics_on_random_tables() {
        // Dense random INITs exercise the full mux tree; structured
        // ones exercise the folding rules.
        let tables = [
            0x8000_0000_0000_0001u64,
            0x6666_6666_6666_6666,
            0xFFFF_FFFF_0000_0000,
            0x0000_0000_FFFF_FFFF,
            0xDEAD_BEEF_CAFE_F00D,
            0x0123_4567_89AB_CDEF,
            u64::MAX,
            0,
            1,
        ];
        for raw in tables {
            let mut b = NetlistBuilder::new("lut");
            let x = b.inputs("x", 6);
            let (o6, o5) = b.lut6_2(Init::from_raw(raw), [x[0], x[1], x[2], x[3], x[4], x[5]]);
            b.output("o6", o6);
            b.output("o5", o5);
            let nl = b.finish().unwrap();
            let prog = CompiledNetlist::compile(&nl);
            let mut sim: CompiledSim<'_, 1> = prog.simulator();
            for v in 0..64u64 {
                let out = sim.eval(&[&[v]]).unwrap();
                let idx = v as u8;
                assert_eq!(
                    out[0][0] == 1,
                    Init::from_raw(raw).o6(idx),
                    "raw {raw:#x} v {v}"
                );
                assert_eq!(
                    out[1][0] == 1,
                    Init::from_raw(raw).o5(idx),
                    "raw {raw:#x} v {v}"
                );
            }
        }
    }

    #[test]
    fn constant_luts_compile_to_zero_ops() {
        let mut b = NetlistBuilder::new("k");
        let x = b.inputs("x", 2);
        let (o, _) = b.lut2(Init::from_raw(0), x[0], x[1]);
        b.output("y", o);
        let nl = b.finish().unwrap();
        let prog = CompiledNetlist::compile(&nl);
        assert_eq!(prog.op_count(), 0, "all-zero INIT folds to a constant");
        let mut sim: CompiledSim<'_, 1> = prog.simulator();
        assert_eq!(sim.eval(&[&[3]]).unwrap()[0], vec![0]);
    }

    #[test]
    fn cse_shares_identical_luts() {
        let mut b = NetlistBuilder::new("cse");
        let x = b.inputs("x", 2);
        let (p, _) = b.lut2(Init::XOR2, x[0], x[1]);
        let (q, _) = b.lut2(Init::XOR2, x[0], x[1]);
        b.output("p", p);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let prog = CompiledNetlist::compile(&nl);
        assert_eq!(prog.op_count(), 1, "identical LUTs share one xor op");
    }

    #[test]
    fn compiled_faults_match_eval_with_faults() {
        let nl = adder4();
        let fanouts = nl.fanouts();
        let sites: Vec<NetId> = (0..nl.net_count())
            .filter(|&n| fanouts[n] > 0)
            .map(|n| NetId::new(n as u32))
            .collect();
        for &site in &sites {
            for stuck in [false, true] {
                let fault = Fault {
                    net: site,
                    stuck_at: stuck,
                };
                let prog = CompiledNetlist::compile_with_faults(&nl, &[fault]);
                let mut sim: CompiledSim<'_, 1> = prog.simulator();
                for v in (0..256u64).step_by(7) {
                    let (a, c) = (v & 15, v >> 4);
                    let out = sim.eval(&[&[a], &[c]]).unwrap();
                    let want = eval_with_faults(&nl, &[a, c], &[fault]).unwrap();
                    assert_eq!(out[0][0], want[0], "fault {fault:?} a={a} b={c}");
                    assert_eq!(out[1][0], want[1], "fault {fault:?} a={a} b={c}");
                }
            }
        }
    }

    #[test]
    fn load_validates_arity_and_lane_counts() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        let mut sim: CompiledSim<'_, 1> = prog.simulator();
        assert!(sim.eval(&[&[1], &[1, 2]]).is_err(), "ragged lanes");
        assert!(sim.eval(&[&[1]]).is_err(), "missing bus");
        let empty: &[u64] = &[];
        assert!(sim.eval(&[empty, empty]).is_err(), "zero lanes");
        let too_many = vec![0u64; 65];
        assert!(
            sim.eval(&[&too_many, &too_many]).is_err(),
            "W=1 caps at 64 lanes"
        );
        let mut sim2: CompiledSim<'_, 2> = prog.simulator();
        assert!(sim2.eval(&[&too_many, &too_many]).is_ok(), "W=2 takes 128");
    }

    #[test]
    fn sweep_loader_matches_explicit_transpose() {
        let nl = adder4();
        let prog = CompiledNetlist::compile(&nl);
        let mut swept: CompiledSim<'_, 2> = prog.simulator();
        let mut loaded: CompiledSim<'_, 2> = prog.simulator();
        for base in [0u64, 128] {
            swept.load_sweep(base);
            swept.run();
            let a: Vec<u64> = (0..128).map(|l| (base + l) & 15).collect();
            let c: Vec<u64> = (0..128).map(|l| ((base + l) >> 4) & 15).collect();
            loaded.load(&[&a, &c]).unwrap();
            loaded.run();
            for net in 0..nl.net_count() {
                let id = NetId::new(net as u32);
                assert_eq!(swept.net_word(id), loaded.net_word(id), "net {net}");
            }
        }
    }
}
