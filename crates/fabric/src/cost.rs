//! Device-level resource and cost modeling.
//!
//! The paper's Table 1 motivates LUT-based multipliers by implementing
//! a Reed-Solomon encoder and a JPEG encoder with DSP blocks enabled and
//! disabled: the DSP variant of the Reed-Solomon encoder is *slower*
//! (routing to the allocated DSP columns dominates) and the JPEG encoder
//! consumes 56 % of the device's DSP blocks. This module provides the
//! device inventory and the placement/routing penalty model that the
//! `axmul-apps` crate maps those applications through.

use std::fmt;
use std::time::{Duration, Instant};

use crate::area::AreaReport;
use crate::compile::CompiledNetlist;
use crate::power::{measure_packed, EnergyModel, PackedStimulus};
use crate::timing::{analyze, DelayModel};
use crate::{FabricError, Netlist};

/// Static resource inventory of an FPGA device.
///
/// # Examples
///
/// ```
/// use axmul_fabric::cost::Device;
/// let d = Device::virtex7_7vx330t();
/// assert_eq!(d.dsp_blocks, 1120);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Marketing name.
    pub name: String,
    /// Number of 6-input LUTs.
    pub luts: u32,
    /// Number of DSP48-style blocks.
    pub dsp_blocks: u32,
    /// Number of DSP columns (placement granularity for the routing
    /// penalty model).
    pub dsp_columns: u32,
}

impl Device {
    /// The Virtex-7 7VX330T used throughout the paper:
    /// 204 000 LUTs, 1 120 DSP48E1 slices.
    #[must_use]
    pub fn virtex7_7vx330t() -> Self {
        Device {
            name: "xc7vx330t".to_string(),
            luts: 204_000,
            dsp_blocks: 1_120,
            dsp_columns: 14,
        }
    }

    /// Fraction of DSP blocks consumed by a design using `used` blocks.
    #[must_use]
    pub fn dsp_utilization(&self, used: u32) -> f64 {
        f64::from(used) / f64::from(self.dsp_blocks)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} LUTs, {} DSPs)",
            self.name, self.luts, self.dsp_blocks
        )
    }
}

/// How a multiplication inside an application datapath is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultImpl {
    /// Mapped onto a DSP48-style hard block.
    Dsp,
    /// Mapped onto soft LUT logic.
    Lut,
}

/// Resource/latency summary of one application implementation, i.e. one
/// cell of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppCost {
    /// Critical path delay in nanoseconds.
    pub critical_path_ns: f64,
    /// Occupied LUTs.
    pub luts: u32,
    /// Occupied DSP blocks.
    pub dsp_blocks: u32,
}

impl fmt::Display for AppCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ns, {} LUTs, {} DSPs",
            self.critical_path_ns, self.luts, self.dsp_blocks
        )
    }
}

/// Placement/routing cost model for mapping datapaths onto a [`Device`].
///
/// The key effect modeled (observed in Table 1 and in Kuon & Rose's
/// FPGA/ASIC gap study) is that hard blocks live in fixed columns:
/// reaching them costs general routing that grows with how many columns
/// the design must spread across, while LUT logic packs next to its
/// consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Target device.
    pub device: Device,
    /// Combinational delay through a DSP48 multiplier (ns).
    pub t_dsp_mult: f64,
    /// Base routing delay to reach the nearest DSP column (ns).
    pub t_dsp_route_base: f64,
    /// Extra routing delay per additional DSP column spanned (ns).
    pub t_dsp_route_per_column: f64,
    /// DSP blocks per column before spilling to the next column.
    pub dsps_per_column: u32,
}

impl CostModel {
    /// Cost model for the paper's 7VX330T device.
    #[must_use]
    pub fn virtex7() -> Self {
        let device = Device::virtex7_7vx330t();
        let dsps_per_column = device.dsp_blocks / device.dsp_columns;
        CostModel {
            device,
            t_dsp_mult: 2.7,
            t_dsp_route_base: 0.9,
            t_dsp_route_per_column: 0.25,
            dsps_per_column,
        }
    }

    /// Delay of a DSP-mapped multiplier when the design uses
    /// `used_dsps` blocks in total: the more columns the design spans,
    /// the worse the worst-case route to a DSP becomes.
    #[must_use]
    pub fn dsp_mult_delay(&self, used_dsps: u32) -> f64 {
        let columns = used_dsps.div_ceil(self.dsps_per_column.max(1));
        self.t_dsp_mult
            + self.t_dsp_route_base
            + self.t_dsp_route_per_column * f64::from(columns.saturating_sub(1))
    }

    /// Whether a request for `needed` DSP blocks fits the device.
    #[must_use]
    pub fn dsps_fit(&self, needed: u32) -> bool {
        needed <= self.device.dsp_blocks
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::virtex7()
    }
}

/// One-stop hardware-cost summary of a netlist: area, static timing and
/// switching energy/EDP in a single record. This is the unit of
/// characterization the `axmul-dse` explorer memoizes per sub-block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistCost {
    /// LUT/CARRY4/slice accounting ([`AreaReport::of`]).
    pub area: AreaReport,
    /// Worst-case input-to-output delay in ns ([`crate::timing::analyze`]).
    pub critical_path_ns: f64,
    /// Average weighted toggle energy per operation under the
    /// characterizer's stimulus.
    pub energy_per_op: f64,
    /// Energy-delay product: `energy_per_op * critical_path_ns`.
    pub edp: f64,
}

impl fmt::Display for NetlistCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {:.3} ns, EDP {:.3}",
            self.area.luts, self.critical_path_ns, self.edp
        )
    }
}

/// Bundled delay/energy models plus a stimulus policy, so callers can
/// characterize many netlists under identical conditions with one call
/// each.
///
/// # Examples
///
/// ```
/// use axmul_fabric::cost::Characterizer;
/// use axmul_fabric::{Init, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("x");
/// let a = b.inputs("a", 4);
/// let c = b.inputs("b", 4);
/// let (o6, _) = b.lut2(Init::XOR2, a[0], c[0]);
/// b.output("y", o6);
/// let nl = b.finish()?;
/// let cost = Characterizer::virtex7().characterize(&nl)?;
/// assert_eq!(cost.area.luts, 1);
/// assert!(cost.edp > 0.0);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Characterizer {
    /// Delay constants for STA.
    pub delay: DelayModel,
    /// Toggle-energy constants.
    pub energy: EnergyModel,
    /// Number of random stimulus vectors for the energy measurement.
    pub stimulus_len: usize,
    /// Seed of the deterministic stimulus stream.
    pub stimulus_seed: u64,
    /// Worker threads for the energy stimulus sweep. The result is
    /// bit-identical for every value (integer toggle counts merge in
    /// fixed order); raise it for very long stimulus streams.
    pub energy_workers: usize,
}

impl Characterizer {
    /// Virtex-7 calibrated models with a 1024-vector stimulus.
    #[must_use]
    pub fn virtex7() -> Self {
        Characterizer {
            delay: DelayModel::virtex7(),
            energy: EnergyModel::virtex7(),
            stimulus_len: 1024,
            stimulus_seed: 0xDAC18 ^ 0x5EED,
            energy_workers: 1,
        }
    }

    /// Characterizes `netlist`: area + STA + energy/EDP in one record.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the energy measurement.
    pub fn characterize(&self, netlist: &Netlist) -> Result<NetlistCost, FabricError> {
        self.characterize_with(netlist, &CompiledNetlist::compile(netlist))
    }

    /// [`Characterizer::characterize`] over an already-compiled
    /// program, for callers that also sweep the same netlist (e.g. the
    /// DSE characterization cache) and want to compile it exactly once.
    ///
    /// `prog` must be the fault-free compilation of `netlist`.
    ///
    /// # Errors
    ///
    /// Same as [`Characterizer::characterize`].
    pub fn characterize_with(
        &self,
        netlist: &Netlist,
        prog: &CompiledNetlist,
    ) -> Result<NetlistCost, FabricError> {
        self.characterize_timed(netlist, prog).map(|(cost, _)| cost)
    }

    /// [`Characterizer::characterize_with`] that also reports where the
    /// time went (STA vs energy sweep), so callers like the DSE cache
    /// can expose a wall-clock split without re-profiling.
    ///
    /// STA runs exactly once: its `critical_path_ns` feeds both the
    /// cost record and the EDP inside the energy measurement.
    ///
    /// # Errors
    ///
    /// Same as [`Characterizer::characterize`].
    pub fn characterize_timed(
        &self,
        netlist: &Netlist,
        prog: &CompiledNetlist,
    ) -> Result<(NetlistCost, CharTimings), FabricError> {
        let area = AreaReport::of(netlist);
        let t0 = Instant::now();
        let timing = analyze(netlist, &self.delay);
        let t1 = Instant::now();
        let stim = PackedStimulus::uniform(netlist, self.stimulus_len, self.stimulus_seed);
        let power = measure_packed(
            netlist,
            prog,
            &self.energy,
            timing.critical_path_ns,
            &stim,
            self.energy_workers,
        )?;
        let t2 = Instant::now();
        let cost = NetlistCost {
            area,
            critical_path_ns: timing.critical_path_ns,
            energy_per_op: power.energy_per_op,
            edp: power.edp,
        };
        let timings = CharTimings {
            sta: t1 - t0,
            energy: t2 - t1,
        };
        Ok((cost, timings))
    }
}

/// Wall-clock split of one characterization (see
/// [`Characterizer::characterize_timed`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CharTimings {
    /// Time in static timing analysis.
    pub sta: Duration,
    /// Time in the packed-stimulus energy sweep.
    pub energy: Duration,
}

impl Default for Characterizer {
    fn default() -> Self {
        Characterizer::virtex7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_inventory_matches_datasheet() {
        let d = Device::virtex7_7vx330t();
        assert_eq!(d.luts, 204_000);
        assert_eq!(d.dsp_blocks, 1_120);
        // Table 1: JPEG uses 631 DSPs = 56% of the device.
        let util = d.dsp_utilization(631);
        assert!((util - 0.5634).abs() < 0.001);
    }

    #[test]
    fn dsp_delay_grows_with_usage() {
        let m = CostModel::virtex7();
        let few = m.dsp_mult_delay(10);
        let many = m.dsp_mult_delay(631);
        assert!(many > few, "spanning more columns must cost routing");
        assert!(m.dsp_mult_delay(1) >= m.t_dsp_mult);
    }

    #[test]
    fn fit_check() {
        let m = CostModel::virtex7();
        assert!(m.dsps_fit(1120));
        assert!(!m.dsps_fit(1121));
    }

    #[test]
    fn characterizer_is_deterministic_and_consistent() {
        use crate::{Init, NetlistBuilder};
        let mut b = NetlistBuilder::new("pair");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let (x, _) = b.lut2(Init::XOR2, a[0], c[0]);
        let (y, _) = b.lut2(Init::AND2, a[1], c[1]);
        let (z, _) = b.lut2(Init::XOR2, x, y);
        b.output("y", z);
        let nl = b.finish().unwrap();

        let ch = Characterizer::virtex7();
        let one = ch.characterize(&nl).unwrap();
        let two = ch.characterize(&nl).unwrap();
        assert_eq!(one, two, "same models + seed must reproduce exactly");
        assert_eq!(one.area.luts, 3);
        assert!(one.critical_path_ns > 0.0);
        assert!(
            (one.edp - one.energy_per_op * one.critical_path_ns).abs() < 1e-12,
            "EDP must be the product of its factors"
        );
        assert!(one.to_string().contains("3 LUTs"));
    }

    #[test]
    fn characterizer_matches_piecewise_queries() {
        use crate::area::AreaReport;
        use crate::timing::{analyze, DelayModel};
        use crate::{Init, NetlistBuilder};
        let mut b = NetlistBuilder::new("w");
        let a = b.inputs("a", 2);
        let (o6, _) = b.lut2(Init::AND2, a[0], a[1]);
        b.output("y", o6);
        let nl = b.finish().unwrap();
        let cost = Characterizer::virtex7().characterize(&nl).unwrap();
        assert_eq!(cost.area, AreaReport::of(&nl));
        assert_eq!(
            cost.critical_path_ns,
            analyze(&nl, &DelayModel::virtex7()).critical_path_ns
        );
    }

    #[test]
    fn display_formats() {
        let d = Device::virtex7_7vx330t();
        assert!(d.to_string().contains("xc7vx330t"));
        let c = AppCost {
            critical_path_ns: 5.115,
            luts: 2826,
            dsp_blocks: 22,
        };
        assert_eq!(c.to_string(), "5.115 ns, 2826 LUTs, 22 DSPs");
    }
}
