//! Area accounting in the paper's units: occupied LUTs (primary metric),
//! `CARRY4` blocks, and a slice-packing estimate.

use std::fmt;

use crate::netlist::{Cell, Driver};
use crate::Netlist;

/// Area summary of a netlist.
///
/// The paper reports area exclusively in LUTs (its Table 4 and Figs. 7,
/// 9); `carry4s` and `slices` are provided for completeness since carry
/// chains constrain slice packing on the real device.
///
/// # Examples
///
/// ```
/// use axmul_fabric::{Init, NetlistBuilder, area::AreaReport};
///
/// let mut b = NetlistBuilder::new("n");
/// let a = b.inputs("a", 2);
/// let (o6, _) = b.lut2(Init::AND2, a[0], a[1]);
/// b.output("y", o6);
/// let nl = b.finish()?;
/// let area = AreaReport::of(&nl);
/// assert_eq!(area.luts, 1);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AreaReport {
    /// Number of LUT6 cells (each `LUT6_2` counts once, fractured or not).
    pub luts: usize,
    /// Number of `CARRY4` primitives.
    pub carry4s: usize,
    /// LUT sites stranded by partially-used `CARRY4` stages: a carry
    /// chain claims a whole slice column, so unused chain stages make
    /// their LUT positions unusable for other logic. The paper counts
    /// these in its "16 LUTs (2 LUTs wasted by the second carry chain)"
    /// remark about the §3.2 reference design.
    pub wasted_sites: usize,
    /// Cell output nets (`O6`, `O5`, carry sums and carry-outs) that
    /// drive nothing: no cell pin counts them per [`Netlist::fanouts`]
    /// and they are not primary outputs. A dead `O5` is unused
    /// fracturable capacity, a dead final carry-out is routine; a dead
    /// `O6` is logic the netlist pays area for without using.
    pub dead_outputs: usize,
    /// Connected LUT input pins carrying a *non-constant* net that the
    /// truth table provably ignores ([`crate::Init::depends_on`]):
    /// routed wires that cannot influence the LUT. Constant ties used
    /// for packing (e.g. `I5 = 1`) are excluded. The lint dead-logic
    /// pass reports the same pins cell-by-cell (refined by output
    /// liveness: a pin only the dead half of a fractured LUT reads is
    /// an `ignored-pin` there but not here).
    pub ignored_pins: usize,
}

impl AreaReport {
    /// Computes the area of a netlist.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        let wasted_sites = netlist
            .cells()
            .iter()
            .filter_map(|c| match c {
                Cell::Carry4 { o, co, .. } => Some(
                    (0..4)
                        .filter(|&i| o[i].is_none() && co[i].is_none())
                        .count(),
                ),
                Cell::Lut { .. } => None,
            })
            .sum();
        let fanouts = netlist.fanouts();
        let dead = |net: crate::NetId| usize::from(fanouts[net.index()] == 0);
        let mut dead_outputs = 0;
        let mut ignored_pins = 0;
        for cell in netlist.cells() {
            match cell {
                Cell::Lut {
                    init,
                    inputs,
                    o6,
                    o5,
                } => {
                    dead_outputs += dead(*o6) + o5.map_or(0, dead);
                    for (i, n) in inputs.iter().enumerate() {
                        let tied = matches!(netlist.drivers()[n.index()], Driver::Const(_));
                        if !tied && !init.depends_on(i as u8) {
                            ignored_pins += 1;
                        }
                    }
                }
                Cell::Carry4 { o, co, .. } => {
                    dead_outputs += o
                        .iter()
                        .chain(co.iter())
                        .filter_map(|n| n.map(dead))
                        .sum::<usize>();
                }
            }
        }
        AreaReport {
            luts: netlist.lut_count(),
            carry4s: netlist.carry4_count(),
            wasted_sites,
            dead_outputs,
            ignored_pins,
        }
    }

    /// LUTs plus stranded sites — the figure a place-and-route report
    /// would show as occupied.
    #[must_use]
    pub fn occupied_luts(&self) -> usize {
        self.luts + self.wasted_sites
    }

    /// Lower-bound slice estimate: a 7-series slice holds 4 LUTs and one
    /// `CARRY4`, so the binding constraint is whichever is larger.
    #[must_use]
    pub fn slices(&self) -> usize {
        (self.luts.div_ceil(4)).max(self.carry4s)
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} CARRY4s (>= {} slices)",
            self.luts,
            self.carry4s,
            self.slices()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, NetlistBuilder};

    #[test]
    fn counts_luts_and_carries() {
        let mut b = NetlistBuilder::new("n");
        let a = b.inputs("a", 4);
        let mut props = Vec::new();
        for i in 0..4 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], a[(i + 1) % 4]);
            props.push(o6);
        }
        let z = b.constant(false);
        let (s, _) = b.carry_chain(z, &props, &a);
        b.output_bus("s", &s);
        let nl = b.finish().unwrap();
        let area = AreaReport::of(&nl);
        assert_eq!(area.luts, 4);
        assert_eq!(area.carry4s, 1);
        assert_eq!(area.slices(), 1);
    }

    #[test]
    fn slice_estimate_binds_on_carries() {
        let r = AreaReport {
            luts: 2,
            carry4s: 3,
            ..AreaReport::default()
        };
        assert_eq!(r.slices(), 3);
        let r = AreaReport {
            luts: 9,
            carry4s: 1,
            ..AreaReport::default()
        };
        assert_eq!(r.slices(), 3);
    }

    #[test]
    fn partially_used_chain_strands_sites() {
        // A 6-stage chain = two CARRY4s; the second uses 2 of 4 stages.
        let mut b = NetlistBuilder::new("n");
        let a = b.inputs("a", 6);
        let c = b.inputs("b", 6);
        let mut props = Vec::new();
        for i in 0..6 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let z = b.constant(false);
        let (s, _) = b.carry_chain(z, &props, &a);
        b.output_bus("s", &s);
        let nl = b.finish().unwrap();
        let area = AreaReport::of(&nl);
        assert_eq!(area.wasted_sites, 2);
        assert_eq!(area.occupied_luts(), 8);
    }

    #[test]
    fn dead_outputs_and_ignored_pins_are_counted() {
        let mut b = NetlistBuilder::new("n");
        let a = b.inputs("a", 3);
        // lut2 allocates O5 that nothing uses -> one dead output. XOR2
        // ignores I2..I5, but only a[2] is a *non-constant* ignored pin.
        let z = b.constant(false);
        let (o6, _o5) = b.lut6_2(Init::XOR2, [a[0], a[1], a[2], z, z, z]);
        b.output("y", o6);
        let nl = b.finish().unwrap();
        let area = AreaReport::of(&nl);
        assert_eq!(area.dead_outputs, 1, "unused O5");
        assert_eq!(area.ignored_pins, 1, "a[2] routed but ignored");

        // A clean netlist: no dead outputs, no ignored pins.
        let mut b = NetlistBuilder::new("clean");
        let a = b.inputs("a", 2);
        let z = b.constant(false);
        let o6 = b.lut6(Init::XOR2, [a[0], a[1], z, z, z, z]);
        b.output("y", o6);
        let nl = b.finish().unwrap();
        let area = AreaReport::of(&nl);
        assert_eq!(area.dead_outputs, 0);
        assert_eq!(area.ignored_pins, 0);
    }

    #[test]
    fn display_is_informative() {
        let r = AreaReport {
            luts: 12,
            carry4s: 2,
            ..AreaReport::default()
        };
        assert_eq!(r.to_string(), "12 LUTs, 2 CARRY4s (>= 3 slices)");
    }
}
