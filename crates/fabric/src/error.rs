use std::fmt;

/// Error type for all fallible fabric operations.
///
/// Covers netlist construction errors (dangling nets, double drivers),
/// elaboration errors (combinational cycles), and simulation errors
/// (wrong input arity).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// A net is referenced as a cell input or primary output but has no
    /// driver (no cell output, primary input, or constant drives it).
    UndrivenNet {
        /// The offending net.
        net: u32,
        /// Netlist name, for diagnostics.
        netlist: String,
    },
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// The offending net.
        net: u32,
    },
    /// The netlist contains a combinational cycle through the listed net.
    CombinationalCycle {
        /// A net on the cycle.
        net: u32,
    },
    /// `eval` was called with the wrong number of primary-input words.
    InputArity {
        /// Number of primary inputs the netlist declares.
        expected: usize,
        /// Number of input words supplied by the caller.
        got: usize,
    },
    /// An INIT literal could not be parsed as a 64-bit hex value.
    ParseInit {
        /// The rejected literal.
        literal: String,
    },
    /// A port name was declared twice on the same netlist.
    DuplicatePort {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UndrivenNet { net, netlist } => {
                write!(f, "net {net} in netlist `{netlist}` has no driver")
            }
            FabricError::MultipleDrivers { net } => {
                write!(f, "net {net} is driven by more than one source")
            }
            FabricError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net}")
            }
            FabricError::InputArity { expected, got } => {
                write!(f, "expected {expected} primary-input values, got {got}")
            }
            FabricError::ParseInit { literal } => {
                write!(f, "invalid INIT literal `{literal}`")
            }
            FabricError::DuplicatePort { name } => {
                write!(f, "duplicate port name `{name}`")
            }
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = FabricError::UndrivenNet {
            net: 7,
            netlist: "m".into(),
        };
        assert_eq!(e.to_string(), "net 7 in netlist `m` has no driver");
        let e = FabricError::InputArity {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricError>();
    }
}
