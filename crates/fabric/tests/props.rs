//! Property-based tests of the fabric model's core invariants.

use axmul_fabric::sim::WideSim;
use axmul_fabric::timing::{analyze, DelayModel};
use axmul_fabric::{Init, NetId, NetlistBuilder};
use proptest::prelude::*;

/// Builds a random DAG of LUTs over `n_inputs` primary inputs, driven
/// by a seed list of (init, pin choices).
fn random_netlist(n_inputs: usize, luts: &[(u64, [u8; 6])]) -> axmul_fabric::Netlist {
    let mut b = NetlistBuilder::new("random");
    let inputs = b.inputs("x", n_inputs);
    let mut pool: Vec<NetId> = inputs;
    for (raw, pins) in luts {
        let ins: [NetId; 6] = std::array::from_fn(|k| pool[pins[k] as usize % pool.len()]);
        let o6 = b.lut6(Init::from_raw(*raw), ins);
        pool.push(o6);
    }
    let last = *pool.last().expect("non-empty");
    b.output("y", last);
    // Also expose a mid net to exercise multi-output evaluation.
    b.output("mid", pool[pool.len() / 2]);
    b.finish().expect("well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 64-lane bit-parallel simulation agrees with scalar simulation on
    /// arbitrary LUT networks and inputs.
    #[test]
    fn wide_sim_equals_scalar(
        luts in prop::collection::vec((any::<u64>(), any::<[u8; 6]>()), 1..20),
        stim in prop::collection::vec(0u64..256, 1..64),
    ) {
        let nl = random_netlist(8, &luts);
        let mut sim = WideSim::new(&nl);
        let lanes: Vec<u64> = stim.clone();
        let wide = sim.eval(&[&lanes]).unwrap();
        for (lane, &value) in stim.iter().enumerate() {
            let scalar = nl.eval(&[value]).unwrap();
            prop_assert_eq!(wide[0][lane], scalar[0], "lane {}", lane);
            prop_assert_eq!(wide[1][lane], scalar[1], "lane {}", lane);
        }
    }

    /// The generic carry chain computes addition for any width and any
    /// operand values.
    #[test]
    fn carry_chain_adds(width in 1usize..24, a in any::<u64>(), c in any::<u64>()) {
        let mask = if width >= 64 { u64::MAX } else { (1 << width) - 1 };
        let (a, c) = (a & mask, c & mask);
        let mut b = NetlistBuilder::new("add");
        let x = b.inputs("a", width);
        let y = b.inputs("b", width);
        let mut props = Vec::new();
        for i in 0..width {
            let (o6, _) = b.lut2(Init::XOR2, x[i], y[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &x);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        let nl = b.finish().unwrap();
        let out = nl.eval(&[a, c]).unwrap();
        prop_assert_eq!(out[0] | (out[1] << width), a + c);
    }

    /// Flattening a sub-netlist with `instantiate` preserves function.
    #[test]
    fn instantiate_preserves_function(
        luts in prop::collection::vec((any::<u64>(), any::<[u8; 6]>()), 1..10),
        value in 0u64..256,
    ) {
        let sub = random_netlist(8, &luts);
        let mut b = NetlistBuilder::new("outer");
        let x = b.inputs("x", 8);
        let outs = b.instantiate(&sub, &[&x]);
        b.output("y", outs[0][0]);
        b.output("mid", outs[1][0]);
        let outer = b.finish().unwrap();
        prop_assert_eq!(outer.eval(&[value]).unwrap(), sub.eval(&[value]).unwrap());
    }

    /// Adding a LUT level to the critical output never reduces the
    /// critical path.
    #[test]
    fn sta_monotone_in_depth(levels in 1usize..12) {
        let build = |n: usize| {
            let mut b = NetlistBuilder::new("chain");
            let x = b.inputs("x", 1);
            let mut cur = x[0];
            for _ in 0..n {
                cur = b.lut1(Init::BUF, cur);
            }
            b.output("y", cur);
            b.finish().unwrap()
        };
        let model = DelayModel::virtex7();
        let shallow = analyze(&build(levels), &model).critical_path_ns;
        let deep = analyze(&build(levels + 1), &model).critical_path_ns;
        prop_assert!(deep > shallow);
    }

    /// INIT display/parse round-trips for arbitrary truth tables.
    #[test]
    fn init_roundtrip(raw in any::<u64>()) {
        let init = Init::from_raw(raw);
        let parsed: Init = init.to_string().parse().unwrap();
        prop_assert_eq!(parsed, init);
        // O6 agrees with the table everywhere; O5 with the lower half.
        for idx in 0..64u8 {
            prop_assert_eq!(init.o6(idx), raw >> idx & 1 == 1);
        }
        for idx in 0..32u8 {
            prop_assert_eq!(init.o5(idx), raw >> idx & 1 == 1);
            prop_assert_eq!(init.o5(idx | 0x20), init.o5(idx));
        }
    }

    /// `depends_on` is sound: if an input is reported as ignored,
    /// flipping it never changes the output.
    #[test]
    fn depends_on_sound(raw in any::<u64>(), idx in 0u8..64) {
        let init = Init::from_raw(raw);
        for pin in 0..6u8 {
            if !init.depends_on(pin) {
                prop_assert_eq!(init.o6(idx), init.o6(idx ^ (1 << pin)));
            }
        }
    }
}
