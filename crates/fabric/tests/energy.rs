//! Property-based bit-identity tests of the packed wide-lane energy
//! path against the scalar interpretive reference.
//!
//! The wide path packs the stimulus into lane words, counts toggles as
//! integer popcounts per pass (optionally sharded across workers), and
//! applies the float weights once at the end — so its [`EnergyReport`]
//! must be *bit-identical* to [`measure_reference`]'s step-at-a-time
//! count for any stimulus length (straddling the 64-step word and
//! 256-step pass boundaries), any netlist shape, and any worker count.

use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::power::{
    measure_packed, measure_reference, measure_with, uniform_stimulus, EnergyModel, EnergyReport,
    PackedStimulus,
};
use axmul_fabric::timing::{analyze, DelayModel};
use axmul_fabric::{Init, NetId, NetlistBuilder};
use proptest::prelude::*;

/// Builds a random DAG of LUTs over `n_inputs` primary inputs, driven
/// by a seed list of (init, pin choices) — the same generator shape as
/// the fabric's core property tests.
fn random_netlist(n_inputs: usize, luts: &[(u64, [u8; 6])]) -> axmul_fabric::Netlist {
    let mut b = NetlistBuilder::new("random");
    let inputs = b.inputs("x", n_inputs);
    let mut pool: Vec<NetId> = inputs;
    for (raw, pins) in luts {
        let ins: [NetId; 6] = std::array::from_fn(|k| pool[pins[k] as usize % pool.len()]);
        let o6 = b.lut6(Init::from_raw(*raw), ins);
        pool.push(o6);
    }
    let last = *pool.last().expect("non-empty");
    b.output("y", last);
    b.finish().expect("well-formed")
}

/// A 6-bit adder with a real carry chain, so carry-weighted nets are
/// exercised too.
fn adder_netlist() -> axmul_fabric::Netlist {
    let width = 6;
    let mut b = NetlistBuilder::new("add6");
    let x = b.inputs("a", width);
    let y = b.inputs("b", width);
    let mut props = Vec::new();
    for i in 0..width {
        let (o6, _) = b.lut2(Init::XOR2, x[i], y[i]);
        props.push(o6);
    }
    let zero = b.constant(false);
    let (sums, cout) = b.carry_chain(zero, &props, &x);
    b.output_bus("s", &sums);
    b.output("cout", cout);
    b.finish().expect("well-formed")
}

fn assert_reports_identical(left: &EnergyReport, right: &EnergyReport) {
    assert_eq!(left.energy_per_op.to_bits(), right.energy_per_op.to_bits());
    assert_eq!(left.edp.to_bits(), right.edp.to_bits());
    assert_eq!(left.transitions, right.transitions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wide-lane measurement over random LUT networks equals the scalar
    /// reference bitwise for any stimulus length and worker count.
    #[test]
    fn packed_measure_equals_scalar_reference(
        luts in prop::collection::vec((any::<u64>(), any::<[u8; 6]>()), 1..16),
        steps in prop::sample::select(
            [1usize, 2, 63, 64, 65, 127, 128, 129, 255, 256, 257, 300, 511, 512, 513].to_vec(),
        ),
        seed in any::<u64>(),
        workers in 1usize..=5,
    ) {
        let nl = random_netlist(8, &luts);
        let prog = CompiledNetlist::compile(&nl);
        let energy = EnergyModel::virtex7();
        let delay = DelayModel::virtex7();
        let stimulus = uniform_stimulus(&nl, steps, seed);
        let reference = measure_reference(&nl, &energy, &delay, &stimulus).unwrap();

        let single = measure_with(&nl, &prog, &energy, &delay, &stimulus).unwrap();
        assert_reports_identical(&single, &reference);

        let packed = PackedStimulus::pack(&nl, &stimulus).unwrap();
        let critical_path_ns = analyze(&nl, &delay).critical_path_ns;
        let sharded =
            measure_packed(&nl, &prog, &energy, critical_path_ns, &packed, workers).unwrap();
        assert_reports_identical(&sharded, &reference);
    }

    /// The direct packed-word uniform stimulus generator is the same
    /// stream as packing the step-major generator's output.
    #[test]
    fn packed_uniform_equals_packed_stepwise(
        steps in 1usize..700,
        seed in any::<u64>(),
    ) {
        let nl = adder_netlist();
        let direct = PackedStimulus::uniform(&nl, steps, seed);
        let packed = PackedStimulus::pack(&nl, &uniform_stimulus(&nl, steps, seed)).unwrap();
        prop_assert_eq!(direct, packed);
    }

    /// Multi-bus carry-chain netlists: sharded wide counts equal the
    /// scalar reference bitwise across the 64/256-step boundaries.
    #[test]
    fn adder_measure_equals_scalar_reference(
        steps in 1usize..700,
        seed in any::<u64>(),
        workers in 1usize..=4,
    ) {
        let nl = adder_netlist();
        let prog = CompiledNetlist::compile(&nl);
        let energy = EnergyModel::virtex7();
        let delay = DelayModel::virtex7();
        let stimulus = uniform_stimulus(&nl, steps, seed);
        let reference = measure_reference(&nl, &energy, &delay, &stimulus).unwrap();
        let packed = PackedStimulus::uniform(&nl, steps, seed);
        let critical_path_ns = analyze(&nl, &delay).critical_path_ns;
        let wide =
            measure_packed(&nl, &prog, &energy, critical_path_ns, &packed, workers).unwrap();
        assert_reports_identical(&wide, &reference);
    }
}
