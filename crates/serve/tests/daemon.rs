//! End-to-end daemon tests over real sockets: every request type on
//! both transports, payload-level error recovery on a live connection,
//! framing-error teardown, and the zero-rebuild warm restart.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use axmul_serve::json::Value;
use axmul_serve::proto::{read_frame, write_frame, Op, DEFAULT_MAX_FRAME};
use axmul_serve::server::{serve, Endpoints, ServerOptions};
use axmul_serve::{Client, ClientError, Service};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "axmul_daemon_it_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("axmul_daemon_it_{tag}_{}.sock", std::process::id()))
}

fn start(tag: &str, cache_dir: Option<&PathBuf>) -> (axmul_serve::ServerHandle, PathBuf) {
    let store = cache_dir.map(|d| axmul_serve::open_store(Some(d)).unwrap());
    let service = Service::new(store);
    let socket = socket_path(tag);
    let handle = serve(
        service,
        &Endpoints {
            tcp_port: Some(0),
            unix_path: Some(socket.clone()),
        },
        &ServerOptions::default(),
    )
    .unwrap();
    (handle, socket)
}

fn exercise_every_request_type(client: &mut Client) {
    let r = client
        .call(Op::Characterize {
            config: "(a A A A A)".into(),
        })
        .unwrap();
    assert!(
        r.get("cost")
            .and_then(|c| c.get("luts"))
            .and_then(Value::as_u64)
            .unwrap()
            > 0
    );

    let r = client
        .call(Op::Lint {
            config: "(c A A A A)".into(),
        })
        .unwrap();
    assert_eq!(r.get("errors").and_then(Value::as_u64), Some(0), "{r}");

    let images = vec![vec![128u8; 64]; 2];
    let r = client
        .call(Op::NnClassify {
            config: None,
            images,
        })
        .unwrap();
    assert_eq!(
        r.get("predictions").and_then(Value::as_arr).unwrap().len(),
        2
    );

    let r = client
        .call(Op::DseQuery {
            candidates: vec!["(a A A A A)".into(), "(c X X X X)".into()],
        })
        .unwrap();
    assert_eq!(r.get("reports").and_then(Value::as_arr).unwrap().len(), 2);

    let r = client
        .call(Op::EquivCheck {
            lhs_netlist: None,
            lhs_config: Some("(a A A A A)".into()),
            rhs_netlist: None,
            rhs_config: Some("(a A A A A)".into()),
        })
        .unwrap();
    assert_eq!(r.get("equivalent"), Some(&Value::Bool(true)), "{r}");

    let r = client.call(Op::Stats).unwrap();
    assert!(r.get("uptime_s").and_then(Value::as_f64).unwrap() >= 0.0);
}

#[test]
fn serves_every_request_type_on_both_transports() {
    let (handle, socket) = start("both", None);
    let mut tcp = Client::connect_tcp(handle.tcp_addr().unwrap()).unwrap();
    exercise_every_request_type(&mut tcp);
    let mut unix = Client::connect_unix(&socket).unwrap();
    exercise_every_request_type(&mut unix);
    assert!(handle.connections() >= 2);
    handle.shutdown();
    assert!(!socket.exists(), "socket file must be removed on shutdown");
}

#[test]
fn payload_errors_keep_the_connection_alive() {
    let (handle, _socket) = start("payload", None);
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap()).unwrap();

    // Three malformed payloads in a row, each answered in order.
    let e = client.call_raw(b"this is not json").unwrap();
    assert_eq!(e.get("code").and_then(Value::as_str), Some("bad-json"));
    let e = client.call_raw(br#"{"id": 5, "type": "no-such"}"#).unwrap();
    assert_eq!(e.get("code").and_then(Value::as_str), Some("bad-request"));
    let e = client
        .call_raw(br#"{"id": 6, "type": "characterize-config", "params": {"config": "((("}}"#)
        .unwrap();
    assert_eq!(
        e.get("code").and_then(Value::as_str),
        Some("invalid-config")
    );
    let e = client.call_raw(br#"{"id": 7, "params": {"#).unwrap();
    assert_eq!(e.get("code").and_then(Value::as_str), Some("bad-json"));

    // The same connection still serves real requests.
    exercise_every_request_type(&mut client);
    handle.shutdown();
}

#[test]
fn invalid_config_is_a_typed_error_not_a_crash() {
    let (handle, _socket) = start("invalid", None);
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap()).unwrap();
    match client.call(Op::Characterize {
        config: "(a A A".into(),
    }) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "invalid-config"),
        other => panic!("expected server error, got {other:?}"),
    }
    exercise_every_request_type(&mut client);
    handle.shutdown();
}

#[test]
fn framing_errors_get_a_final_typed_frame_then_close() {
    let (handle, _socket) = start("framing", None);
    let addr = handle.tcp_addr().unwrap();

    // Bad magic: one typed error frame, then close. (The header alone
    // is enough to trip the check; sending no payload keeps the close a
    // clean FIN rather than an RST over unread bytes.)
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"ZZ\x01\x00\x08\x00\x00\x00").unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
    let doc = axmul_serve::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    let err = doc.get("error").unwrap();
    assert_eq!(
        err.get("code").and_then(Value::as_str),
        Some("malformed-frame")
    );
    let mut rest = Vec::new();
    match raw.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "server must close after a framing error"),
        // A reset is also a close; platform-dependent.
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
    }

    // Unknown version.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"AX\x63\x00\x00\x00\x00\x00").unwrap();
    let payload = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
    let doc = axmul_serve::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    let err = doc.get("error").unwrap();
    assert_eq!(
        err.get("code").and_then(Value::as_str),
        Some("unsupported-version")
    );

    // Oversized length prefix: rejected before any allocation of that
    // size, with a typed error.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(b"AX\x01\x00");
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&frame).unwrap();
    let payload = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
    let doc = axmul_serve::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    let err = doc.get("error").unwrap();
    assert_eq!(err.get("code").and_then(Value::as_str), Some("oversized"));

    // The daemon is still alive for well-behaved clients.
    let mut client = Client::connect_tcp(addr).unwrap();
    exercise_every_request_type(&mut client);
    handle.shutdown();
}

#[test]
fn warm_restart_reuses_the_store_with_zero_builds() {
    let dir = tempdir("warmstart");
    let roster = ["(a A A A A)", "(c X T1 T2 T3)", "(a T3 A X X)"];

    let (cold, _) = start("warm_a", Some(&dir));
    let mut client = Client::connect_tcp(cold.tcp_addr().unwrap()).unwrap();
    let mut cold_results = Vec::new();
    for key in roster {
        cold_results.push(
            client
                .call(Op::Characterize { config: key.into() })
                .unwrap(),
        );
    }
    let stats = client.call(Op::Stats).unwrap();
    let cold_builds = stats
        .get("cache")
        .and_then(|c| c.get("builds"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(cold_builds > 0);
    drop(client);
    cold.shutdown();

    // A brand-new server over the same cache directory: identical
    // responses, zero recharacterizations.
    let (warm, _) = start("warm_b", Some(&dir));
    let mut client = Client::connect_tcp(warm.tcp_addr().unwrap()).unwrap();
    for (key, cold_result) in roster.iter().zip(&cold_results) {
        let r = client
            .call(Op::Characterize {
                config: (*key).into(),
            })
            .unwrap();
        assert_eq!(&r, cold_result, "{key}");
    }
    let stats = client.call(Op::Stats).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("builds").and_then(Value::as_u64), Some(0));
    assert!(cache.get("disk_hits").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(cache.get("store_failures").and_then(Value::as_u64), Some(0));
    drop(client);
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn import_netlist_round_trips_external_verilog_with_warm_witnesses() {
    let dir = tempdir("import");
    let key = "(a A A A A)";
    let cfg: axmul_dse::Config = key.parse().unwrap();
    let text = axmul_fabric::export::to_verilog(&cfg.assemble());

    let (cold, socket) = start("import_a", Some(&dir));
    let mut tcp = Client::connect_tcp(cold.tcp_addr().unwrap()).unwrap();
    let r = tcp
        .call(Op::ImportNetlist {
            text: text.clone(),
            format: None,
            config: Some(key.into()),
        })
        .unwrap();
    assert_eq!(r.get("format").and_then(Value::as_str), Some("verilog"));
    assert!(r.get("luts").and_then(Value::as_u64).unwrap() > 0);
    let stats = r.get("characterization").unwrap().get("stats").unwrap();
    let witnesses = stats
        .get("worst_case_inputs")
        .and_then(Value::as_arr)
        .unwrap();
    assert!(
        !witnesses.is_empty(),
        "worst-case witnesses must survive import → characterize"
    );

    // `builds` counts per-node characterizations (the leaf and the
    // composed quad), so capture the cold total before re-importing.
    let stats_cold = tcp.call(Op::Stats).unwrap();
    let builds_cold = stats_cold
        .get("cache")
        .and_then(|c| c.get("builds"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(builds_cold > 0);

    // Same request over the Unix socket with an explicit format:
    // byte-identical answer (served warm from the same cache entry).
    let mut unix = Client::connect_unix(&socket).unwrap();
    let r2 = unix
        .call(Op::ImportNetlist {
            text: text.clone(),
            format: Some("verilog".into()),
            config: Some(key.into()),
        })
        .unwrap();
    assert_eq!(r2.get("characterization"), r.get("characterization"));
    assert_eq!(r2.get("fingerprint"), r.get("fingerprint"));

    let stats_warm = tcp.call(Op::Stats).unwrap();
    let cache = stats_warm.get("cache").unwrap();
    assert_eq!(
        cache.get("builds").and_then(Value::as_u64),
        Some(builds_cold),
        "second import must hit the warm cache, not rebuild"
    );
    assert!(cache.get("hits").and_then(Value::as_u64).unwrap() > 0);

    // Typed errors: malformed text, a config the netlist does not
    // implement, and an unknown format — all answered, never a crash.
    match tcp.call(Op::ImportNetlist {
        text: "module broken (".into(),
        format: None,
        config: None,
    }) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "invalid-netlist"),
        other => panic!("expected server error, got {other:?}"),
    }
    match tcp.call(Op::ImportNetlist {
        text: text.clone(),
        format: None,
        config: Some("(c X X X X)".into()),
    }) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "invalid-netlist");
            assert!(message.contains("fingerprint"), "{message}");
        }
        other => panic!("expected server error, got {other:?}"),
    }
    match tcp.call(Op::ImportNetlist {
        text: text.clone(),
        format: Some("edif".into()),
        config: None,
    }) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "bad-request"),
        other => panic!("expected server error, got {other:?}"),
    }
    exercise_every_request_type(&mut tcp);
    drop((tcp, unix));
    cold.shutdown();

    // Warm restart over the same store: the imported netlist hashes
    // identically to its in-process twin, so the characterization —
    // witnesses included — comes straight off disk with zero rebuilds.
    let (warm, _) = start("import_b", Some(&dir));
    let mut client = Client::connect_tcp(warm.tcp_addr().unwrap()).unwrap();
    let r3 = client
        .call(Op::ImportNetlist {
            text,
            format: None,
            config: Some(key.into()),
        })
        .unwrap();
    assert_eq!(r3.get("characterization"), r.get("characterization"));
    let cache = client.call(Op::Stats).unwrap();
    let cache = cache.get("cache").unwrap();
    assert_eq!(cache.get("builds").and_then(Value::as_u64), Some(0));
    assert!(cache.get("disk_hits").and_then(Value::as_u64).unwrap() > 0);
    drop(client);
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn equiv_check_serves_proofs_and_counterexamples_on_both_transports() {
    let (handle, socket) = start("equiv", None);
    let key = "(a A A A A)";
    let cfg: axmul_dse::Config = key.parse().unwrap();
    let text = axmul_fabric::export::to_verilog(&cfg.assemble());

    let tcp = Client::connect_tcp(handle.tcp_addr().unwrap()).unwrap();
    let unix = Client::connect_unix(&socket).unwrap();
    for mut client in [tcp, unix] {
        // Imported document vs its in-process twin: proven equivalent.
        let r = client
            .call(Op::EquivCheck {
                lhs_netlist: Some(text.clone()),
                lhs_config: None,
                rhs_netlist: None,
                rhs_config: Some(key.into()),
            })
            .unwrap();
        assert_eq!(r.get("equivalent"), Some(&Value::Bool(true)), "{r}");
        assert_eq!(r.get("counterexample"), Some(&Value::Null), "{r}");

        // Approximate vs accurate paper multipliers: the typed
        // not-equivalent response carries the counterexample pair and
        // both sides' outputs at it.
        let r = client
            .call(Op::EquivCheck {
                lhs_netlist: None,
                lhs_config: Some("(a X X X X)".into()),
                rhs_netlist: None,
                rhs_config: Some(key.into()),
            })
            .unwrap();
        assert_eq!(r.get("equivalent"), Some(&Value::Bool(false)), "{r}");
        let cex = r.get("counterexample").unwrap();
        assert_eq!(
            cex.get("inputs")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(2),
            "{r}"
        );
        assert_ne!(
            cex.get("lhs_outputs").and_then(Value::as_arr),
            cex.get("rhs_outputs").and_then(Value::as_arr),
            "{r}"
        );

        // A malformed side is a typed error on a live connection.
        match client.call(Op::EquivCheck {
            lhs_netlist: Some("module broken (".into()),
            lhs_config: None,
            rhs_netlist: None,
            rhs_config: Some(key.into()),
        }) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "invalid-netlist"),
            other => panic!("expected server error, got {other:?}"),
        }
        exercise_every_request_type(&mut client);
    }
    handle.shutdown();
}

#[test]
fn concurrent_clients_are_all_served() {
    let (handle, _socket) = start("concurrent", None);
    let addr = handle.tcp_addr().unwrap();
    std::thread::scope(|s| {
        for i in 0..8 {
            s.spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                for _ in 0..5 {
                    let key = if i % 2 == 0 {
                        "(a A A A A)"
                    } else {
                        "(c X X X X)"
                    };
                    let r = client
                        .call(Op::Characterize { config: key.into() })
                        .unwrap();
                    assert_eq!(r.get("key").and_then(Value::as_str), Some(key));
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn smoke_helper_reports_every_type() {
    let lines = axmul_serve::loadgen::smoke().unwrap();
    assert_eq!(lines.len(), 5, "{lines:?}");
    assert!(lines.iter().all(|l| l.contains(": ok")), "{lines:?}");
}

#[test]
fn write_frame_is_what_read_frame_reads_over_a_socket() {
    // Round-trip through a real socketpair rather than an in-memory
    // cursor, covering partial reads.
    let (handle, socket) = start("roundtrip", None);
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    let req = axmul_serve::proto::render_request(&axmul_serve::Request {
        id: 99,
        op: Op::Stats,
    });
    write_frame(&mut stream, &req).unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap().unwrap();
    let doc = axmul_serve::json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(doc.get("id").and_then(Value::as_u64), Some(99));
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    handle.shutdown();
}
