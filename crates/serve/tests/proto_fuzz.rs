//! Property-based fuzzing of the wire protocol (satellite of the serve
//! subsystem): arbitrary payload bytes and corrupted frame headers must
//! always produce a typed error response — never a panic, never a hung
//! or wedged daemon — and the server must keep serving afterwards.

use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;

use axmul_serve::json::{parse, Value};
use axmul_serve::proto::{read_frame, write_frame, Op, DEFAULT_MAX_FRAME, PROTO_VERSION};
use axmul_serve::server::{serve, Endpoints, ServerOptions};
use axmul_serve::{Client, Service};
use proptest::prelude::*;

/// One daemon shared by every fuzz case; a per-case server would spend
/// the whole test budget on thread spawns. Never shut down (the
/// process exit reaps it) — which itself exercises "the daemon outlives
/// hundreds of abusive connections".
fn server_addr() -> std::net::SocketAddr {
    static HANDLE: OnceLock<axmul_serve::ServerHandle> = OnceLock::new();
    HANDLE
        .get_or_init(|| {
            serve(
                Service::new(None),
                &Endpoints {
                    tcp_port: Some(0),
                    unix_path: None,
                },
                &ServerOptions {
                    workers: 2,
                    max_frame: 1 << 16,
                    ..ServerOptions::default()
                },
            )
            .unwrap()
        })
        .tcp_addr()
        .unwrap()
}

/// Asserts the daemon answers a well-formed request — the liveness
/// probe run after every abuse.
fn assert_still_serving() {
    let mut client = Client::connect_tcp(server_addr()).unwrap();
    let r = client.call(Op::Stats).unwrap();
    assert!(r.get("uptime_s").is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte soup, framed correctly, gets an error *response* on the
    /// same connection, and the connection keeps working.
    #[test]
    fn arbitrary_payload_bytes_get_an_error_response(
        payload in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut stream = TcpStream::connect(server_addr()).unwrap();
        write_frame(&mut stream, &payload).unwrap();
        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap().expect("response frame");
        let doc = parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        // Random bytes are never a valid request envelope, so ok=false
        // with a typed code.
        prop_assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        let code = doc.get("error").unwrap().get("code").and_then(Value::as_str).unwrap();
        prop_assert!(
            code == "bad-json" || code == "bad-request" || code == "invalid-config",
            "unexpected code {}", code
        );

        // Same connection, real request: still served.
        let mut client_payload = Vec::new();
        client_payload.extend_from_slice(br#"{"id": 1, "type": "server-stats"}"#);
        write_frame(&mut stream, &client_payload).unwrap();
        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap().expect("second response");
        let doc = parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        prop_assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    }

    /// A corrupted header (wrong magic or wrong version) yields one
    /// final typed error frame; the daemon survives and keeps serving
    /// fresh connections.
    #[test]
    fn corrupted_headers_get_a_typed_error_frame(
        a in any::<u8>(),
        b in any::<u8>(),
        raw_version in any::<u8>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let magic_ok = a == b'A' && b == b'X';
        // A fully valid header is a different scenario (covered above):
        // force at least one corruption into every case.
        let version = if magic_ok && raw_version == PROTO_VERSION {
            PROTO_VERSION.wrapping_add(1)
        } else {
            raw_version
        };

        // Claim a payload but never send it: the server rejects on the
        // header alone, so no unread bytes are left to turn the close
        // into a reset that could race the error frame.
        let mut frame = vec![a, b, version, 0];
        frame.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        let mut stream = TcpStream::connect(server_addr()).unwrap();
        stream.write_all(&frame).unwrap();
        stream.flush().unwrap();

        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap().expect("error frame");
        let doc = parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        prop_assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        let code = doc.get("error").unwrap().get("code").and_then(Value::as_str).unwrap();
        let expected = if !magic_ok { "malformed-frame" } else { "unsupported-version" };
        prop_assert_eq!(code, expected);

        assert_still_serving();
    }

    /// Hostile length prefixes up to `u32::MAX` are refused before any
    /// comparable allocation happens (the fuzz server caps frames at
    /// 64 KiB).
    #[test]
    fn oversized_length_prefixes_are_refused(len in 65_537u32..=u32::MAX) {
        let mut frame = vec![b'A', b'X', PROTO_VERSION, 0];
        frame.extend_from_slice(&len.to_le_bytes());
        let mut stream = TcpStream::connect(server_addr()).unwrap();
        stream.write_all(&frame).unwrap();
        stream.flush().unwrap();

        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap().expect("error frame");
        let doc = parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        let code = doc.get("error").unwrap().get("code").and_then(Value::as_str).unwrap();
        prop_assert_eq!(code, "oversized");
        assert_still_serving();
    }

    /// Valid envelopes with fuzzed `type` strings are answered with
    /// `bad-request` (or served, for the rare collision with a real
    /// type) and never kill the connection.
    #[test]
    fn fuzzed_request_types_are_answered(
        ty in proptest::collection::vec(b'a'..=b'z', 0..24)
            .prop_map(|bytes| String::from_utf8(bytes).expect("ASCII"))
    ) {
        let mut client = Client::connect_tcp(server_addr()).unwrap();
        let payload = format!(r#"{{"id": 3, "type": "{ty}", "params": {{}}}}"#);
        let v = client.call_raw(payload.as_bytes()).unwrap();
        // Either a typed error envelope (surfaced as {code, message})
        // or a real result for the zero-parameter type `server-stats`.
        if let Some(code) = v.get("code").and_then(Value::as_str) {
            prop_assert!(code == "bad-request", "code {}", code);
        } else {
            prop_assert_eq!(ty.as_str(), "server-stats");
        }
        // Connection still usable.
        let r = client.call(Op::Stats).unwrap();
        prop_assert!(r.get("uptime_s").is_some());
    }
}
