//! The daemon itself: TCP and Unix-socket listeners feeding a bounded
//! pool of worker threads over a channel.
//!
//! Design constraints (std only, no async runtime):
//!
//! - Listeners run nonblocking and are polled with a short sleep, so a
//!   shutdown flag is observed within tens of milliseconds.
//! - Accepted connections go through a *bounded* [`mpsc::sync_channel`];
//!   when every worker is busy and the queue is full, the accept loop
//!   applies backpressure instead of buffering unboundedly.
//! - Each worker owns one connection at a time and serves frames until
//!   the peer hangs up. Payload-level errors (bad JSON, bad request)
//!   are answered on the same connection, which stays open; framing
//!   errors (bad magic, version, oversized) get one final typed error
//!   frame and a close, because the byte stream is no longer in sync.
//! - Nothing a client sends can bring the process down: workers catch
//!   every error path and move on to the next connection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::{read_frame, render_err, write_frame, ErrorCode, FrameError, DEFAULT_MAX_FRAME};
use crate::service::Service;

/// How long the accept loop sleeps between polls of its listeners.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-connection socket read timeout: an idle client is eventually
/// dropped so it cannot pin a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Where the daemon listens.
#[derive(Debug, Clone, Default)]
pub struct Endpoints {
    /// TCP port on 127.0.0.1; `Some(0)` asks the OS for a free port.
    pub tcp_port: Option<u16>,
    /// Unix-domain socket path; created fresh, removed on shutdown.
    pub unix_path: Option<PathBuf>,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Largest accepted frame payload in bytes.
    pub max_frame: u32,
    /// Bound of the accepted-connection queue.
    pub backlog: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            backlog: 64,
        }
    }
}

/// One accepted connection, transport-erased.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(READ_TIMEOUT)),
            Conn::Unix(s) => s.set_read_timeout(Some(READ_TIMEOUT)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Handle to a running server: addresses, counters, and shutdown.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    service: Arc<Service>,
}

impl ServerHandle {
    /// Bound TCP address, when a TCP endpoint was requested.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Unix socket path, when a Unix endpoint was requested.
    #[must_use]
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// The shared service (for inspecting cache counters in benches).
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Signals shutdown and joins every thread. In-flight connections
    /// finish their current frame; queued connections are dropped.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds the endpoints and spawns the accept loop plus worker pool.
///
/// # Errors
///
/// Fails if no endpoint was requested or a bind fails (port in use,
/// stale socket path in a read-only directory, …).
pub fn serve(
    service: Service,
    endpoints: &Endpoints,
    opts: &ServerOptions,
) -> io::Result<ServerHandle> {
    if endpoints.tcp_port.is_none() && endpoints.unix_path.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no endpoint requested: need a TCP port or a Unix socket path",
        ));
    }
    let tcp = match endpoints.tcp_port {
        Some(port) => {
            let l = TcpListener::bind(("127.0.0.1", port))?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    let unix = match &endpoints.unix_path {
        Some(path) => {
            // A stale socket file from a crashed run would fail the bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;

    let service = Arc::new(service);
    let shutdown = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::sync_channel::<Conn>(opts.backlog.max(1));
    let rx = Arc::new(std::sync::Mutex::new(rx));

    let workers = opts.workers.max(1);
    let mut worker_threads = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let max_frame = opts.max_frame;
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("axmul-serve-{i}"))
                .spawn(move || worker_loop(&rx, &service, &shutdown, max_frame))
                .expect("spawn worker"),
        );
    }

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let connections = Arc::clone(&connections);
        Some(
            std::thread::Builder::new()
                .name("axmul-accept".into())
                .spawn(move || accept_loop(tcp, unix, &tx, &shutdown, &connections))
                .expect("spawn accept loop"),
        )
    };

    Ok(ServerHandle {
        shutdown,
        tcp_addr,
        unix_path: endpoints.unix_path.clone(),
        accept_thread,
        worker_threads,
        connections,
        service,
    })
}

fn accept_loop(
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    tx: &mpsc::SyncSender<Conn>,
    shutdown: &AtomicBool,
    connections: &AtomicU64,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let mut accepted = false;
        if let Some(l) = &tcp {
            match l.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    connections.fetch_add(1, Ordering::Relaxed);
                    // Request/response on one socket: Nagle only adds
                    // delayed-ACK latency here.
                    let _ = stream.set_nodelay(true);
                    // A send error means every worker is gone: shut down.
                    if tx.send(Conn::Tcp(stream)).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        if let Some(l) = &unix {
            match l.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    connections.fetch_add(1, Ordering::Relaxed);
                    if tx.send(Conn::Unix(stream)).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        if !accepted {
            std::thread::sleep(ACCEPT_POLL);
        }
    }
}

fn worker_loop(
    rx: &std::sync::Mutex<mpsc::Receiver<Conn>>,
    service: &Service,
    shutdown: &AtomicBool,
    max_frame: u32,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let conn = {
            let guard = rx.lock().expect("worker queue lock");
            guard.recv_timeout(Duration::from_millis(50))
        };
        match conn {
            Ok(conn) => serve_connection(conn, service, shutdown, max_frame),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection to completion. Never panics on peer behavior.
fn serve_connection(mut conn: Conn, service: &Service, shutdown: &AtomicBool, max_frame: u32) {
    if conn.set_read_timeout().is_err() {
        return;
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut conn, max_frame) {
            Ok(Some(payload)) => {
                let response = service.handle_payload(&payload);
                if write_frame(&mut conn, &response).is_err() {
                    return; // peer went away mid-response
                }
            }
            Ok(None) => return, // clean EOF
            Err(e) => {
                // The stream is desynchronized (or dead): answer with
                // one typed error frame if possible, then close.
                let code = match &e {
                    FrameError::BadMagic(_) => Some(ErrorCode::MalformedFrame),
                    FrameError::UnsupportedVersion(_) => Some(ErrorCode::UnsupportedVersion),
                    FrameError::Oversized { .. } => Some(ErrorCode::Oversized),
                    FrameError::Io(_) => None,
                };
                if let Some(code) = code {
                    let payload = render_err(0, code, &e.to_string());
                    let _ = write_frame(&mut conn, &payload);
                }
                return;
            }
        }
    }
}
