//! Characterization-and-inference daemon for the approximate-multiplier
//! toolkit.
//!
//! This crate turns the library's expensive analyses — configuration
//! characterization, netlist linting, int8 inference, design-space
//! queries — into a long-running, std-only service:
//!
//! - [`proto`]: a versioned length-prefixed JSON wire protocol
//!   (`b"AX"` magic, version byte, `u32` payload length), with typed
//!   request/response envelopes and typed framing errors.
//! - [`service`]: the transport-agnostic dispatcher owning the warm
//!   state — one shared [`axmul_dse::CharCache`], tabulated NN
//!   backends, the linter — and turning request payloads into response
//!   payloads without ever panicking on hostile input.
//! - [`server`]: TCP + Unix-socket listeners feeding a bounded pool of
//!   `std::thread` workers over a `sync_channel`; no async runtime.
//! - [`storage`]: cache-directory policy over the persistent
//!   [`axmul_dse::DiskStore`], so a restarted daemon warm-starts with
//!   zero recharacterizations.
//! - [`client`]: a blocking client for the protocol.
//! - [`loadgen`]: the `repro serve-bench` load generator measuring
//!   p50/p99 latency, throughput, and the cold-vs-warm store effect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod service;
pub mod storage;

// The generic JSON value/parser/printer started life here and moved to
// `axmul-netio` so the wire protocol and the netlist interchange
// formats share one implementation; the re-export keeps every
// `axmul_serve::json::…` path working.
pub use axmul_netio::json;

pub use client::{Client, ClientError};
pub use loadgen::{BenchReport, LoadgenOptions};
pub use proto::{Op, Request, PROTO_VERSION};
pub use server::{serve, Endpoints, ServerHandle, ServerOptions};
pub use service::Service;
pub use storage::{default_cache_dir, open_store};
