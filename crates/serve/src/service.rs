//! Request execution: one [`Service`] owns the warm state (the
//! characterization cache, tabulated NN backends, the linter) and turns
//! request payloads into response payloads.
//!
//! The service is transport-agnostic and fully thread-safe: the server
//! hands byte payloads to [`Service::handle_payload`] from any worker
//! thread. Every failure becomes a typed error *response*; nothing in
//! here panics on hostile input.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use axmul_dse::{evaluate_on, CharCache, Config, DiskStore, DseResult};
use axmul_fabric::cost::Characterizer;
use axmul_fabric::Netlist;
use axmul_lint::{LintReport, Linter};
use axmul_nn::{infer_batch, reference_model, ProductTable};
use axmul_sat::{check_equiv, EquivOutcome, EquivReport, ProofOptions, SatError};

use crate::json::{self, Value};
use crate::proto::{parse_request, render_err, render_ok, ErrorCode, Op, RequestError};

/// Widest configuration the daemon characterizes on demand. The cache
/// itself goes to 128 bits, but a single blocking request has to stay
/// interactive.
pub const MAX_SERVE_BITS: u32 = 16;

/// Cap on images per `nn-classify-batch` request.
pub const MAX_BATCH_IMAGES: usize = 4096;

/// Cap on candidates per `dse-query` request.
pub const MAX_DSE_CANDIDATES: usize = 512;

/// Per-request-type counters, all monotonically increasing.
#[derive(Debug, Default)]
struct Counters {
    characterize: AtomicU64,
    lint: AtomicU64,
    nn_classify: AtomicU64,
    dse_query: AtomicU64,
    absint_query: AtomicU64,
    import_netlist: AtomicU64,
    equiv_check: AtomicU64,
    stats: AtomicU64,
    errors: AtomicU64,
}

/// The daemon's warm state and request dispatcher.
pub struct Service {
    cache: CharCache,
    /// Signed 8-bit product tables keyed by configuration key; `""` is
    /// the exact backend. Built once per configuration, then shared.
    tables: Mutex<HashMap<String, Arc<ProductTable>>>,
    linter: Linter,
    counters: Counters,
    started: Instant,
    dse_workers: usize,
}

impl Service {
    /// Builds a service around a fresh in-memory cache, optionally
    /// backed by a persistent store.
    #[must_use]
    pub fn new(store: Option<Arc<DiskStore>>) -> Self {
        let mut cache = CharCache::new(Characterizer::virtex7());
        if let Some(store) = store {
            cache = cache.with_store(store);
        }
        Service {
            cache,
            tables: Mutex::new(HashMap::new()),
            linter: Linter::new(),
            counters: Counters::default(),
            started: Instant::now(),
            dse_workers: 1,
        }
    }

    /// Worker threads each `dse-query` request may use (default 1, so
    /// concurrent requests don't oversubscribe the machine).
    #[must_use]
    pub fn with_dse_workers(mut self, workers: usize) -> Self {
        self.dse_workers = workers.max(1);
        self
    }

    /// The characterization cache (exposed for stats and benchmarks).
    #[must_use]
    pub fn cache(&self) -> &CharCache {
        &self.cache
    }

    /// Executes one request payload and renders the response payload.
    /// Infallible by design: every failure mode is an error response.
    pub fn handle_payload(&self, payload: &[u8]) -> Vec<u8> {
        let req = match parse_request(payload) {
            Ok(r) => r,
            Err(RequestError { id, code, message }) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                return render_err(id, code, &message);
            }
        };
        let id = req.id;
        match self.dispatch(&req.op) {
            Ok(result) => render_ok(id, result),
            Err((code, message)) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                render_err(id, code, &message)
            }
        }
    }

    fn dispatch(&self, op: &Op) -> Result<Value, (ErrorCode, String)> {
        match op {
            Op::Characterize { config } => {
                self.counters.characterize.fetch_add(1, Ordering::Relaxed);
                self.characterize(config)
            }
            Op::Lint { config } => {
                self.counters.lint.fetch_add(1, Ordering::Relaxed);
                self.lint(config)
            }
            Op::NnClassify { config, images } => {
                self.counters.nn_classify.fetch_add(1, Ordering::Relaxed);
                self.nn_classify(config.as_deref(), images)
            }
            Op::DseQuery { candidates } => {
                self.counters.dse_query.fetch_add(1, Ordering::Relaxed);
                self.dse_query(candidates)
            }
            Op::AbsintQuery { config } => {
                self.counters.absint_query.fetch_add(1, Ordering::Relaxed);
                self.absint_query(config)
            }
            Op::ImportNetlist {
                text,
                format,
                config,
            } => {
                self.counters.import_netlist.fetch_add(1, Ordering::Relaxed);
                self.import_netlist(text, format.as_deref(), config.as_deref())
            }
            Op::EquivCheck {
                lhs_netlist,
                lhs_config,
                rhs_netlist,
                rhs_config,
            } => {
                self.counters.equiv_check.fetch_add(1, Ordering::Relaxed);
                self.equiv_check(
                    lhs_netlist.as_deref(),
                    lhs_config.as_deref(),
                    rhs_netlist.as_deref(),
                    rhs_config.as_deref(),
                )
            }
            Op::Stats => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                Ok(self.stats())
            }
        }
    }

    /// Parses and width-checks a configuration key.
    fn config(&self, key: &str) -> Result<Config, (ErrorCode, String)> {
        let cfg: Config = key
            .parse()
            .map_err(|e| (ErrorCode::InvalidConfig, format!("{e}")))?;
        if cfg.bits() > MAX_SERVE_BITS {
            return Err((
                ErrorCode::InvalidConfig,
                format!(
                    "{}-bit configuration exceeds the {MAX_SERVE_BITS}-bit serving limit",
                    cfg.bits()
                ),
            ));
        }
        Ok(cfg)
    }

    fn characterize(&self, key: &str) -> Result<Value, (ErrorCode, String)> {
        let cfg = self.config(key)?;
        let char = self
            .cache
            .characterize(&cfg)
            .map_err(|e| (ErrorCode::Internal, format!("characterization failed: {e}")))?;
        let cost = &char.cost;
        let stats = &char.stats;
        Ok(Value::obj([
            ("key", Value::str(char.key.clone())),
            ("bits", Value::num(char.bits)),
            (
                "cost",
                Value::obj([
                    ("luts", Value::num(char.cost.area.luts as u32)),
                    ("carry4s", Value::num(cost.area.carry4s as u32)),
                    ("wasted_sites", Value::num(cost.area.wasted_sites as u32)),
                    ("dead_outputs", Value::num(cost.area.dead_outputs as u32)),
                    ("ignored_pins", Value::num(cost.area.ignored_pins as u32)),
                    ("critical_path_ns", Value::Num(cost.critical_path_ns)),
                    ("energy_per_op", Value::Num(cost.energy_per_op)),
                    ("edp", Value::Num(cost.edp)),
                ]),
            ),
            (
                "stats",
                Value::obj([
                    ("samples", Value::Num(stats.samples as f64)),
                    (
                        "error_occurrences",
                        Value::Num(stats.error_occurrences as f64),
                    ),
                    ("max_error", Value::Num(stats.max_error as f64)),
                    (
                        "max_error_occurrences",
                        Value::Num(stats.max_error_occurrences as f64),
                    ),
                    ("avg_error", Value::Num(stats.avg_error)),
                    ("avg_relative_error", Value::Num(stats.avg_relative_error)),
                    ("error_probability", Value::Num(stats.error_probability)),
                    (
                        "normalized_mean_error_distance",
                        Value::Num(stats.normalized_mean_error_distance),
                    ),
                    ("mean_squared_error", Value::Num(stats.mean_squared_error)),
                    ("rmse", Value::Num(stats.rmse)),
                    (
                        // Worst-case operand witnesses (store v2): pairs
                        // `[a, b]` attaining `max_error`. Exact in f64 at
                        // every served width (≤ 16-bit operands).
                        "worst_case_inputs",
                        Value::Arr(
                            stats
                                .worst_case_inputs
                                .iter()
                                .map(|&(a, b)| {
                                    Value::Arr(vec![Value::Num(a as f64), Value::Num(b as f64)])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]))
    }

    /// Imports an external netlist document, lints it, and — when the
    /// client names the configuration it claims to implement — verifies
    /// it against the in-process twin and answers with the (warm-cache)
    /// characterization. Verification is fingerprint equality first;
    /// on a mismatch the server escalates to a SAT equivalence proof,
    /// so a structural variant of the claimed configuration is accepted
    /// with a note instead of rejected.
    fn import_netlist(
        &self,
        text: &str,
        format: Option<&str>,
        config: Option<&str>,
    ) -> Result<Value, (ErrorCode, String)> {
        let netlist = match format {
            None => axmul_netio::import(text),
            Some(f) => match f.parse::<axmul_netio::Format>() {
                Ok(axmul_netio::Format::Verilog) => axmul_netio::from_verilog(text),
                Ok(axmul_netio::Format::Axnl) => axmul_netio::from_axnl(text),
                Err(()) => {
                    return Err((
                        ErrorCode::BadRequest,
                        format!("unknown format `{f}` (expected `verilog` or `axnl`)"),
                    ))
                }
            },
        }
        .map_err(|e| (ErrorCode::InvalidNetlist, format!("{}: {e}", e.code())))?;
        let fp = axmul_netio::fingerprint(&netlist);
        let report = self.linter.lint(&netlist);
        let mut verify_note = Value::Null;
        let characterization = match config {
            None => Value::Null,
            Some(key) => {
                let cfg = self.config(key)?;
                let twin_netlist = cfg.assemble();
                let twin = axmul_netio::fingerprint(&twin_netlist);
                if twin != fp {
                    // Not byte-identical — but fingerprints hash
                    // structure, not meaning. Ask the SAT engine
                    // whether the designs compute the same function
                    // before rejecting.
                    match check_equiv(&netlist, &twin_netlist, &ProofOptions::default()) {
                        Ok(r) if r.is_equivalent() => {
                            verify_note = Value::str(format!(
                                "content fingerprints differ ({fp:016x} vs twin {twin:016x}) \
                                 but SAT proved the designs equivalent — accepted as a \
                                 structural variant of `{key}`"
                            ));
                        }
                        Ok(r) => {
                            return Err((
                                ErrorCode::InvalidNetlist,
                                format!(
                                    "imported netlist (fingerprint {fp:016x}) does not \
                                     implement configuration `{key}`: {}",
                                    counterexample_text(&r)
                                ),
                            ));
                        }
                        Err(e) => {
                            return Err((
                                ErrorCode::InvalidNetlist,
                                format!(
                                    "imported netlist (fingerprint {fp:016x}) does not match \
                                     configuration `{key}` (fingerprint {twin:016x}) and \
                                     equivalence could not be proven: {e}"
                                ),
                            ));
                        }
                    }
                }
                self.characterize(key)?
            }
        };
        Ok(Value::obj([
            ("name", Value::str(netlist.name())),
            (
                "format",
                Value::str(match format {
                    Some(f) => f.parse::<axmul_netio::Format>().map_or("?", |f| f.name()),
                    None => axmul_netio::detect_format(text).name(),
                }),
            ),
            ("fingerprint", Value::str(format!("{fp:016x}"))),
            ("luts", Value::num(netlist.lut_count() as u32)),
            ("carry4s", Value::num(netlist.carry4_count() as u32)),
            ("nets", Value::num(netlist.drivers().len() as u32)),
            ("lint", lint_report_value(&report)),
            ("verify_note", verify_note),
            ("characterization", characterization),
        ]))
    }

    /// Resolves one side of an `equiv-check` request into a netlist:
    /// either an interchange document (width-capped so the proof stays
    /// interactive) or a configuration key's in-process twin.
    fn equiv_side(
        &self,
        side: &str,
        netlist: Option<&str>,
        config: Option<&str>,
    ) -> Result<Netlist, (ErrorCode, String)> {
        match (netlist, config) {
            (Some(text), None) => {
                let nl = axmul_netio::import(text).map_err(|e| {
                    (
                        ErrorCode::InvalidNetlist,
                        format!("{side}: {}: {e}", e.code()),
                    )
                })?;
                let input_bits: usize = nl.input_buses().iter().map(|(_, nets)| nets.len()).sum();
                if input_bits > 2 * MAX_SERVE_BITS as usize {
                    return Err((
                        ErrorCode::InvalidNetlist,
                        format!(
                            "{side}: {input_bits} input bits exceed the {}-bit serving limit",
                            2 * MAX_SERVE_BITS
                        ),
                    ));
                }
                Ok(nl)
            }
            (None, Some(key)) => Ok(self.config(key)?.assemble()),
            // The envelope parser enforces exactly-one, but dispatch can
            // also be reached with a hand-built `Op`.
            _ => Err((
                ErrorCode::BadRequest,
                format!("exactly one of `{side}-netlist` and `{side}-config` must be given"),
            )),
        }
    }

    /// SAT-based combinational equivalence of two designs. Both
    /// verdicts are successful responses; a proven inequivalence
    /// carries the counterexample operands and both sides' outputs.
    fn equiv_check(
        &self,
        lhs_netlist: Option<&str>,
        lhs_config: Option<&str>,
        rhs_netlist: Option<&str>,
        rhs_config: Option<&str>,
    ) -> Result<Value, (ErrorCode, String)> {
        let lhs = self.equiv_side("lhs", lhs_netlist, lhs_config)?;
        let rhs = self.equiv_side("rhs", rhs_netlist, rhs_config)?;
        let report = check_equiv(&lhs, &rhs, &ProofOptions::default()).map_err(|e| match e {
            SatError::Interface(_) | SatError::Width(_) => (ErrorCode::BadRequest, e.to_string()),
            other => (
                ErrorCode::Internal,
                format!("equivalence check failed: {other}"),
            ),
        })?;
        let counterexample = match &report.outcome {
            EquivOutcome::Equivalent => Value::Null,
            EquivOutcome::NotEquivalent(cex) => Value::obj([
                (
                    "inputs",
                    Value::Arr(
                        cex.inputs
                            .iter()
                            .map(|(name, v)| {
                                Value::Arr(vec![Value::str(name.clone()), Value::Num(*v as f64)])
                            })
                            .collect(),
                    ),
                ),
                (
                    "lhs_outputs",
                    Value::Arr(
                        cex.lhs_outputs
                            .iter()
                            .map(|&v| Value::Num(v as f64))
                            .collect(),
                    ),
                ),
                (
                    "rhs_outputs",
                    Value::Arr(
                        cex.rhs_outputs
                            .iter()
                            .map(|&v| Value::Num(v as f64))
                            .collect(),
                    ),
                ),
            ]),
        };
        Ok(Value::obj([
            ("lhs", Value::str(lhs.name())),
            ("rhs", Value::str(rhs.name())),
            ("equivalent", Value::Bool(report.is_equivalent())),
            ("structural", Value::Bool(report.structural)),
            ("counterexample", counterexample),
            ("solves", Value::Num(report.stats.solves as f64)),
            ("conflicts", Value::Num(report.stats.conflicts as f64)),
            ("decisions", Value::Num(report.stats.decisions as f64)),
            ("elapsed_ms", Value::Num(report.stats.elapsed_ms)),
        ]))
    }

    fn lint(&self, key: &str) -> Result<Value, (ErrorCode, String)> {
        let cfg = self.config(key)?;
        let char = self
            .cache
            .characterize(&cfg)
            .map_err(|e| (ErrorCode::Internal, format!("characterization failed: {e}")))?;
        let report = self.linter.lint_against(&char.netlist, &char.multiplier());
        Ok(lint_report_value(&report))
    }

    fn nn_classify(
        &self,
        config: Option<&str>,
        images: &[Vec<u8>],
    ) -> Result<Value, (ErrorCode, String)> {
        if images.len() > MAX_BATCH_IMAGES {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "{} images exceed the {MAX_BATCH_IMAGES}-image batch limit",
                    images.len()
                ),
            ));
        }
        let model = reference_model();
        let pixels = model.input().len();
        if let Some(bad) = images.iter().position(|img| img.len() != pixels) {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "image {bad} has {} pixels, expected {pixels}",
                    images[bad].len()
                ),
            ));
        }
        let backend = self.backend(config)?;
        let predictions = infer_batch(model, backend.as_ref(), images, 1)
            .map_err(|e| (ErrorCode::Internal, format!("inference failed: {e}")))?;
        Ok(Value::obj([
            ("backend", Value::str(config.unwrap_or("exact"))),
            (
                "predictions",
                Value::Arr(
                    predictions
                        .iter()
                        .map(|&p| Value::num(u32::from(p)))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Fetches or builds the signed product table for a configuration
    /// key (`None` = exact int8).
    fn backend(&self, config: Option<&str>) -> Result<Arc<ProductTable>, (ErrorCode, String)> {
        let cache_key = config.unwrap_or("");
        if let Some(t) = self.tables.lock().expect("table lock").get(cache_key) {
            return Ok(Arc::clone(t));
        }
        let table = match config {
            None => ProductTable::exact(),
            Some(key) => {
                let cfg = self.config(key)?;
                if cfg.bits() != 8 {
                    return Err((
                        ErrorCode::InvalidConfig,
                        format!("NN backend must be 8x8, got {}x{}", cfg.bits(), cfg.bits()),
                    ));
                }
                let char = self
                    .cache
                    .characterize(&cfg)
                    .map_err(|e| (ErrorCode::Internal, format!("characterization failed: {e}")))?;
                ProductTable::new(&char.multiplier())
                    .map_err(|e| (ErrorCode::Internal, format!("tabulation failed: {e}")))?
            }
        };
        let table = Arc::new(table);
        self.tables
            .lock()
            .expect("table lock")
            .insert(cache_key.to_string(), Arc::clone(&table));
        Ok(table)
    }

    fn dse_query(&self, candidates: &[String]) -> Result<Value, (ErrorCode, String)> {
        if candidates.is_empty() {
            return Err((ErrorCode::BadRequest, "empty candidate list".into()));
        }
        if candidates.len() > MAX_DSE_CANDIDATES {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "{} candidates exceed the {MAX_DSE_CANDIDATES}-candidate limit",
                    candidates.len()
                ),
            ));
        }
        let cfgs: Vec<Config> = candidates
            .iter()
            .map(|k| self.config(k))
            .collect::<Result<_, _>>()?;
        let result = evaluate_on(&self.cache, &cfgs, self.dse_workers)
            .map_err(|e| (ErrorCode::Internal, format!("evaluation failed: {e}")))?;
        Ok(dse_result_value(&result))
    }

    /// Static bounds from the abstract interpreter. Pure tree walk, no
    /// characterization — the one request type that never touches the
    /// cache. Reuses the analysis' own JSON rendering (one source of
    /// truth for the schema); every numeric field fits `f64` exactly at
    /// the served widths.
    fn absint_query(&self, key: &str) -> Result<Value, (ErrorCode, String)> {
        let cfg = self.config(key)?;
        let analysis = axmul_dse::static_bounds(&cfg)
            .map_err(|e| (ErrorCode::InvalidConfig, e.to_string()))?;
        json::parse(&analysis.to_json())
            .map_err(|e| (ErrorCode::Internal, format!("render failed: {e}")))
    }

    fn stats(&self) -> Value {
        let c = &self.counters;
        let store = self.cache.store().map(|s| {
            Value::obj([
                ("root", Value::str(s.root().display().to_string())),
                ("records", Value::num(s.stored_records() as u32)),
            ])
        });
        Value::obj([
            ("uptime_s", Value::Num(self.started.elapsed().as_secs_f64())),
            (
                "requests",
                Value::obj([
                    (
                        "characterize-config",
                        Value::Num(c.characterize.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "lint-netlist",
                        Value::Num(c.lint.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "nn-classify-batch",
                        Value::Num(c.nn_classify.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "dse-query",
                        Value::Num(c.dse_query.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "absint-query",
                        Value::Num(c.absint_query.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "import-netlist",
                        Value::Num(c.import_netlist.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "equiv-check",
                        Value::Num(c.equiv_check.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "server-stats",
                        Value::Num(c.stats.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "errors",
                        Value::Num(c.errors.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "cache",
                Value::obj([
                    ("hits", Value::Num(self.cache.hits() as f64)),
                    ("misses", Value::Num(self.cache.misses() as f64)),
                    ("disk_hits", Value::Num(self.cache.disk_hits() as f64)),
                    ("builds", Value::Num(self.cache.builds() as f64)),
                    // Wall-clock split of this process's cache builds
                    // (error sweeps vs packed energy vs STA), so
                    // operators see where characterization time goes
                    // without re-profiling.
                    (
                        "char_time_s",
                        Value::obj([
                            (
                                "error",
                                Value::Num(self.cache.time_breakdown().error.as_secs_f64()),
                            ),
                            (
                                "energy",
                                Value::Num(self.cache.time_breakdown().energy.as_secs_f64()),
                            ),
                            (
                                "sta",
                                Value::Num(self.cache.time_breakdown().sta.as_secs_f64()),
                            ),
                        ]),
                    ),
                    (
                        "store_failures",
                        Value::Num(self.cache.store_failures() as f64),
                    ),
                    (
                        "last_store_error",
                        self.cache
                            .last_store_error()
                            .map_or(Value::Null, Value::str),
                    ),
                ]),
            ),
            ("store", store.unwrap_or(Value::Null)),
        ])
    }
}

/// Renders a proven-inequivalent verdict's counterexample as one
/// human-readable sentence for error messages.
fn counterexample_text(report: &EquivReport) -> String {
    match &report.outcome {
        EquivOutcome::Equivalent => "the designs are equivalent".into(),
        EquivOutcome::NotEquivalent(cex) => {
            let inputs = cex
                .inputs
                .iter()
                .map(|(name, v)| format!("{name}={v}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "SAT counterexample at {inputs} (outputs {:?} vs {:?})",
                cex.lhs_outputs, cex.rhs_outputs
            )
        }
    }
}

/// Converts a [`LintReport`] to a protocol value by parsing the lint
/// crate's own JSON rendering — one source of truth for the schema.
fn lint_report_value(report: &LintReport) -> Value {
    json::parse(&report.to_json()).unwrap_or_else(|e| {
        Value::obj([
            ("netlist", Value::str(report.netlist.clone())),
            ("render_error", Value::str(e.to_string())),
        ])
    })
}

fn dse_result_value(result: &DseResult) -> Value {
    let reports = result
        .reports
        .iter()
        .map(|r| {
            Value::obj([
                ("key", Value::str(r.key.clone())),
                ("bits", Value::num(r.bits)),
                ("luts", Value::num(r.luts as u32)),
                ("critical_path_ns", Value::Num(r.critical_path_ns)),
                ("energy_per_op", Value::Num(r.energy_per_op)),
                ("edp", Value::Num(r.edp)),
                ("avg_error", Value::Num(r.avg_error)),
                ("avg_relative_error", Value::Num(r.avg_relative_error)),
                ("max_error", Value::Num(r.max_error as f64)),
                ("error_probability", Value::Num(r.error_probability)),
                ("on_lut_front", Value::Bool(r.on_lut_front)),
                ("on_edp_front", Value::Bool(r.on_edp_front)),
            ])
        })
        .collect();
    Value::obj([
        ("reports", Value::Arr(reports)),
        ("cache_hits", Value::Num(result.cache_hits as f64)),
        ("cache_misses", Value::Num(result.cache_misses as f64)),
        ("cache_disk_hits", Value::Num(result.cache_disk_hits as f64)),
        ("cache_builds", Value::Num(result.cache_builds as f64)),
        ("elapsed_us", Value::Num(result.elapsed.as_micros() as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{render_request, Request};

    fn response(svc: &Service, op: Op) -> Value {
        let payload = render_request(&Request { id: 1, op });
        let out = svc.handle_payload(&payload);
        json::parse(std::str::from_utf8(&out).unwrap()).unwrap()
    }

    fn assert_ok(v: &Value) -> &Value {
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v}");
        v.get("result").unwrap()
    }

    fn assert_err(v: &Value, code: &str) {
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{v}");
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Value::as_str), Some(code), "{v}");
    }

    #[test]
    fn characterize_reports_cost_and_stats() {
        let svc = Service::new(None);
        let v = response(
            &svc,
            Op::Characterize {
                config: "(a A A A A)".into(),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("bits").and_then(Value::as_u64), Some(8));
        let luts = r
            .get("cost")
            .unwrap()
            .get("luts")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(luts > 0);
        let stats = r.get("stats").unwrap();
        assert_eq!(stats.get("samples").and_then(Value::as_u64), Some(65536));
        let are = stats
            .get("avg_relative_error")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(are.is_finite() && are >= 0.0, "{are}");
    }

    #[test]
    fn invalid_and_oversized_configs_are_typed_errors() {
        let svc = Service::new(None);
        assert_err(
            &response(
                &svc,
                Op::Characterize {
                    config: "(a A A".into(),
                },
            ),
            "invalid-config",
        );
        // 32-bit key: within the parser's limits, beyond the serving cap.
        let wide = "(a (a A A A A) (a A A A A) (a A A A A) (a A A A A))";
        let wide32 = format!("(a {wide} {wide} {wide} {wide})");
        assert_err(
            &response(&svc, Op::Characterize { config: wide32 }),
            "invalid-config",
        );
    }

    #[test]
    fn lint_of_shipped_config_is_clean_of_errors() {
        let svc = Service::new(None);
        let v = response(
            &svc,
            Op::Lint {
                config: "(c A A A A)".into(),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("errors").and_then(Value::as_u64), Some(0), "{r}");
        assert!(r.get("luts").and_then(Value::as_u64).unwrap() > 0);
    }

    #[test]
    fn nn_classify_matches_direct_inference() {
        let svc = Service::new(None);
        let ds = axmul_nn::test_set();
        let images: Vec<Vec<u8>> = ds.images[..8].to_vec();
        // `config: null` selects the exact int8 backend, so the served
        // predictions must match direct in-process inference exactly.
        let v = response(
            &svc,
            Op::NnClassify {
                config: None,
                images: images.clone(),
            },
        );
        let r = assert_ok(&v);
        let got: Vec<u64> = r
            .get("predictions")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|p| p.as_u64().unwrap())
            .collect();
        let table = ProductTable::exact();
        let want = infer_batch(reference_model(), &table, &images, 1).unwrap();
        assert_eq!(got, want.iter().map(|&p| u64::from(p)).collect::<Vec<_>>());

        // An approximate backend still classifies the whole batch.
        let v = response(
            &svc,
            Op::NnClassify {
                config: Some("(a A A A A)".into()),
                images: images.clone(),
            },
        );
        let preds = assert_ok(&v)
            .get("predictions")
            .and_then(Value::as_arr)
            .unwrap()
            .len();
        assert_eq!(preds, images.len());
    }

    #[test]
    fn nn_classify_rejects_wrong_pixel_counts() {
        let svc = Service::new(None);
        let v = response(
            &svc,
            Op::NnClassify {
                config: None,
                images: vec![vec![0; 63]],
            },
        );
        assert_err(&v, "bad-request");
    }

    #[test]
    fn dse_query_ranks_candidates_and_flags_fronts() {
        let svc = Service::new(None);
        let v = response(
            &svc,
            Op::DseQuery {
                candidates: vec![
                    "(a A A A A)".into(),
                    "(c X X X X)".into(),
                    "(a T3 A X X)".into(),
                ],
            },
        );
        let r = assert_ok(&v);
        let reports = r.get("reports").and_then(Value::as_arr).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports
            .iter()
            .any(|rep| rep.get("on_lut_front") == Some(&Value::Bool(true))));
    }

    #[test]
    fn absint_query_returns_sound_bounds_without_touching_the_cache() {
        let svc = Service::new(None);
        let v = response(
            &svc,
            Op::AbsintQuery {
                config: "(a A A A A)".into(),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("bits").and_then(Value::as_u64), Some(8));
        // Uniform accurate paper config: the bracket is exact.
        assert_eq!(r.get("wce_lb").and_then(Value::as_u64), Some(2312));
        assert_eq!(r.get("wce_ub").and_then(Value::as_u64), Some(2312));
        assert_eq!(r.get("sound"), Some(&Value::Bool(true)), "{r}");
        // Static analysis must not have characterized anything.
        assert_eq!(svc.cache().builds(), 0);
        assert_err(
            &response(
                &svc,
                Op::AbsintQuery {
                    config: "(a A".into(),
                },
            ),
            "invalid-config",
        );
    }

    #[test]
    fn import_netlist_round_trips_an_exported_design() {
        let svc = Service::new(None);
        let cfg: axmul_dse::Config = "(a A A A A)".parse().unwrap();
        let text = axmul_fabric::export::to_verilog(&cfg.assemble());
        // No config hint: structure + lint only.
        let v = response(
            &svc,
            Op::ImportNetlist {
                text: text.clone(),
                format: None,
                config: None,
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("format").and_then(Value::as_str), Some("verilog"));
        assert!(r.get("luts").and_then(Value::as_u64).unwrap() > 0);
        assert_eq!(
            r.get("lint").unwrap().get("errors").and_then(Value::as_u64),
            Some(0),
            "{r}"
        );
        assert_eq!(r.get("characterization"), Some(&Value::Null));

        // With the matching config: full characterization, including
        // the worst-case witnesses (stats carry `worst_case_inputs`).
        let v = response(
            &svc,
            Op::ImportNetlist {
                text,
                format: Some("verilog".into()),
                config: Some("(a A A A A)".into()),
            },
        );
        let r = assert_ok(&v);
        let ch = r.get("characterization").unwrap();
        assert_eq!(ch.get("bits").and_then(Value::as_u64), Some(8));
        let wci = ch
            .get("stats")
            .unwrap()
            .get("worst_case_inputs")
            .and_then(Value::as_arr)
            .unwrap();
        assert!(!wci.is_empty(), "{r}");
    }

    #[test]
    fn import_netlist_rejects_malformed_and_mismatched_input() {
        let svc = Service::new(None);
        // Typed importer error, surfaced with its class code.
        let v = response(
            &svc,
            Op::ImportNetlist {
                text: "module broken (".into(),
                format: None,
                config: None,
            },
        );
        assert_err(&v, "invalid-netlist");
        // A valid netlist that does not implement the claimed config.
        let cfg: axmul_dse::Config = "(c X X X X)".parse().unwrap();
        let text = axmul_fabric::export::to_verilog(&cfg.assemble());
        let v = response(
            &svc,
            Op::ImportNetlist {
                text,
                format: None,
                config: Some("(a A A A A)".into()),
            },
        );
        assert_err(&v, "invalid-netlist");
        // Unknown explicit format string.
        let v = response(
            &svc,
            Op::ImportNetlist {
                text: "module m (\n  input wire a\n);\nendmodule\n".into(),
                format: Some("edif".into()),
                config: None,
            },
        );
        assert_err(&v, "bad-request");
    }

    #[test]
    fn equiv_check_proves_and_refutes_config_pairs() {
        let svc = Service::new(None);
        // Same configuration on both sides: the twins are structurally
        // identical, so the miter folds away without a single solve.
        let v = response(
            &svc,
            Op::EquivCheck {
                lhs_netlist: None,
                lhs_config: Some("(a A A A A)".into()),
                rhs_netlist: None,
                rhs_config: Some("(a A A A A)".into()),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("equivalent"), Some(&Value::Bool(true)), "{r}");
        assert_eq!(r.get("structural"), Some(&Value::Bool(true)), "{r}");
        assert_eq!(r.get("counterexample"), Some(&Value::Null));

        // Different multipliers: a successful response carrying the
        // counterexample operand pair and both sides' outputs.
        let v = response(
            &svc,
            Op::EquivCheck {
                lhs_netlist: None,
                lhs_config: Some("(a A A A A)".into()),
                rhs_netlist: None,
                rhs_config: Some("(c X X X X)".into()),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("equivalent"), Some(&Value::Bool(false)), "{r}");
        let cex = r.get("counterexample").unwrap();
        let inputs = cex.get("inputs").and_then(Value::as_arr).unwrap();
        assert_eq!(inputs.len(), 2, "{r}");
        let lhs_out = cex.get("lhs_outputs").and_then(Value::as_arr).unwrap();
        let rhs_out = cex.get("rhs_outputs").and_then(Value::as_arr).unwrap();
        assert_ne!(lhs_out, rhs_out, "{r}");
    }

    #[test]
    fn equiv_check_accepts_netlist_sides_and_rejects_bad_ones() {
        let svc = Service::new(None);
        let cfg: axmul_dse::Config = "(a A A A A)".parse().unwrap();
        let text = axmul_fabric::export::to_verilog(&cfg.assemble());
        let v = response(
            &svc,
            Op::EquivCheck {
                lhs_netlist: Some(text),
                lhs_config: None,
                rhs_netlist: None,
                rhs_config: Some("(a A A A A)".into()),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("equivalent"), Some(&Value::Bool(true)), "{r}");

        // Typed errors: malformed netlist, unparseable config, and a
        // hand-built op with an ambiguous side.
        assert_err(
            &response(
                &svc,
                Op::EquivCheck {
                    lhs_netlist: Some("module broken (".into()),
                    lhs_config: None,
                    rhs_netlist: None,
                    rhs_config: Some("(a A A A A)".into()),
                },
            ),
            "invalid-netlist",
        );
        assert_err(
            &response(
                &svc,
                Op::EquivCheck {
                    lhs_netlist: None,
                    lhs_config: Some("(a A A".into()),
                    rhs_netlist: None,
                    rhs_config: Some("(a A A A A)".into()),
                },
            ),
            "invalid-config",
        );
        assert_err(
            &response(
                &svc,
                Op::EquivCheck {
                    lhs_netlist: None,
                    lhs_config: None,
                    rhs_netlist: None,
                    rhs_config: Some("(a A A A A)".into()),
                },
            ),
            "bad-request",
        );
        // Mismatched interfaces (8-bit vs 4-bit operands) are a typed
        // request error, not an internal failure.
        assert_err(
            &response(
                &svc,
                Op::EquivCheck {
                    lhs_netlist: None,
                    lhs_config: Some("(a A A A A)".into()),
                    rhs_netlist: None,
                    rhs_config: Some("A".into()),
                },
            ),
            "bad-request",
        );
    }

    #[test]
    fn import_netlist_accepts_structural_variants_via_sat() {
        let svc = Service::new(None);
        let cfg: axmul_dse::Config = "(a A A A A)".parse().unwrap();
        let twin = cfg.assemble();
        // Same logic under a different module name: the content
        // fingerprint differs, but SAT proves equivalence and the
        // import goes through with a note instead of a rejection.
        let renamed = axmul_fabric::Netlist::from_parts(
            "renamed_variant".to_string(),
            twin.drivers().to_vec(),
            twin.cells().to_vec(),
            twin.input_buses().to_vec(),
            twin.output_buses().to_vec(),
        );
        assert_ne!(
            axmul_netio::fingerprint(&renamed),
            axmul_netio::fingerprint(&twin)
        );
        let v = response(
            &svc,
            Op::ImportNetlist {
                text: axmul_fabric::export::to_verilog(&renamed),
                format: None,
                config: Some("(a A A A A)".into()),
            },
        );
        let r = assert_ok(&v);
        let note = r.get("verify_note").and_then(Value::as_str).unwrap();
        assert!(note.contains("equivalent"), "{note}");
        assert!(
            r.get("characterization")
                .unwrap()
                .get("bits")
                .and_then(Value::as_u64)
                == Some(8),
            "{r}"
        );
        // A fingerprint match still short-circuits: no note.
        let v = response(
            &svc,
            Op::ImportNetlist {
                text: axmul_fabric::export::to_verilog(&twin),
                format: None,
                config: Some("(a A A A A)".into()),
            },
        );
        let r = assert_ok(&v);
        assert_eq!(r.get("verify_note"), Some(&Value::Null), "{r}");
    }

    #[test]
    fn stats_counts_requests_and_exposes_cache_counters() {
        let svc = Service::new(None);
        let _ = response(&svc, Op::Characterize { config: "A".into() });
        let _ = response(
            &svc,
            Op::Characterize {
                config: "bogus(".into(),
            },
        );
        let v = response(&svc, Op::Stats);
        let r = assert_ok(&v);
        let reqs = r.get("requests").unwrap();
        assert_eq!(
            reqs.get("characterize-config").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(reqs.get("errors").and_then(Value::as_u64), Some(1));
        let cache = r.get("cache").unwrap();
        assert_eq!(cache.get("builds").and_then(Value::as_u64), Some(1));
        // One build happened, so the characterization time split is
        // present and the energy+STA share is a real, positive number.
        let split = cache.get("char_time_s").unwrap();
        for phase in ["error", "energy", "sta"] {
            assert!(
                split
                    .get(phase)
                    .is_some_and(|v| matches!(v, Value::Num(s) if *s >= 0.0)),
                "missing char_time_s.{phase}"
            );
        }
        assert_eq!(r.get("store"), Some(&Value::Null));
    }
}
