//! Wire protocol: length-prefixed JSON frames and typed requests.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"AX"
//! 2       1     protocol version (currently 1)
//! 3       1     reserved, must be 0
//! 4       4     payload length, u32 little-endian
//! 8       n     payload: one UTF-8 JSON document
//! ```
//!
//! Frames are the unit of recovery: a malformed JSON payload gets an
//! error *response* on the same connection (the stream is still in
//! sync), whereas a bad magic, unknown version, or oversized length
//! prefix means the byte stream itself cannot be trusted — the server
//! answers with one final typed error frame and closes the connection.

use std::fmt;
use std::io::{self, Read, Write};

use crate::json::{self, Value};

/// Protocol version carried in every frame header.
pub const PROTO_VERSION: u8 = 1;

/// Frame magic, the first two bytes on the wire.
pub const MAGIC: [u8; 2] = *b"AX";

/// Default cap on payload size (4 MiB). A hostile length prefix must
/// not make the server allocate unbounded memory.
pub const DEFAULT_MAX_FRAME: u32 = 4 << 20;

/// Header size in bytes.
pub const HEADER_LEN: usize = 8;

/// Failure to read a frame off the wire.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (includes mid-frame EOF).
    Io(io::Error),
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte is not [`PROTO_VERSION`].
    UnsupportedVersion(u8),
    /// The length prefix exceeds the configured maximum.
    Oversized {
        /// Length the peer claimed.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::BadMagic(m) => {
                write!(
                    f,
                    "bad frame magic {:#04x}{:02x} (expected \"AX\")",
                    m[0], m[1]
                )
            }
            FrameError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this server speaks {PROTO_VERSION})"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream — the peer hung
/// up exactly on a frame boundary. EOF mid-frame is an [`FrameError::Io`]
/// with [`io::ErrorKind::UnexpectedEof`].
///
/// # Errors
///
/// Any header violation or transport failure; see [`FrameError`].
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "no more frames" from "died mid-header".
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r, max_payload);
        }
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut header[1..])?;
    if header[..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    if header[2] != PROTO_VERSION {
        return Err(FrameError::UnsupportedVersion(header[2]));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates transport errors; payloads over `u32::MAX` are a caller
/// bug and reported as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32"))?;
    // One write per frame: a separate header write would leave a tiny
    // unacknowledged segment for Nagle's algorithm to sit on, costing a
    // delayed-ACK round trip (~40 ms) per request on TCP transports.
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(PROTO_VERSION);
    frame.push(0);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Machine-readable error codes carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame header was malformed (bad magic).
    MalformedFrame,
    /// The payload length prefix exceeded the server limit.
    Oversized,
    /// The frame declared a protocol version the server doesn't speak.
    UnsupportedVersion,
    /// The payload was not valid JSON.
    BadJson,
    /// The JSON was valid but not a well-formed request envelope.
    BadRequest,
    /// A multiplier configuration key failed to parse or validate.
    InvalidConfig,
    /// An imported netlist document failed to parse or validate; the
    /// message carries the importer's own error class and location.
    InvalidNetlist,
    /// The request was valid but the server failed to execute it.
    Internal,
}

impl ErrorCode {
    /// Wire spelling of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::InvalidConfig => "invalid-config",
            ErrorCode::InvalidNetlist => "invalid-netlist",
            ErrorCode::Internal => "internal",
        }
    }
}

/// One parsed request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed back in the response.
    pub id: u64,
    /// The operation to perform.
    pub op: Op,
}

/// The operations the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Characterize one multiplier configuration: cost + error stats.
    Characterize {
        /// Canonical configuration key, e.g. `(a A A A A)`.
        config: String,
    },
    /// Lint the netlist of a configuration.
    Lint {
        /// Canonical configuration key.
        config: String,
    },
    /// Run a batch of 8×8 images through the int8 MNIST model.
    NnClassify {
        /// Configuration key for the MAC multiplier; `None` = exact.
        config: Option<String>,
        /// Row-major 8×8 grayscale images, 64 bytes each.
        images: Vec<Vec<u8>>,
    },
    /// Evaluate a set of candidate configurations and rank them.
    DseQuery {
        /// Candidate configuration keys.
        candidates: Vec<String>,
    },
    /// Static error/range bounds of a configuration from the abstract
    /// interpreter — no simulation, answers in microseconds.
    AbsintQuery {
        /// Canonical configuration key.
        config: String,
    },
    /// Import an external netlist document (structural Verilog or
    /// `axnl-v1` JSON), validate it, and answer with its fingerprint,
    /// structure summary, and lint verdict — optionally matched
    /// against a configuration's in-process twin and characterized
    /// through the warm cache.
    ImportNetlist {
        /// The interchange document itself.
        text: String,
        /// Explicit format (`"verilog"` / `"axnl"`); `None` = detect.
        format: Option<String>,
        /// Configuration key the netlist claims to implement; when
        /// given, the server checks fingerprint equality against
        /// `config.assemble()` and answers with the cached
        /// characterization.
        config: Option<String>,
    },
    /// SAT-based combinational equivalence check between two designs.
    /// Each side is either a netlist interchange document or a
    /// configuration key (resolved to its in-process twin); exactly one
    /// of the two must be given per side. A proven inequivalence is a
    /// *successful* response carrying the counterexample operand pair
    /// and both sides' outputs at it.
    EquivCheck {
        /// Left-hand interchange document (Verilog or `axnl-v1`).
        lhs_netlist: Option<String>,
        /// Left-hand configuration key, e.g. `(a A A A A)`.
        lhs_config: Option<String>,
        /// Right-hand interchange document.
        rhs_netlist: Option<String>,
        /// Right-hand configuration key.
        rhs_config: Option<String>,
    },
    /// Server counters: requests served, cache hits, builds, uptime.
    Stats,
}

impl Op {
    /// Wire name of the request type.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Op::Characterize { .. } => "characterize-config",
            Op::Lint { .. } => "lint-netlist",
            Op::NnClassify { .. } => "nn-classify-batch",
            Op::DseQuery { .. } => "dse-query",
            Op::AbsintQuery { .. } => "absint-query",
            Op::ImportNetlist { .. } => "import-netlist",
            Op::EquivCheck { .. } => "equiv-check",
            Op::Stats => "server-stats",
        }
    }
}

/// A request that failed to parse: the envelope error plus whatever id
/// could be recovered, so the error response still correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Recovered correlation id (0 when unrecoverable).
    pub id: u64,
    /// Which class of failure.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Parses a request payload into a typed [`Request`].
///
/// # Errors
///
/// [`RequestError`] with code `bad-json` for unparseable payloads and
/// `bad-request` for structurally invalid envelopes.
pub fn parse_request(payload: &[u8]) -> Result<Request, RequestError> {
    let fail = |id, code, message: String| Err(RequestError { id, code, message });
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(e) => return fail(0, ErrorCode::BadJson, format!("payload is not UTF-8: {e}")),
    };
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return fail(0, ErrorCode::BadJson, e.to_string()),
    };
    let id = doc.get("id").and_then(Value::as_u64).unwrap_or(0);
    let Some(ty) = doc.get("type").and_then(Value::as_str) else {
        return fail(
            id,
            ErrorCode::BadRequest,
            "missing string field `type`".into(),
        );
    };
    let params = doc.get("params").cloned().unwrap_or(Value::Null);
    let str_param = |name: &str| -> Result<String, RequestError> {
        params
            .get(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| RequestError {
                id,
                code: ErrorCode::BadRequest,
                message: format!("missing string param `{name}`"),
            })
    };
    let op = match ty {
        "characterize-config" => Op::Characterize {
            config: str_param("config")?,
        },
        "lint-netlist" => Op::Lint {
            config: str_param("config")?,
        },
        "nn-classify-batch" => {
            let config = match params.get("config") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => {
                    return fail(
                        id,
                        ErrorCode::BadRequest,
                        "`config` must be a string or null".into(),
                    )
                }
            };
            let Some(raw) = params.get("images").and_then(Value::as_arr) else {
                return fail(
                    id,
                    ErrorCode::BadRequest,
                    "missing array param `images`".into(),
                );
            };
            let mut images = Vec::with_capacity(raw.len());
            for (i, img) in raw.iter().enumerate() {
                let Some(pixels) = img.as_arr() else {
                    return fail(
                        id,
                        ErrorCode::BadRequest,
                        format!("image {i} is not an array"),
                    );
                };
                let mut bytes = Vec::with_capacity(pixels.len());
                for p in pixels {
                    match p.as_u64() {
                        Some(v) if v <= 255 => bytes.push(v as u8),
                        _ => {
                            return fail(
                                id,
                                ErrorCode::BadRequest,
                                format!("image {i} has a pixel outside 0..=255"),
                            )
                        }
                    }
                }
                images.push(bytes);
            }
            Op::NnClassify { config, images }
        }
        "dse-query" => {
            let Some(raw) = params.get("candidates").and_then(Value::as_arr) else {
                return fail(
                    id,
                    ErrorCode::BadRequest,
                    "missing array param `candidates`".into(),
                );
            };
            let mut candidates = Vec::with_capacity(raw.len());
            for (i, c) in raw.iter().enumerate() {
                match c.as_str() {
                    Some(s) => candidates.push(s.to_owned()),
                    None => {
                        return fail(
                            id,
                            ErrorCode::BadRequest,
                            format!("candidate {i} is not a string"),
                        )
                    }
                }
            }
            Op::DseQuery { candidates }
        }
        "absint-query" => Op::AbsintQuery {
            config: str_param("config")?,
        },
        "import-netlist" => {
            let opt_str = |name: &str| -> Result<Option<String>, RequestError> {
                match params.get(name) {
                    None | Some(Value::Null) => Ok(None),
                    Some(Value::Str(s)) => Ok(Some(s.clone())),
                    Some(_) => Err(RequestError {
                        id,
                        code: ErrorCode::BadRequest,
                        message: format!("`{name}` must be a string or null"),
                    }),
                }
            };
            Op::ImportNetlist {
                text: str_param("text")?,
                format: opt_str("format")?,
                config: opt_str("config")?,
            }
        }
        "equiv-check" => {
            let opt_str = |name: &str| -> Result<Option<String>, RequestError> {
                match params.get(name) {
                    None | Some(Value::Null) => Ok(None),
                    Some(Value::Str(s)) => Ok(Some(s.clone())),
                    Some(_) => Err(RequestError {
                        id,
                        code: ErrorCode::BadRequest,
                        message: format!("`{name}` must be a string or null"),
                    }),
                }
            };
            let op = Op::EquivCheck {
                lhs_netlist: opt_str("lhs-netlist")?,
                lhs_config: opt_str("lhs-config")?,
                rhs_netlist: opt_str("rhs-netlist")?,
                rhs_config: opt_str("rhs-config")?,
            };
            // Exactly one description per side, caught at the envelope
            // layer so the service never sees an ambiguous request.
            if let Op::EquivCheck {
                lhs_netlist,
                lhs_config,
                rhs_netlist,
                rhs_config,
            } = &op
            {
                for (side, netlist, config) in [
                    ("lhs", lhs_netlist, lhs_config),
                    ("rhs", rhs_netlist, rhs_config),
                ] {
                    if netlist.is_some() == config.is_some() {
                        return fail(
                            id,
                            ErrorCode::BadRequest,
                            format!(
                                "exactly one of `{side}-netlist` and `{side}-config` must be given"
                            ),
                        );
                    }
                }
            }
            op
        }
        "server-stats" => Op::Stats,
        other => {
            return fail(
                id,
                ErrorCode::BadRequest,
                format!("unknown request type `{other}`"),
            )
        }
    };
    Ok(Request { id, op })
}

/// Renders a request envelope (used by the client and load generator).
#[must_use]
pub fn render_request(req: &Request) -> Vec<u8> {
    let params = match &req.op {
        Op::Characterize { config } | Op::Lint { config } | Op::AbsintQuery { config } => {
            Value::obj([("config", Value::str(config.clone()))])
        }
        Op::NnClassify { config, images } => {
            let imgs = Value::Arr(
                images
                    .iter()
                    .map(|img| Value::Arr(img.iter().map(|&p| Value::num(u32::from(p))).collect()))
                    .collect(),
            );
            let cfg = match config {
                Some(c) => Value::str(c.clone()),
                None => Value::Null,
            };
            Value::obj([("config", cfg), ("images", imgs)])
        }
        Op::DseQuery { candidates } => Value::obj([(
            "candidates",
            Value::Arr(candidates.iter().map(|c| Value::str(c.clone())).collect()),
        )]),
        Op::ImportNetlist {
            text,
            format,
            config,
        } => {
            let opt = |v: &Option<String>| match v {
                Some(s) => Value::str(s.clone()),
                None => Value::Null,
            };
            Value::obj([
                ("text", Value::str(text.clone())),
                ("format", opt(format)),
                ("config", opt(config)),
            ])
        }
        Op::EquivCheck {
            lhs_netlist,
            lhs_config,
            rhs_netlist,
            rhs_config,
        } => {
            let opt = |v: &Option<String>| match v {
                Some(s) => Value::str(s.clone()),
                None => Value::Null,
            };
            Value::obj([
                ("lhs-netlist", opt(lhs_netlist)),
                ("lhs-config", opt(lhs_config)),
                ("rhs-netlist", opt(rhs_netlist)),
                ("rhs-config", opt(rhs_config)),
            ])
        }
        Op::Stats => Value::obj([]),
    };
    let doc = Value::obj([
        ("id", Value::Num(req.id as f64)),
        ("type", Value::str(req.op.type_name())),
        ("params", params),
    ]);
    doc.to_string().into_bytes()
}

/// Renders a success response envelope.
#[must_use]
pub fn render_ok(id: u64, result: Value) -> Vec<u8> {
    Value::obj([
        ("id", Value::Num(id as f64)),
        ("ok", Value::Bool(true)),
        ("result", result),
    ])
    .to_string()
    .into_bytes()
}

/// Renders an error response envelope.
#[must_use]
pub fn render_err(id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    Value::obj([
        ("id", Value::Num(id as f64)),
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::obj([
                ("code", Value::str(code.as_str())),
                ("message", Value::str(message)),
            ]),
        ),
    ])
    .to_string()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"id\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"{\"id\":1}"
        );
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn frame_header_violations_are_typed() {
        let mut bad_magic = Vec::new();
        write_frame(&mut bad_magic, b"x").unwrap();
        bad_magic[0] = b'Z';
        assert!(matches!(
            read_frame(&mut Cursor::new(bad_magic), DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = Vec::new();
        write_frame(&mut bad_version, b"x").unwrap();
        bad_version[2] = 99;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad_version), DEFAULT_MAX_FRAME),
            Err(FrameError::UnsupportedVersion(99))
        ));

        let mut oversized = Vec::new();
        write_frame(&mut oversized, b"xxxxxxxx").unwrap();
        assert!(matches!(
            read_frame(&mut Cursor::new(oversized), 4),
            Err(FrameError::Oversized { len: 8, max: 4 })
        ));

        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"hello").unwrap();
        truncated.truncate(truncated.len() - 2);
        match read_frame(&mut Cursor::new(truncated), DEFAULT_MAX_FRAME) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn request_envelopes_round_trip() {
        let reqs = [
            Request {
                id: 7,
                op: Op::Characterize {
                    config: "(a A A A A)".into(),
                },
            },
            Request {
                id: 8,
                op: Op::Lint {
                    config: "T2".into(),
                },
            },
            Request {
                id: 9,
                op: Op::NnClassify {
                    config: Some("(c A A A A)".into()),
                    images: vec![vec![0; 64], vec![255; 64]],
                },
            },
            Request {
                id: 10,
                op: Op::NnClassify {
                    config: None,
                    images: vec![],
                },
            },
            Request {
                id: 11,
                op: Op::DseQuery {
                    candidates: vec!["A".into(), "(a X X X X)".into()],
                },
            },
            Request {
                id: 12,
                op: Op::AbsintQuery {
                    config: "(c A A A A)".into(),
                },
            },
            Request {
                id: 13,
                op: Op::Stats,
            },
            Request {
                id: 14,
                op: Op::ImportNetlist {
                    text: "module m (\n  input  wire a\n);\nendmodule\n".into(),
                    format: Some("verilog".into()),
                    config: Some("(a A A A A)".into()),
                },
            },
            Request {
                id: 15,
                op: Op::ImportNetlist {
                    text: "{\"format\":\"axnl-v1\"}".into(),
                    format: None,
                    config: None,
                },
            },
            Request {
                id: 16,
                op: Op::EquivCheck {
                    lhs_netlist: Some("module m (\n  input  wire a\n);\nendmodule\n".into()),
                    lhs_config: None,
                    rhs_netlist: None,
                    rhs_config: Some("(a A A A A)".into()),
                },
            },
            Request {
                id: 17,
                op: Op::EquivCheck {
                    lhs_netlist: None,
                    lhs_config: Some("(c X X X X)".into()),
                    rhs_netlist: None,
                    rhs_config: Some("(a A A A A)".into()),
                },
            },
        ];
        for req in reqs {
            let bytes = render_request(&req);
            assert_eq!(
                parse_request(&bytes).unwrap(),
                req,
                "{}",
                req.op.type_name()
            );
        }
    }

    #[test]
    fn request_errors_keep_the_id_when_recoverable() {
        let e = parse_request(b"{\"id\": 42, \"type\": \"no-such-op\"}").unwrap_err();
        assert_eq!(e.id, 42);
        assert_eq!(e.code, ErrorCode::BadRequest);

        let e = parse_request(b"{\"id\": 42, \"type\": \"lint-netlist\"}").unwrap_err();
        assert_eq!(e.id, 42);
        assert_eq!(e.code, ErrorCode::BadRequest);

        let e = parse_request(b"not json at all").unwrap_err();
        assert_eq!(e.id, 0);
        assert_eq!(e.code, ErrorCode::BadJson);
    }

    #[test]
    fn equiv_check_requires_exactly_one_description_per_side() {
        // Neither description on the rhs.
        let raw = br#"{"id":3,"type":"equiv-check","params":{"lhs-config":"A"}}"#;
        let e = parse_request(raw).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("rhs"), "{}", e.message);
        // Both descriptions on the lhs.
        let raw = br#"{"id":3,"type":"equiv-check","params":{"lhs-config":"A","lhs-netlist":"x","rhs-config":"A"}}"#;
        let e = parse_request(raw).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("lhs"), "{}", e.message);
        // Non-string side.
        let raw = br#"{"id":3,"type":"equiv-check","params":{"lhs-config":7,"rhs-config":"A"}}"#;
        assert_eq!(parse_request(raw).unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn bad_pixels_and_candidates_are_rejected() {
        let raw = br#"{"id":1,"type":"nn-classify-batch","params":{"images":[[300]]}}"#;
        assert_eq!(parse_request(raw).unwrap_err().code, ErrorCode::BadRequest);
        let raw = br#"{"id":1,"type":"dse-query","params":{"candidates":[1,2]}}"#;
        assert_eq!(parse_request(raw).unwrap_err().code, ErrorCode::BadRequest);
    }
}
