//! Cache-directory management: a thin policy layer over the dse
//! crate's [`DiskStore`].
//!
//! The store itself (record format, sharding, atomicity) lives in
//! `axmul-dse` so that both the daemon and the offline `repro ext-dse`
//! flow share one on-disk format; this module only decides *where* the
//! directory lives and reports on it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use axmul_dse::{DiskStore, StoreError};

/// Directory name used under a state root when the caller doesn't pick
/// an explicit `--cache-dir`.
pub const DEFAULT_DIR_NAME: &str = "axmul-cache";

/// Resolves the default cache directory: `$XDG_STATE_HOME/axmul-cache`,
/// falling back to `<tmp>/axmul-cache` when no state home is set.
/// Consulting the environment keeps warm starts working across runs
/// without any flags.
#[must_use]
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("XDG_STATE_HOME") {
        Some(state) if !state.is_empty() => PathBuf::from(state).join(DEFAULT_DIR_NAME),
        _ => std::env::temp_dir().join(DEFAULT_DIR_NAME),
    }
}

/// Opens (creating if needed) the persistent store under `dir`, or
/// under [`default_cache_dir`] when `dir` is `None`.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn open_store(dir: Option<&Path>) -> Result<Arc<DiskStore>, StoreError> {
    let dir = dir.map_or_else(default_cache_dir, Path::to_path_buf);
    Ok(Arc::new(DiskStore::open(&dir)?))
}

/// A human-readable one-liner about a store, for startup banners and
/// `server-stats`.
#[must_use]
pub fn describe(store: &DiskStore) -> String {
    format!(
        "{} ({} records)",
        store.root().display(),
        store.stored_records()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_store_creates_the_directory() {
        let dir = std::env::temp_dir().join(format!("axmul_storage_t_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = open_store(Some(&dir)).unwrap();
        assert!(store.root().is_dir());
        assert_eq!(store.stored_records(), 0);
        assert!(describe(&store).contains("0 records"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
