//! Blocking client for the daemon's protocol, used by the CLI, the
//! load generator, and the integration tests.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::json::{self, Value};
use crate::proto::{
    read_frame, render_request, write_frame, FrameError, Op, Request, DEFAULT_MAX_FRAME,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing problem.
    Frame(FrameError),
    /// The server closed the connection instead of responding.
    Disconnected,
    /// The response payload was not valid JSON.
    BadResponse(String),
    /// The server answered with an error envelope.
    Server {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
            ClientError::BadResponse(m) => write!(f, "unparseable response: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// One connection to the daemon.
pub struct Client {
    transport: Transport,
    next_id: u64,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connect/timeout-configuration failures.
    pub fn connect_tcp(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            transport: Transport::Tcp(stream),
            next_id: 1,
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connect/timeout-configuration failures.
    pub fn connect_unix(path: &Path) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            transport: Transport::Unix(stream),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response. Returns the
    /// `result` value of a success envelope; error envelopes become
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call(&mut self, op: Op) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = render_request(&Request { id, op });
        write_frame(&mut self.transport, &payload)?;
        self.read_response()
    }

    /// Sends a raw payload (possibly malformed, for tests) and reads
    /// whatever envelope comes back.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call_raw(&mut self, payload: &[u8]) -> Result<Value, ClientError> {
        write_frame(&mut self.transport, payload)?;
        match self.read_response() {
            // A server-side error envelope is the expected outcome here;
            // surface it as a value so tests can inspect the code.
            Err(ClientError::Server { code, message }) => Ok(Value::obj([
                ("code", Value::str(code)),
                ("message", Value::str(message)),
            ])),
            other => other,
        }
    }

    fn read_response(&mut self) -> Result<Value, ClientError> {
        let Some(payload) = read_frame(&mut self.transport, DEFAULT_MAX_FRAME)? else {
            return Err(ClientError::Disconnected);
        };
        let text =
            std::str::from_utf8(&payload).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        let doc = json::parse(text).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        match doc.get("ok").and_then(Value::as_bool) {
            Some(true) => doc
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::BadResponse("missing `result`".into())),
            Some(false) => {
                let err = doc.get("error").cloned().unwrap_or(Value::Null);
                Err(ClientError::Server {
                    code: err
                        .get("code")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    message: err
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                })
            }
            None => Err(ClientError::BadResponse("missing `ok`".into())),
        }
    }
}
