//! Load generator: drives a real server instance over real sockets
//! with a deterministic mixed workload and measures per-request
//! latency, throughput, and the cold-vs-warm effect of the persistent
//! characterization store.
//!
//! The benchmark runs the same workload twice against the same cache
//! directory: a **cold** phase starting from an empty store, then a
//! **warm** phase with a fresh server process-equivalent (new
//! [`Service`], new in-memory cache) over the now-populated store. On a
//! fully persisted roster the warm phase must report **zero** cache
//! builds — every characterization is restored from disk.

use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use axmul_dse::Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::Client;
use crate::json::Value;
use crate::proto::Op;
use crate::server::{serve, Endpoints, ServerOptions};
use crate::service::Service;
use crate::storage::open_store;

/// Benchmark knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Distinct 8×8 configurations in the request roster.
    pub roster: usize,
    /// Requests per phase, across all connections.
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Workload seed (fixed → identical cold and warm workloads).
    pub seed: u64,
}

impl LoadgenOptions {
    /// CI-sized run: a couple thousand requests over a dozen configs.
    #[must_use]
    pub fn quick() -> Self {
        LoadgenOptions {
            roster: 12,
            requests: 2_000,
            connections: 4,
            workers: 4,
            seed: 0xD0C5,
        }
    }

    /// Full run: tens of thousands of requests over a broad roster.
    #[must_use]
    pub fn full() -> Self {
        LoadgenOptions {
            roster: 48,
            requests: 20_000,
            connections: 8,
            workers: 4,
            seed: 0xD0C5,
        }
    }
}

/// Latency digest for one request type.
#[derive(Debug, Clone)]
pub struct TypeLatency {
    /// Wire name of the request type.
    pub name: &'static str,
    /// Requests of this type issued.
    pub count: usize,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
}

/// One phase (cold or warm) of the benchmark.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// `"cold"` or `"warm"`.
    pub name: &'static str,
    /// Wall time of the request storm in seconds.
    pub elapsed_s: f64,
    /// Requests completed.
    pub requests: usize,
    /// Requests per second.
    pub throughput_rps: f64,
    /// Characterizations computed from scratch during the phase.
    pub builds: u64,
    /// Characterizations restored from the persistent store.
    pub disk_hits: u64,
    /// Overall latency digest.
    pub overall: TypeLatency,
    /// Per-request-type latency digests.
    pub per_type: Vec<TypeLatency>,
}

/// The full cold+warm benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Options the run used.
    pub opts: LoadgenOptions,
    /// Cold-store phase.
    pub cold: PhaseReport,
    /// Warm-store phase.
    pub warm: PhaseReport,
}

impl BenchReport {
    /// Characterizations the warm phase computed from scratch; the
    /// headline number, asserted to be zero in CI.
    #[must_use]
    pub fn warm_builds(&self) -> u64 {
        self.warm.builds
    }

    /// Human-readable summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "serve-bench: {} requests/phase, {} configs, {} connections, {} workers\n",
            self.opts.requests, self.opts.roster, self.opts.connections, self.opts.workers
        ));
        for phase in [&self.cold, &self.warm] {
            s.push_str(&format!(
                "  {:<4}  {:>8.1} req/s  p50 {:>6} us  p99 {:>6} us  builds {:>4}  disk hits {:>4}\n",
                phase.name,
                phase.throughput_rps,
                phase.overall.p50_us,
                phase.overall.p99_us,
                phase.builds,
                phase.disk_hits
            ));
            for t in &phase.per_type {
                s.push_str(&format!(
                    "        {:<20} x{:<6} p50 {:>6} us  p99 {:>6} us\n",
                    t.name, t.count, t.p50_us, t.p99_us
                ));
            }
        }
        s.push_str(&format!(
            "  warm start: {} rebuilds (cold built {}), cold/warm p50 ratio {:.1}x\n",
            self.warm.builds,
            self.cold.builds,
            self.cold.overall.p50_us.max(1) as f64 / self.warm.overall.p50_us.max(1) as f64
        ));
        s
    }

    /// Machine-readable summary (the contents of `BENCH_serve.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let phase = |p: &PhaseReport| {
            let digest = |t: &TypeLatency| {
                Value::obj([
                    ("count", Value::Num(t.count as f64)),
                    ("p50_us", Value::Num(t.p50_us as f64)),
                    ("p99_us", Value::Num(t.p99_us as f64)),
                ])
            };
            let mut types: Vec<(String, Value)> = p
                .per_type
                .iter()
                .map(|t| (t.name.to_string(), digest(t)))
                .collect();
            types.push(("overall".to_string(), digest(&p.overall)));
            Value::obj([
                ("elapsed_s", Value::Num(p.elapsed_s)),
                ("requests", Value::Num(p.requests as f64)),
                ("throughput_rps", Value::Num(p.throughput_rps)),
                ("builds", Value::Num(p.builds as f64)),
                ("disk_hits", Value::Num(p.disk_hits as f64)),
                ("latency_us", Value::Obj(types.into_iter().collect())),
            ])
        };
        Value::obj([
            ("bench", Value::str("serve")),
            ("roster_configs", Value::Num(self.opts.roster as f64)),
            ("requests_per_phase", Value::Num(self.opts.requests as f64)),
            ("connections", Value::Num(self.opts.connections as f64)),
            ("workers", Value::Num(self.opts.workers as f64)),
            ("cold", phase(&self.cold)),
            ("warm", phase(&self.warm)),
            ("cold_builds", Value::Num(self.cold.builds as f64)),
            ("warm_builds", Value::Num(self.warm.builds as f64)),
            ("warm_disk_hits", Value::Num(self.warm.disk_hits as f64)),
        ])
        .to_string()
    }
}

/// Deterministic 8×8 roster: the paper's headline configurations first,
/// then seeded random configurations, deduplicated by key.
#[must_use]
pub fn roster(n: usize, seed: u64) -> Vec<Config> {
    let mut keys = std::collections::BTreeSet::new();
    let mut out: Vec<Config> = Vec::new();
    for key in [
        "(a A A A A)",
        "(c A A A A)",
        "(a X X X X)",
        "(c X T1 T2 T3)",
        "(a T3 A X X)",
    ] {
        let cfg: Config = key.parse().expect("paper config key");
        if keys.insert(cfg.key()) {
            out.push(cfg);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    while out.len() < n {
        let cfg = Config::random(8, &mut rng);
        if keys.insert(cfg.key()) {
            out.push(cfg);
        }
    }
    out.truncate(n);
    out
}

const TYPE_NAMES: [&str; 5] = [
    "characterize-config",
    "dse-query",
    "lint-netlist",
    "nn-classify-batch",
    "server-stats",
];

/// Picks the next operation of the mixed workload:
/// 60% characterize, 15% dse-query, 10% lint, 10% nn, 5% stats.
fn next_op(rng: &mut StdRng, keys: &[String], images: &[Vec<u8>]) -> (usize, Op) {
    let pick = |rng: &mut StdRng, keys: &[String]| keys[rng.random_range(0..keys.len())].clone();
    match rng.random_range(0..100u32) {
        0..=59 => (
            0,
            Op::Characterize {
                config: pick(rng, keys),
            },
        ),
        60..=74 => {
            let mut candidates = Vec::with_capacity(8);
            for _ in 0..8 {
                candidates.push(pick(rng, keys));
            }
            (1, Op::DseQuery { candidates })
        }
        75..=84 => (
            2,
            Op::Lint {
                config: pick(rng, keys),
            },
        ),
        85..=94 => {
            // Restrict NN backends to a handful of keys so product-table
            // tabulation stays a bounded, shared warm-up cost.
            let config = Some(keys[rng.random_range(0..keys.len().min(4))].clone());
            let start = rng.random_range(0..images.len().saturating_sub(4).max(1));
            (
                3,
                Op::NnClassify {
                    config,
                    images: images[start..start + 4].to_vec(),
                },
            )
        }
        _ => (4, Op::Stats),
    }
}

/// Runs one phase against `cache_dir` and digests the measurements.
fn run_phase(
    name: &'static str,
    cache_dir: &Path,
    opts: &LoadgenOptions,
    keys: &[String],
) -> Result<PhaseReport, String> {
    let store = open_store(Some(cache_dir)).map_err(|e| format!("open store: {e}"))?;
    let service = Service::new(Some(store));
    let handle = serve(
        service,
        &Endpoints {
            tcp_port: Some(0),
            unix_path: None,
        },
        &ServerOptions {
            workers: opts.workers,
            ..ServerOptions::default()
        },
    )
    .map_err(|e| format!("start server: {e}"))?;
    let addr = handle.tcp_addr().expect("tcp endpoint requested");

    let images: Vec<Vec<u8>> = axmul_nn::test_set().images[..64].to_vec();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let samples: Mutex<Vec<Vec<(usize, u64)>>> = Mutex::new(Vec::new());
    let per_client = opts.requests / opts.connections.max(1);
    let started = Instant::now();
    std::thread::scope(|s| {
        for client_idx in 0..opts.connections {
            let failures = &failures;
            let samples = &samples;
            let images = &images;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(opts.seed ^ ((client_idx as u64) << 17));
                let mut local: Vec<(usize, u64)> = Vec::with_capacity(per_client);
                let mut client = match Client::connect_tcp(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        failures
                            .lock()
                            .expect("failure lock")
                            .push(format!("connect: {e}"));
                        return;
                    }
                };
                for _ in 0..per_client {
                    let (ty, op) = next_op(&mut rng, keys, images);
                    let t0 = Instant::now();
                    match client.call(op) {
                        Ok(_) => local.push((ty, t0.elapsed().as_micros() as u64)),
                        Err(e) => {
                            failures
                                .lock()
                                .expect("failure lock")
                                .push(format!("call: {e}"));
                            return;
                        }
                    }
                }
                samples.lock().expect("sample lock").push(local);
            });
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let failures = failures.into_inner().expect("failure lock");
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} request failures, first: {first}",
            failures.len()
        ));
    }

    // Phase counters come straight from the server's own stats op.
    let mut stats_client = Client::connect_tcp(addr).map_err(|e| format!("stats connect: {e}"))?;
    let stats = stats_client
        .call(Op::Stats)
        .map_err(|e| format!("stats call: {e}"))?;
    let cache = stats.get("cache").cloned().unwrap_or(Value::Null);
    let counter = |k: &str| cache.get(k).and_then(Value::as_u64).unwrap_or(0);
    let builds = counter("builds");
    let disk_hits = counter("disk_hits");
    handle.shutdown();

    let all: Vec<(usize, u64)> = samples.into_inner().expect("sample lock").concat();
    let digest = |name: &'static str, mut lat: Vec<u64>| {
        lat.sort_unstable();
        let p = |q: f64| {
            if lat.is_empty() {
                0
            } else {
                lat[((lat.len() - 1) as f64 * q) as usize]
            }
        };
        TypeLatency {
            name,
            count: lat.len(),
            p50_us: p(0.50),
            p99_us: p(0.99),
        }
    };
    let per_type = TYPE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            digest(
                name,
                all.iter()
                    .filter(|(t, _)| *t == i)
                    .map(|&(_, us)| us)
                    .collect(),
            )
        })
        .collect();
    let overall = digest("overall", all.iter().map(|&(_, us)| us).collect());
    let requests = all.len();
    Ok(PhaseReport {
        name,
        elapsed_s,
        requests,
        throughput_rps: requests as f64 / elapsed_s.max(1e-9),
        builds,
        disk_hits,
        overall,
        per_type,
    })
}

/// Runs the full cold+warm benchmark in a scratch cache directory.
///
/// # Errors
///
/// Returns a description of the first failure (bind, connect, or any
/// request-level error — the benchmark tolerates none).
pub fn run(opts: &LoadgenOptions) -> Result<BenchReport, String> {
    let cache_dir = std::env::temp_dir().join(format!("axmul_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let keys: Vec<String> = roster(opts.roster, opts.seed)
        .iter()
        .map(Config::key)
        .collect();
    let result = (|| {
        let cold = run_phase("cold", &cache_dir, opts, &keys)?;
        let warm = run_phase("warm", &cache_dir, opts, &keys)?;
        Ok(BenchReport {
            opts: opts.clone(),
            cold,
            warm,
        })
    })();
    let _ = std::fs::remove_dir_all(&cache_dir);
    result
}

/// One-connection smoke test over a Unix socket: starts a daemon,
/// issues one request of every type, and checks each response. Returns
/// the per-type one-line summaries.
///
/// # Errors
///
/// Returns a description of the first failed step.
pub fn smoke() -> Result<Vec<String>, String> {
    let dir = std::env::temp_dir();
    let socket = dir.join(format!("axmul_serve_smoke_{}.sock", std::process::id()));
    let cache_dir = dir.join(format!("axmul_serve_smoke_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let store = open_store(Some(&cache_dir)).map_err(|e| format!("open store: {e}"))?;
    let handle = serve(
        Service::new(Some(store)),
        &Endpoints {
            tcp_port: None,
            unix_path: Some(socket.clone()),
        },
        &ServerOptions::default(),
    )
    .map_err(|e| format!("start server: {e}"))?;

    let run = || -> Result<Vec<String>, String> {
        let mut client = Client::connect_unix(&socket).map_err(|e| format!("connect: {e}"))?;
        let mut lines = Vec::new();
        let images = axmul_nn::test_set().images[..4].to_vec();
        let ops = [
            Op::Characterize {
                config: "(c X T1 T2 T3)".into(),
            },
            Op::Lint {
                config: "(a A A A A)".into(),
            },
            Op::NnClassify {
                config: Some("(c A A A A)".into()),
                images,
            },
            Op::DseQuery {
                candidates: vec!["(a A A A A)".into(), "(c X X X X)".into()],
            },
            Op::Stats,
        ];
        for op in ops {
            let name = op.type_name();
            let result = client.call(op).map_err(|e| format!("{name}: {e}"))?;
            let note = match name {
                "characterize-config" => format!(
                    "luts={}",
                    result
                        .get("cost")
                        .and_then(|c| c.get("luts"))
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{name}: missing cost.luts"))?
                ),
                "lint-netlist" => format!(
                    "errors={}",
                    result
                        .get("errors")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{name}: missing errors"))?
                ),
                "nn-classify-batch" => format!(
                    "predictions={}",
                    result
                        .get("predictions")
                        .and_then(Value::as_arr)
                        .map(<[Value]>::len)
                        .ok_or_else(|| format!("{name}: missing predictions"))?
                ),
                "dse-query" => format!(
                    "reports={}",
                    result
                        .get("reports")
                        .and_then(Value::as_arr)
                        .map(<[Value]>::len)
                        .ok_or_else(|| format!("{name}: missing reports"))?
                ),
                _ => format!(
                    "requests={}",
                    result
                        .get("requests")
                        .and_then(|r| r.get("characterize-config"))
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{name}: missing request counters"))?
                ),
            };
            lines.push(format!("{name}: ok ({note})"));
        }
        Ok(lines)
    };
    let result = run();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_deterministic_and_deduplicated() {
        let a = roster(12, 7);
        let b = roster(12, 7);
        let keys: Vec<String> = a.iter().map(Config::key).collect();
        assert_eq!(keys, b.iter().map(Config::key).collect::<Vec<_>>());
        let set: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
        assert!(a.iter().all(|c| c.bits() == 8));
    }

    #[test]
    fn workload_mix_covers_every_request_type() {
        let keys: Vec<String> = roster(6, 1).iter().map(Config::key).collect();
        let images = vec![vec![0u8; 64]; 8];
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [0usize; 5];
        for _ in 0..1_000 {
            let (ty, _) = next_op(&mut rng, &keys, &images);
            seen[ty] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "{seen:?}");
        assert!(seen[0] > seen[1], "characterize dominates: {seen:?}");
    }
}
