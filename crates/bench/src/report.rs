//! Minimal fixed-width table formatting for experiment reports.

/// A text table with a title, a header row, and data rows.
///
/// # Examples
///
/// ```
/// use axmul_bench::report::Table;
///
/// let mut t = Table::new("Demo", &["design", "LUTs"]);
/// t.row(&["Ca 8x8", "57"]);
/// let s = t.render();
/// assert!(s.contains("design"));
/// assert!(s.contains("57"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| (*s).to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a fractional gain as a signed percentage.
#[must_use]
pub fn pct(gain: f64) -> String {
    format!("{:+.1}%", gain * 100.0)
}

/// Formats a float with the given precision.
#[must_use]
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["xx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== T ==");
        assert!(lines[1].contains("a"));
        assert!(lines[3].ends_with("   1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.253), "+25.3%");
        assert_eq!(pct(-0.08), "-8.0%");
    }
}
