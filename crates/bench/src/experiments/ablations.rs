//! Ablations of the design choices `DESIGN.md` calls out.

use axmul_baselines::evo::{EvoDesign, Kernel};
use axmul_core::behavioral::{approx_4x4, approx_4x4_accsum, Recursive, Summation};
use axmul_core::{Exact, Multiplier, Swapped};
use axmul_metrics::ErrorStats;
use axmul_susan::{susan_smooth, synthetic_test_image, SusanParams};

use crate::report::{f, Table};

/// **Ablation: carry-free depth in Cc.** What if only the top recursion
/// level drops carries while the 4→8 level stays accurate?
#[must_use]
pub fn ablate_cc_depth() -> String {
    // Depth 0: Ca (accurate everywhere). Depth 1 (top only): proposed
    // 4x4 kernels, accurate 4->8, carry-free 8->16... at 8x8 the two
    // notions coincide, so ablate at 16x16 behaviorally.
    let full = Recursive::new("Cc-all-levels", 16, 4, approx_4x4, Summation::CarryFree)
        .expect("valid width");
    // Top-only: sub-blocks are Ca 8x8, top level carry-free.
    let ca8 = Recursive::new("sub", 8, 4, approx_4x4, Summation::Accurate).expect("valid width");
    let top_only_fn = move |a: u64, b: u64| -> u64 {
        let m = 8;
        let mask = 0xFFu64;
        let ll = ca8.multiply(a & mask, b & mask);
        let hl = ca8.multiply(a >> m, b & mask);
        let lh = ca8.multiply(a & mask, b >> m);
        let hh = ca8.multiply(a >> m, b >> m);
        let low = ll & mask;
        let mid = ((ll >> m) ^ hl ^ lh ^ ((hh & mask) << m)) & 0xFFFF;
        let high = hh >> m;
        low | (mid << m) | (high << (3 * m))
    };
    struct TopOnly<F>(F);
    impl<F: Fn(u64, u64) -> u64> Multiplier for TopOnly<F> {
        fn a_bits(&self) -> u32 {
            16
        }
        fn b_bits(&self) -> u32 {
            16
        }
        fn multiply(&self, a: u64, b: u64) -> u64 {
            (self.0)(a & 0xFFFF, b & 0xFFFF)
        }
        fn name(&self) -> &str {
            "Cc-top-only"
        }
    }
    let top_only = TopOnly(top_only_fn);
    let ca16 = Recursive::new("Ca", 16, 4, approx_4x4, Summation::Accurate).expect("valid width");

    let mut t = Table::new(
        "Ablation: carry-free summation depth (16x16, 200k samples)",
        &["variant", "avg rel error", "extra LUTs saved vs Ca"],
    );
    // LUT savings per the Table 4 recurrences: each carry-free level at
    // width 2M saves 1 LUT of the (2M+1)-LUT ternary adder, plus the
    // accumulated savings of its four sub-blocks.
    for (m, saved) in [
        (&ca16 as &dyn Multiplier, 0i32),
        (&top_only, 1),
        (&full, 4 + 1 + 4), // 4 sub-levels save 1 each at 8x8... see note
    ] {
        let stats = ErrorStats::sampled(&m, 200_000, 99);
        t.row_owned(vec![
            m.name().to_string(),
            format!("{:.6}", stats.avg_relative_error),
            saved.to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "carry-free summation at every level (the paper's Cc) buys the \
         area/latency of all ternary adders at a steep accuracy cost; \
         restricting it to the top level is a useful intermediate point\n",
    );
    s
}

/// **Ablation: which product bit the 4×2 truncates.** The paper argues
/// truncating `P0` is the unique choice with error ≤ 1; this measures
/// the alternatives.
#[must_use]
pub fn ablate_4x2_trunc() -> String {
    let mut t = Table::new(
        "Ablation: truncated product bit in the elementary 4x2",
        &[
            "truncated bit",
            "max error",
            "avg error",
            "error occurrences",
        ],
    );
    for bit in 0..3u32 {
        let mut max = 0i64;
        let mut sum = 0i64;
        let mut occ = 0u64;
        for a in 0..16u64 {
            for b in 0..4u64 {
                let exact = a * b;
                let approx = exact & !(1 << bit);
                let e = (exact - approx) as i64;
                if e != 0 {
                    occ += 1;
                    sum += e;
                    max = max.max(e);
                }
            }
        }
        t.row_owned(vec![
            format!("P{bit}"),
            max.to_string(),
            f(sum as f64 / 64.0, 3),
            occ.to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "truncating P0 bounds the error at 1 for every input; any higher \
         bit multiplies the worst case (the paper's argument in §3.1). \
         P1/P2 also cost an extra LUT since P1+P2 no longer share one \
         LUT6_2 with the remaining bits\n",
    );
    s
}

/// **Ablation: elementary block choice inside an 8×8 accurate-summation
/// multiplier** — exact 4×4 vs the 16-LUT accurate-summation 4×4 vs the
/// proposed optimized 4×4.
#[must_use]
pub fn ablate_elem() -> String {
    let proposed = EvoDesign::hybrid([Kernel::Proposed; 4], Summation::Accurate);
    let exact = EvoDesign::hybrid([Kernel::Exact; 4], Summation::Accurate);
    let accsum = Recursive::new(
        "AccSum4x4-based",
        8,
        4,
        approx_4x4_accsum,
        Summation::Accurate,
    )
    .expect("valid width");
    let mut t = Table::new(
        "Ablation: elementary 4x4 block inside an 8x8 (accurate summation)",
        &[
            "elementary block",
            "LUTs (8x8)",
            "avg rel error",
            "max error",
        ],
    );
    let rows: Vec<(&str, usize, &dyn Multiplier)> = vec![
        ("exact 4x4 (13 LUTs)", exact.netlist().lut_count(), &exact),
        // Two carry chains strand two LUT sites per block: 4 x 16 + 9.
        (
            "approx 4x4, accurate summation (16 LUTs)",
            4 * 16 + 9,
            &accsum,
        ),
        (
            "proposed approx 4x4 (12 LUTs)",
            proposed.netlist().lut_count(),
            &proposed,
        ),
    ];
    for (name, luts, m) in rows {
        let stats = ErrorStats::exhaustive(&m);
        t.row_owned(vec![
            name.to_string(),
            luts.to_string(),
            format!("{:.6}", stats.avg_relative_error),
            stats.max_error.to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "the proposed block dominates the 16-LUT variant in BOTH area and \
         accuracy — the paper's central claim about FPGA-specific \
         optimization\n",
    );
    s
}

/// **Ablation: operand orientation across input distributions.** The
/// asymmetric 4×4 makes orientation a real design knob; this quantifies
/// it for uniform operands and for the SUSAN operand distribution.
#[must_use]
pub fn ablate_swap() -> String {
    let ca = axmul_core::behavioral::Ca::new(8).expect("valid");
    let cas = Swapped::new(ca.clone());
    let mut t = Table::new(
        "Ablation: operand orientation (Ca 8x8)",
        &["distribution", "Ca", "Cas (swapped)"],
    );
    // Uniform operands: symmetric by construction.
    let u1 = ErrorStats::exhaustive(&ca).avg_relative_error;
    let u2 = ErrorStats::exhaustive(&cas).avg_relative_error;
    t.row_owned(vec![
        "uniform ARE".to_string(),
        format!("{u1:.6}"),
        format!("{u2:.6}"),
    ]);
    // SUSAN operands: weight x pixel is biased, orientation matters.
    let img = synthetic_test_image(96, 96, 11);
    let params = SusanParams::default();
    let golden = susan_smooth(&img, &params, &Exact::new(8, 8));
    let p1 = golden.psnr(&susan_smooth(&img, &params, &ca));
    let p2 = golden.psnr(&susan_smooth(&img, &params, &cas));
    t.row_owned(vec!["SUSAN PSNR [dB]".to_string(), f(p1, 2), f(p2, 2)]);
    let mut s = t.render();
    s.push_str(
        "uniform inputs cannot distinguish the orientations (identical \
         ARE); the biased application stream can — the basis of the \
         paper's input-analysis recommendation\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_depth_monotone_in_error() {
        let s = ablate_cc_depth();
        let vals: Vec<f64> = s
            .lines()
            .filter_map(|l| {
                let cells: Vec<&str> = l.split_whitespace().collect();
                if cells.len() >= 3 && (cells[0].starts_with("Ca") || cells[0].starts_with("Cc")) {
                    cells[cells.len() - 2].parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(vals.len() >= 3, "{s}");
        assert!(vals[0] < vals[1], "Ca < top-only: {vals:?}");
        assert!(vals[1] < vals[2], "top-only < all-levels: {vals:?}");
    }

    #[test]
    fn p0_truncation_is_cheapest() {
        let s = ablate_4x2_trunc();
        assert!(s.contains("P0"));
        // P0 row: max error 1.
        let p0 = s
            .lines()
            .find(|l| l.trim_start().starts_with("P0"))
            .unwrap();
        assert!(p0.split_whitespace().nth(1) == Some("1"));
    }

    #[test]
    fn proposed_block_dominates_accsum() {
        let s = ablate_elem();
        assert!(s.contains("proposed approx 4x4"));
    }

    #[test]
    fn uniform_are_is_orientation_invariant() {
        let s = ablate_swap();
        let row = s
            .lines()
            .find(|l| l.contains("uniform ARE"))
            .expect("uniform row");
        let cells: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cells[cells.len() - 2], cells[cells.len() - 1]);
    }

    #[test]
    fn equations_sanity_anchor() {
        // Anchor the ablation module to the verified 4x2 equations.
        let bits = axmul_core::behavioral::accurate_4x2_product_bits(9, 3);
        let v: u64 = bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        assert_eq!(v, 27);
        assert_eq!(approx_4x4(9, 3), 27);
    }
}
