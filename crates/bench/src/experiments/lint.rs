//! Roster-wide static analysis: the `repro lint` experiment.
//!
//! Runs the full `axmul-lint` pipeline over every netlist in the Fig. 7
//! rosters at 4/8/16 bits (with behavioral equivalence wherever a
//! model exists), the paper-claim checks (Tables 2/3, slice fit), and a
//! deterministic sample of DSE-generated 8×8 configurations. At 16×16
//! the equivalence claims escalate to SAT — the approximate designs get
//! their exact worst-case error certified in-line (`equiv-wce-certified`
//! in the codes column), the functionally exact VivadoIP emulations a
//! bounded refutation probe — which adds roughly half a minute of
//! solver time to the release-build run.
//!
//! The gate: **zero errors everywhere**, and zero warnings outside the
//! documented waste allowance of [`expected_waste`] — the proposed
//! designs (Ca/Cc/Trunc, the elementary blocks, every DSE sample) and
//! the W baseline must be completely warning-free. The closing
//! `lint verdict:` line is what the CI gate greps for.

use axmul_baselines::{Kulkarni, RehmanW};
use axmul_core::behavioral::{Ca, Cc};
use axmul_core::{Exact, Multiplier};
use axmul_dse::Config;
use axmul_lint::{check_paper_claims, LintOptions, LintReport, Linter, Severity};

use crate::report::Table;
use crate::roster::fig7_roster;

/// The behavioral model paired with a Fig. 7 roster entry, by name.
///
/// `Trunc(...)` returns `None`: the paper's product-zeroing behavioral
/// model and the PP-dropping hardware idiom differ by design (see
/// `docs/modeling-notes.md`), so only structural passes apply.
fn model_for(name: &str, bits: u32) -> Option<Box<dyn Multiplier>> {
    if name.starts_with("K ") {
        Some(Box::new(Kulkarni::new(bits).expect("roster width")))
    } else if name.starts_with("W ") {
        Some(Box::new(RehmanW::new(bits).expect("roster width")))
    } else if name.starts_with("Ca ") {
        Some(Box::new(Ca::new(bits).expect("roster width")))
    } else if name.starts_with("Cc ") {
        Some(Box::new(Cc::new(bits).expect("roster width")))
    } else if name.starts_with("VivadoIP") {
        Some(Box::new(Exact::new(bits, bits)))
    } else {
        None
    }
}

/// Whether a warning is *expected by design* rather than a defect.
///
/// Two families of netlists deliberately carry waste the linter is
/// right to flag:
///
/// * **K** — Kulkarni's 2×2 kernel deletes the `P3` product bit, so
///   the constant 0 it exports feeds the ternary summation and leaves
///   a provably-constant adder LUT per composition level
///   (`const-lut`). Folding it would shrink K below the LUT counts our
///   tests calibrate against the paper's figures, so the generator
///   keeps the LUT and lint records the fold opportunity.
/// * **VivadoIP** — the IP emulations reproduce the Vivado multiplier
///   macro's wasteful mapping on purpose; quantifying exactly that
///   waste (`const-lut`, `stuck-carry`, `unreachable-cell`) is the
///   paper's motivation. See EXPERIMENTS.md for the counts.
#[must_use]
pub fn expected_waste(netlist: &str, code: &str) -> bool {
    (netlist.starts_with("K ") && code == "const-lut")
        || (netlist.starts_with("VivadoIP")
            && matches!(code, "const-lut" | "stuck-carry" | "unreachable-cell"))
}

/// Lints every roster/claim/DSE netlist with `opts`; returns the
/// reports in a stable order. Shared by the experiment and the tests.
#[must_use]
pub fn lint_all_reports(opts: LintOptions) -> Vec<LintReport> {
    let linter = Linter::with_options(opts);
    let mut reports = Vec::new();
    for bits in [4u32, 8, 16] {
        for entry in fig7_roster(bits) {
            let mut report = match model_for(&entry.name, bits) {
                Some(model) => linter.lint_against(&entry.netlist, model.as_ref()),
                None => linter.lint(&entry.netlist),
            };
            report.netlist = entry.name;
            reports.push(report);
        }
    }
    reports.extend(check_paper_claims(opts));
    // Every 100th enumerated 8x8 DSE configuration (deterministic, 13
    // of 1250): generated netlists must satisfy the same rules as the
    // hand-built ones.
    for cfg in Config::enumerate(8).into_iter().step_by(100) {
        let mut report = linter.lint(&cfg.assemble());
        report.netlist = format!("dse {}", cfg.key());
        reports.push(report);
    }
    reports
}

/// **Static analysis gate.** Lints the full roster and prints one row
/// per netlist. Any netlist with an error or an *unexpected* warning
/// (outside the [`expected_waste`] allowance) gets its full report
/// appended. Ends with a `lint verdict:` line — `CLEAN` only if there
/// are zero errors and zero unexpected warnings.
#[must_use]
pub fn lint_roster() -> String {
    let reports = lint_all_reports(LintOptions::default());
    let mut t = Table::new(
        "Static analysis: axmul-lint over the Fig. 7 rosters, paper claims and DSE samples",
        &[
            "netlist",
            "LUTs",
            "CARRY4s",
            "err",
            "warn",
            "info",
            "notable codes",
        ],
    );
    let mut problems = String::new();
    let (mut errors, mut warnings, mut unexpected) = (0usize, 0usize, 0usize);
    for r in &reports {
        errors += r.errors();
        warnings += r.warnings();
        let stray = r
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning && !expected_waste(&r.netlist, d.code))
            .count();
        unexpected += stray;
        let codes: Vec<String> = r
            .by_code()
            .into_iter()
            .filter(|(code, _)| !code.ends_with("-verified") && *code != "equiv-sampled")
            .map(|(code, n)| {
                if n > 1 {
                    format!("{code}x{n}")
                } else {
                    code.to_string()
                }
            })
            .collect();
        t.row_owned(vec![
            r.netlist.clone(),
            r.luts.to_string(),
            r.carry4s.to_string(),
            r.errors().to_string(),
            r.warnings().to_string(),
            r.infos().to_string(),
            codes.join(" "),
        ]);
        if r.errors() > 0 || stray > 0 {
            problems.push_str(&r.to_string());
        }
    }
    let mut s = t.render();
    s.push_str(&problems);
    s.push_str(&format!(
        "lint verdict: {} ({} netlists, {errors} error(s), {warnings} warning(s), \
         {unexpected} outside the documented waste allowance)\n",
        if errors == 0 && unexpected == 0 {
            "CLEAN"
        } else {
            "DIRTY"
        },
        reports.len(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reduced sampling and a zero SAT budget (bounded verdicts instead
    // of full wce certificates) keep the 16-bit equivalence checks
    // fast in debug builds; exhaustive widths are unaffected. The
    // certified path is exercised by the lint crate's own tests.
    fn fast_opts() -> LintOptions {
        LintOptions {
            samples: 512,
            sat_conflicts: 0,
            ..LintOptions::default()
        }
    }

    #[test]
    fn every_roster_netlist_is_error_free() {
        for r in lint_all_reports(fast_opts()) {
            assert!(r.is_clean(false), "{r}");
        }
    }

    #[test]
    fn warnings_confined_to_documented_waste() {
        // Proposed designs, W, Trunc, the claim fixtures and every DSE
        // sample must be completely warning-free; K and the VivadoIP
        // emulations may only carry their documented waste codes.
        for r in lint_all_reports(fast_opts()) {
            for d in &r.diagnostics {
                if d.severity == Severity::Warning {
                    assert!(
                        expected_waste(&r.netlist, d.code),
                        "unexpected warning in `{}`: {d}",
                        r.netlist
                    );
                }
            }
        }
    }

    #[test]
    fn kulkarni_fold_opportunity_is_detected() {
        // The finding behind the K allowance: the kernel's deleted P3
        // bit leaves a provably-constant summation LUT.
        let reports = lint_all_reports(fast_opts());
        let k4 = reports
            .iter()
            .find(|r| r.netlist == "K 4x4")
            .expect("roster contains K 4x4");
        assert_eq!(k4.by_code().get("const-lut"), Some(&1), "{k4}");
        assert!(!k4.by_code().contains_key("ignored-pin"), "{k4}");
    }

    #[test]
    fn equivalence_runs_for_modeled_entries() {
        let reports = lint_all_reports(fast_opts());
        let ca8 = reports
            .iter()
            .find(|r| r.netlist == "Ca 8x8")
            .expect("roster contains Ca 8x8");
        assert!(ca8.by_code().contains_key("equiv-verified"), "{ca8}");
        let ca16 = reports
            .iter()
            .find(|r| r.netlist == "Ca 16x16")
            .expect("roster contains Ca 16x16");
        assert!(ca16.by_code().contains_key("equiv-sampled"), "{ca16}");
    }
}
