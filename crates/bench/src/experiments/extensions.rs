//! Extension experiments beyond the paper's evaluation: the §5.2
//! error-correction circuit made concrete, the approximate-adder
//! substrate, and the carry-free column operator choice.

use axmul_adders::{
    carry_free_adder_netlist, exact_adder_netlist, loa_netlist, AdderStats, CarryFreeAdder,
    ExactAdder, LowerOrAdder, TruncatedAdder,
};
use axmul_core::behavioral::{approx_4x4, Ca};
use axmul_core::correction::{correctable_4x4_netlist, CorrectableApprox4x4};
use axmul_core::structural::approx_4x4_netlist;
use axmul_core::{Multiplier, Signed};
use axmul_fabric::timing::{analyze, DelayModel};
use axmul_metrics::ErrorStats;

use crate::report::{f, Table};

/// **Extension: switchable error correction (§5.2).** The paper notes
/// that few-distinct-error architectures admit cheap on/off correction;
/// this measures the concrete corrector for the elementary block.
#[must_use]
pub fn ext_correction() -> String {
    let model = DelayModel::virtex7();
    let base = approx_4x4_netlist();
    let corr = correctable_4x4_netlist();
    let mut t = Table::new(
        "Extension: switchable error correction on the 4x4 block",
        &["configuration", "LUTs", "CARRY4s", "ns", "ARE"],
    );
    let on = CorrectableApprox4x4::new(true);
    let off = CorrectableApprox4x4::new(false);
    let are = |m: &dyn Multiplier| ErrorStats::exhaustive(&m).avg_relative_error;
    t.row_owned(vec![
        "plain approximate".to_string(),
        base.lut_count().to_string(),
        base.carry4_count().to_string(),
        f(analyze(&base, &model).critical_path_ns, 3),
        format!("{:.6}", are(&off)),
    ]);
    t.row_owned(vec![
        "correctable (en=0)".to_string(),
        corr.lut_count().to_string(),
        corr.carry4_count().to_string(),
        f(analyze(&corr, &model).critical_path_ns, 3),
        format!("{:.6}", are(&off)),
    ]);
    t.row_owned(vec![
        "correctable (en=1)".to_string(),
        corr.lut_count().to_string(),
        corr.carry4_count().to_string(),
        f(analyze(&corr, &model).critical_path_ns, 3),
        format!("{:.6}", are(&on)),
    ]);
    let mut s = t.render();
    s.push_str(
        "three extra LUTs and one extra chain buy run-time exactness — \
         cheap because the error set is a single condition (Fig. 8)\n",
    );
    s
}

/// **Extension: the approximate-adder substrate.** Error/area/latency
/// of the classic approximate adders on the same fabric.
#[must_use]
pub fn ext_adders() -> String {
    let model = DelayModel::virtex7();
    let mut t = Table::new(
        "Extension: approximate 12-bit adders",
        &["adder", "LUTs", "CARRY4s", "ns", "max |e|", "avg |e|"],
    );
    let exact = ExactAdder::new(12);
    let designs: Vec<(Box<dyn axmul_adders::Adder>, axmul_fabric::Netlist)> = vec![
        (Box::new(exact), exact_adder_netlist(12)),
        (Box::new(LowerOrAdder::new(12, 4)), loa_netlist(12, 4)),
        (Box::new(LowerOrAdder::new(12, 6)), loa_netlist(12, 6)),
        (
            Box::new(CarryFreeAdder::new(12)),
            carry_free_adder_netlist(12),
        ),
    ];
    for (m, nl) in &designs {
        let stats = AdderStats::exhaustive(m);
        t.row_owned(vec![
            m.name().to_string(),
            nl.lut_count().to_string(),
            nl.carry4_count().to_string(),
            f(analyze(nl, &model).critical_path_ns, 3),
            stats.max_error.to_string(),
            f(stats.avg_error, 3),
        ]);
    }
    // Truncated adder has no netlist variant worth building (it is the
    // exact adder minus wires); report behaviorally.
    let trunc = AdderStats::exhaustive(&TruncatedAdder::new(12, 6));
    t.row_owned(vec![
        trunc.name.clone(),
        "6".to_string(),
        "2".to_string(),
        "-".to_string(),
        trunc.max_error.to_string(),
        f(trunc.avg_error, 3),
    ]);
    let mut s = t.render();
    s.push_str(
        "the LOA keeps the error bounded at a fraction of the chain \
         length, for the same LUT count as the exact adder; the \
         carry-free end of the spectrum is the paper's Cc column \
         operation\n",
    );
    s
}

/// **Ablation: the carry-free column operator.** Fig. 6 combines three
/// partial-product columns without carries; XOR (the sum digit) and OR
/// are both one LUT — which is the right choice?
#[must_use]
pub fn ablate_cfree_op() -> String {
    // Behavioral Cc variant at 8x8 with OR columns instead of XOR.
    struct OrCc;
    impl Multiplier for OrCc {
        fn a_bits(&self) -> u32 {
            8
        }
        fn b_bits(&self) -> u32 {
            8
        }
        fn multiply(&self, a: u64, b: u64) -> u64 {
            or_cc(a & 0xFF, b & 0xFF)
        }
        fn name(&self) -> &str {
            "Cc-OR 8x8"
        }
    }
    fn or_cc(a: u64, b: u64) -> u64 {
        let (al, ah, bl, bh) = (a & 0xF, a >> 4, b & 0xF, b >> 4);
        let ll = approx_4x4(al, bl);
        let hl = approx_4x4(ah, bl);
        let lh = approx_4x4(al, bh);
        let hh = approx_4x4(ah, bh);
        let low = ll & 0xF;
        let mid = ((ll >> 4) | hl | lh | ((hh & 0xF) << 4)) & 0xFF;
        low | (mid << 4) | ((hh >> 4) << 12)
    }
    let xor = axmul_core::behavioral::Cc::new(8).expect("valid");
    let mut t = Table::new(
        "Ablation: carry-free column operator (8x8)",
        &["operator", "ARE", "max |e|", "signed bias"],
    );
    for (name, m) in [("XOR (paper)", &xor as &dyn Multiplier), ("OR", &OrCc)] {
        let s = ErrorStats::exhaustive(&m);
        let mut bias = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                bias += m.error(a, b);
            }
        }
        t.row_owned(vec![
            name.to_string(),
            format!("{:.6}", s.avg_relative_error),
            s.max_error.to_string(),
            (bias / 65536).to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "a genuine finding: OR columns (which saturate instead of \
         cancelling when two partial products overlap) roughly halve \
         both the ARE and the worst case at identical LUT cost — the \
         paper's XOR is the natural sum digit but not the accuracy \
         optimum of the one-LUT column family\n",
    );
    s
}

/// **Extension: signed operation.** The asymmetric error carries over
/// to two's-complement datapaths through the sign-magnitude adapter.
#[must_use]
pub fn ext_signed() -> String {
    let m = Signed::new(Ca::new(8).expect("valid"));
    let mut occ = 0u64;
    let mut max = 0i64;
    for a in -128i64..=127 {
        for b in -128i64..=127 {
            let e = (m.exact_signed(a, b) - m.multiply_signed(a, b)).abs();
            if e != 0 {
                occ += 1;
                max = max.max(e);
            }
        }
    }
    let mut t = Table::new(
        "Extension: signed Ca 8x8 via the sign-magnitude adapter",
        &["metric", "value"],
    );
    t.row_owned(vec!["error occurrences".to_string(), occ.to_string()]);
    t.row_owned(vec!["max |error|".to_string(), max.to_string()]);
    t.row_owned(vec![
        "example".to_string(),
        format!("-13 x -13 -> {} (exact 169)", m.multiply_signed(-13, -13)),
    ]);
    let mut s = t.render();
    s.push_str(
        "magnitudes route through the unsigned core, so the unsigned \
         error profile (Table 5) is inherited wholesale\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_table_shows_exactness() {
        let s = ext_correction();
        assert!(s.contains("0.000000"), "en=1 row must be exact:\n{s}");
        assert!(s.contains("15"), "13 + detector + chain LUTs");
    }

    #[test]
    fn adder_table_has_all_rows() {
        let s = ext_adders();
        for name in [
            "add12",
            "loa12_4",
            "loa12_6",
            "cfree_add12",
            "trunc_add12_6",
        ] {
            assert!(s.contains(name), "{name} missing:\n{s}");
        }
    }

    #[test]
    fn cfree_operator_tradeoff() {
        let s = ablate_cfree_op();
        assert!(s.contains("XOR (paper)"));
        assert!(s.contains("OR"));
    }

    #[test]
    fn signed_extension_inherits_unsigned_errors() {
        let s = ext_signed();
        assert!(s.contains("161"), "{s}");
    }
}
