//! Reproductions of the paper's figures (as numeric series — the
//! repository regenerates the data behind each plot).

use axmul_baselines::evo::library;
use axmul_baselines::{kulkarni_netlist, rehman_netlist, IpOpt, VivadoIp};
use axmul_core::behavioral::{Ca, Cc};
use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_core::{Exact, Multiplier};
use axmul_metrics::{bit_accuracy, pareto_front, DesignPoint, ErrorPmf, ErrorStats};
use axmul_susan::{operand_histogram, susan_smooth, synthetic_test_image, Recording, SusanParams};

use crate::report::{f, pct, Table};
use crate::roster::{characterize, fig7_roster, Characterization};

/// **Fig. 1** — cross-platform comparison: ASIC gains of W and K
/// (quoted from \[19\]/\[6\] as in the paper) against their FPGA gains
/// measured on our fabric, normalized to the strongest accurate soft
/// multiplier at 8×8.
#[must_use]
pub fn fig1() -> String {
    // ASIC-side gains as presented in the paper's Fig. 1 (digitized):
    // the paper itself quotes these from the original publications.
    let asic = [("W", 0.32, 0.12, 0.35), ("K", 0.12, 0.02, 0.18)];
    let accurate = characterize("accurate", &axmul_baselines::array_mult_netlist(8, 8));
    let w = characterize("W", &rehman_netlist(8).expect("valid"));
    let k = characterize("K", &kulkarni_netlist(8).expect("valid"));
    let gain = |ours: &Characterization, metric: &dyn Fn(&Characterization) -> f64| -> f64 {
        1.0 - metric(ours) / metric(&accurate)
    };
    let mut t = Table::new(
        "Fig. 1: ASIC vs FPGA gains of W and K (8x8)",
        &["design", "platform", "area", "latency", "EDP"],
    );
    for (name, area, lat, edp) in asic {
        t.row_owned(vec![
            name.to_string(),
            "ASIC (quoted)".to_string(),
            pct(area),
            pct(lat),
            pct(edp),
        ]);
    }
    for c in [&w, &k] {
        t.row_owned(vec![
            c.name.clone(),
            "FPGA (measured)".to_string(),
            pct(gain(c, &|c| c.luts as f64)),
            pct(gain(c, &|c| c.latency_ns)),
            pct(gain(c, &|c| c.edp)),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "paper's observation: ASIC area/EDP gains do not translate to the \
         FPGA (they shrink or go negative), latency gains improve\n",
    );
    s
}

/// **Fig. 7** — area, latency and EDP gains of 4/8/16-bit multipliers,
/// normalized to the Vivado-IP-like accurate multiplier (speed
/// configuration, the tool default).
#[must_use]
pub fn fig7() -> String {
    let mut t = Table::new(
        "Fig. 7: area/latency/EDP gains vs Vivado IP (speed)",
        &[
            "size",
            "design",
            "LUTs",
            "ns",
            "area gain",
            "latency gain",
            "EDP gain",
        ],
    );
    for bits in [4u32, 8, 16] {
        let baseline = characterize("IP", &VivadoIp::new(bits, IpOpt::Speed).netlist());
        for entry in fig7_roster(bits) {
            let c = characterize(&entry.name, &entry.netlist);
            t.row_owned(vec![
                format!("{bits}x{bits}"),
                c.name.clone(),
                c.luts.to_string(),
                f(c.latency_ns, 3),
                pct(1.0 - c.luts as f64 / baseline.luts as f64),
                pct(1.0 - c.latency_ns / baseline.latency_ns),
                pct(1.0 - c.edp / baseline.edp),
            ]);
        }
    }
    let mut s = t.render();
    s.push_str(
        "paper: proposed designs achieve 25-31.5% area, 8.6-53.2% latency \
         and 8.86-67% EDP gains over the accurate Vivado multiplier\n",
    );
    s
}

/// **Fig. 8** — per-bit accuracy profiles and error PMFs of the
/// proposed multipliers.
#[must_use]
pub fn fig8() -> String {
    let mut out = String::new();
    let mut t = Table::new(
        "Fig. 8a: per-bit error probability",
        &["design", "profile (bit 0 .. bit 15)"],
    );
    let designs: Vec<Box<dyn Multiplier>> = vec![
        Box::new(Ca::new(4).expect("valid")),
        Box::new(Ca::new(8).expect("valid")),
        Box::new(Cc::new(8).expect("valid")),
    ];
    for m in &designs {
        let profile = bit_accuracy(m);
        let cells: Vec<String> = profile.iter().map(|p| format!("{p:.3}")).collect();
        t.row_owned(vec![m.name().to_string(), cells.join(" ")]);
    }
    out.push_str(&t.render());

    let mut t = Table::new(
        "Fig. 8b: error PMF summary",
        &["design", "distinct errors", "most common error", "count"],
    );
    for m in &designs {
        let pmf = ErrorPmf::exhaustive(m);
        let (top_e, top_c) = pmf.iter().max_by_key(|&(_, c)| c).unwrap_or((0, 0));
        t.row_owned(vec![
            m.name().to_string(),
            pmf.distinct_errors().to_string(),
            top_e.to_string(),
            top_c.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: the proposed designs restrict errors to limited bits; only \
         Cc (carry-free summation) spreads errors across many values\n",
    );
    out
}

fn pareto_points(cost: &dyn Fn(&Characterization) -> f64) -> Vec<(DesignPoint, bool)> {
    let mut points = Vec::new();
    // Proposed + state of the art.
    let ca = Ca::new(8).expect("valid");
    let cc = Cc::new(8).expect("valid");
    let named: Vec<(Box<dyn Multiplier>, Characterization)> = vec![
        (
            Box::new(ca.clone()) as Box<dyn Multiplier>,
            characterize("Ca 8x8", &ca_netlist(8).expect("valid")),
        ),
        (
            Box::new(cc.clone()),
            characterize("Cc 8x8", &cc_netlist(8).expect("valid")),
        ),
        (
            Box::new(axmul_baselines::RehmanW::new(8).expect("valid")),
            characterize("W 8x8", &rehman_netlist(8).expect("valid")),
        ),
        (
            Box::new(axmul_baselines::Kulkarni::new(8).expect("valid")),
            characterize("K 8x8", &kulkarni_netlist(8).expect("valid")),
        ),
        (
            Box::new(Exact::new(8, 8)),
            characterize(
                "VivadoIP-Area 8x8",
                &VivadoIp::new(8, IpOpt::Area).netlist(),
            ),
        ),
        (
            Box::new(Exact::new(8, 8)),
            characterize(
                "VivadoIP-Speed 8x8",
                &VivadoIp::new(8, IpOpt::Speed).netlist(),
            ),
        ),
    ];
    for (m, c) in &named {
        let are = ErrorStats::exhaustive(m).avg_relative_error;
        points.push(DesignPoint::new(c.name.clone(), are, cost(c)));
    }
    // The EvoApprox-style cloud.
    for d in library() {
        let c = characterize(d.name(), &d.netlist());
        let are = ErrorStats::exhaustive(&d).avg_relative_error;
        points.push(DesignPoint::new(d.name().to_string(), are, cost(&c)));
    }
    // DRUM: behavioral model with its documented LUT/latency estimates
    // (the one family without a netlist; see its module docs).
    for k in [3u32, 4, 5] {
        let drum = axmul_baselines::Drum::new(8, k);
        let are = ErrorStats::exhaustive(&drum).avg_relative_error;
        let c = Characterization {
            name: drum.name().to_string(),
            luts: drum.area_estimate(),
            latency_ns: drum.latency_estimate(&axmul_fabric::timing::DelayModel::virtex7()),
            energy: 0.0,
            edp: 0.0,
        };
        points.push(DesignPoint::new(drum.name().to_string(), are, cost(&c)));
    }
    let front = pareto_front(&points);
    points.into_iter().zip(front).collect()
}

fn render_pareto(title: &str, cost_label: &str, pts: Vec<(DesignPoint, bool)>) -> String {
    let mut t = Table::new(title, &["design", "avg rel error", cost_label, "pareto"]);
    let mut sorted = pts;
    sorted.sort_by(|a, b| a.0.cost.partial_cmp(&b.0.cost).expect("finite"));
    for (p, on_front) in &sorted {
        t.row_owned(vec![
            p.name.clone(),
            format!("{:.6}", p.error),
            f(p.cost, 2),
            if *on_front { "*" } else { "" }.to_string(),
        ]);
    }
    let n_front = sorted.iter().filter(|(_, f)| *f).count();
    let proposed_on_front = sorted
        .iter()
        .filter(|(p, f)| *f && (p.name.starts_with("Ca") || p.name.starts_with("Cc")))
        .count();
    let mut s = t.render();
    s.push_str(&format!(
        "{n_front} Pareto-optimal of {} designs; {proposed_on_front} of the \
         proposed designs are on the front (paper: the low-error/low-cost \
         corner is only reached by the proposed methodology)\n",
        sorted.len()
    ));
    s
}

/// **Fig. 9** — Pareto analysis: average relative error vs area (LUTs).
#[must_use]
pub fn fig9() -> String {
    render_pareto(
        "Fig. 9: Pareto — relative error vs area",
        "LUTs",
        pareto_points(&|c| c.luts as f64),
    )
}

/// **Fig. 10** — Pareto analysis: average relative error vs latency.
#[must_use]
pub fn fig10() -> String {
    render_pareto(
        "Fig. 10: Pareto — relative error vs latency",
        "ns",
        pareto_points(&|c| c.latency_ns),
    )
}

/// **Fig. 12** — the operand histogram of the SUSAN accelerator's
/// multiplications.
#[must_use]
pub fn fig12() -> String {
    let img = synthetic_test_image(64, 64, 11);
    let rec = Recording::new(Exact::new(8, 8));
    let _ = susan_smooth(&img, &SusanParams::default(), &rec);
    let trace = rec.into_trace();
    let hist = operand_histogram(&trace, 8);
    let total: u64 = hist.iter().flatten().sum();
    let mut t = Table::new(
        "Fig. 12: SUSAN multiplication histogram (weight bins x pixel bins, % of ops)",
        &[
            "w\\p", "0-31", "32-63", "64-95", "96-127", "128-159", "160-191", "192-223", "224-255",
        ],
    );
    for (i, row) in hist.iter().enumerate() {
        let mut cells = vec![format!("{}-{}", i * 32, i * 32 + 31)];
        cells.extend(
            row.iter()
                .map(|&c| format!("{:.1}", 100.0 * c as f64 / total as f64)),
        );
        t.row_owned(cells);
    }
    let peak = hist.iter().flatten().max().copied().unwrap_or(0);
    let mut s = t.render();
    s.push_str(&format!(
        "{} multiplications traced; busiest cell holds {:.1}% (uniform would \
         be {:.1}%) — the narrow operand band the paper's swapping exploits\n",
        total,
        100.0 * peak as f64 / total as f64,
        100.0 / 64.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_fpga_area_collapse() {
        let s = fig1();
        // The FPGA area gains of W and K against the strongest accurate
        // soft multiplier must be below their quoted ASIC gains.
        let fpga_rows: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("FPGA (measured)"))
            .collect();
        assert_eq!(fpga_rows.len(), 2);
        for row in fpga_rows {
            let area_cell = row
                .split_whitespace()
                .nth(3)
                .expect("area column")
                .trim_end_matches('%');
            let area: f64 = area_cell.parse().expect("numeric");
            assert!(area < 12.0, "FPGA area gain should collapse: {row}");
        }
    }

    #[test]
    fn fig7_proposed_beats_ip() {
        let s = fig7();
        // Every Ca/Cc row must show a positive area gain vs the IP.
        for line in s.lines().filter(|l| {
            let t = l.trim_start();
            t.contains(" Ca ") || t.contains(" Cc ")
        }) {
            assert!(
                line.matches('+').count() >= 1,
                "proposed design without any gain: {line}"
            );
        }
    }

    #[test]
    fn fig8_profiles_render() {
        let s = fig8();
        assert!(s.contains("Ca 8x8"));
        assert!(s.contains("distinct errors"));
    }

    #[test]
    fn fig9_ca_is_pareto_optimal() {
        let s = fig9();
        let ca_row = s
            .lines()
            .find(|l| l.contains("Ca 8x8"))
            .expect("Ca row present");
        assert!(
            ca_row.trim_end().ends_with('*'),
            "Ca must be on the front: {ca_row}"
        );
    }

    #[test]
    fn fig12_is_concentrated() {
        let s = fig12();
        assert!(s.contains("busiest cell"));
    }
}
