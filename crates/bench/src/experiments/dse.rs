//! Design-space exploration experiments (beyond the paper's two named
//! configurations per width).

use std::path::Path;
use std::sync::Arc;

use axmul_core::behavioral::Summation;
use axmul_dse::{evaluate, run, Config, DiskStore, DseOptions, Leaf};

use crate::report::{f, Table};

/// **Extension: 8×8 design-space exploration.** The paper evaluates the
/// homogeneous approx-Ca / approx-Cc points; this sweeps all 1250
/// heterogeneous configurations (per-quadrant kernel choice × summation)
/// and reports the error-vs-LUT Pareto front the paper's two designs
/// live in.
#[must_use]
pub fn ext_dse() -> String {
    let opts = DseOptions::exhaustive_8x8();
    let result = run(&opts).expect("generated netlists simulate");
    let mut t = Table::new(
        "Extension: 8x8 DSE - error/LUT Pareto front over 1250 configurations",
        &["configuration", "LUTs", "ns", "EDP", "ARE", "max |e|"],
    );
    for r in result.lut_front() {
        t.row_owned(vec![
            r.key.clone(),
            r.luts.to_string(),
            f(r.critical_path_ns, 3),
            f(r.edp, 1),
            format!("{:.6}", r.avg_relative_error),
            r.max_error.to_string(),
        ]);
    }
    let mut s = t.render();
    let verdict = |summation: Summation, label: &str| {
        let key = Config::paper(8, summation).key();
        let r = result.find(&key).expect("paper config evaluated");
        format!(
            "{label} {key}: {} on error/LUT, {} on error/EDP\n",
            if r.on_lut_front {
                "non-dominated"
            } else {
                "dominated"
            },
            if r.on_edp_front {
                "non-dominated"
            } else {
                "dominated"
            },
        )
    };
    s.push_str(&verdict(Summation::Accurate, "approx-Ca"));
    s.push_str(&verdict(Summation::CarryFree, "approx-Cc"));
    s.push_str(&format!(
        "cache: {} hits / {} misses ({:.1}% hit rate), {:.1} cand/s overall\n",
        result.cache_hits,
        result.cache_misses,
        100.0 * result.hit_rate(),
        result.reports.len() as f64 / result.elapsed.as_secs_f64().max(1e-9),
    ));
    s.push_str(&format!(
        "characterization: error {:.3}s, energy {:.3}s, STA {:.3}s (of {:.2}s total)\n",
        result.char_time.error.as_secs_f64(),
        result.char_time.energy.as_secs_f64(),
        result.char_time.sta.as_secs_f64(),
        result.elapsed.as_secs_f64(),
    ));
    s
}

/// [`ext_dse`] as a machine-readable JSON digest, including the
/// wall-clock split of where the characterization time went (error
/// sweeps vs energy measurements vs STA) so future optimization passes
/// can see the hot path without re-profiling.
#[must_use]
pub fn ext_dse_json() -> String {
    let opts = DseOptions::exhaustive_8x8();
    let result = run(&opts).expect("generated netlists simulate");
    let elapsed = result.elapsed.as_secs_f64();
    format!(
        "{{\n  \"bench\": \"ext-dse\",\n  \"configs\": {},\n  \"elapsed_s\": {:.4},\n  \
         \"cand_per_s\": {:.1},\n  \"char_time_s\": {{\"error\": {:.4}, \"energy\": {:.4}, \
         \"sta\": {:.4}}},\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"builds\": {}}},\n  \
         \"lut_front\": {},\n  \"edp_front\": {}\n}}\n",
        result.reports.len(),
        elapsed,
        result.reports.len() as f64 / elapsed.max(1e-9),
        result.char_time.error.as_secs_f64(),
        result.char_time.energy.as_secs_f64(),
        result.char_time.sta.as_secs_f64(),
        result.cache_hits,
        result.cache_misses,
        result.cache_builds,
        result.lut_front().len(),
        result.edp_front().len(),
    )
}

/// **Extension: 8×8 DSE with a persistent store.** The same exhaustive
/// 1250-configuration sweep as [`ext_dse`], but every characterization
/// is written to (and, on a second run, restored from) the on-disk
/// store in `dir`. A warm rerun against a populated store reports zero
/// builds — the whole sweep is served from disk.
#[must_use]
pub fn ext_dse_cached(dir: &Path) -> String {
    let store = match DiskStore::open(dir) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            return format!(
                "ext-dse --cache-dir {}: cannot open store: {e}\n",
                dir.display()
            )
        }
    };
    let before = store.stored_records();
    let mut opts = DseOptions::exhaustive_8x8();
    opts.store = Some(Arc::clone(&store));
    let result = run(&opts).expect("generated netlists simulate");
    let front = result.lut_front().len();
    format!(
        "Extension: 8x8 DSE over persistent store {}\n\
         phase: {}  ({} records on disk at start, {} at end)\n\
         {} candidates in {:.2} s ({:.1} cand/s), error/LUT front size {}\n\
         cache: {} builds, {} disk hits, {} in-memory hits\n",
        store.root().display(),
        if result.cache_builds == 0 {
            "warm"
        } else {
            "cold"
        },
        before,
        store.stored_records(),
        result.reports.len(),
        result.elapsed.as_secs_f64(),
        result.reports.len() as f64 / result.elapsed.as_secs_f64().max(1e-9),
        front,
        result.cache_builds,
        result.cache_disk_hits,
        result.cache_hits,
    )
}

/// **DSE worker scaling.** Evaluates a fixed 60-candidate set with 1,
/// 2 and 4 workers and reports the wall-clock speedup of the sharded
/// pool (bounded by the machine's core count — on a single-core host
/// the pool degrades gracefully to ~1.0×).
#[must_use]
pub fn dse_scaling() -> String {
    let candidates = scaling_candidates();
    let mut t = Table::new(
        "DSE worker-pool scaling (fixed 60-candidate 8x8 set)",
        &["workers", "wall s", "cand/s", "speedup"],
    );
    let mut base = None;
    for workers in [1usize, 2, 4] {
        let mut opts = DseOptions::exhaustive_8x8();
        opts.workers = workers;
        let result = evaluate(&opts, &candidates).expect("generated netlists simulate");
        let secs = result.elapsed.as_secs_f64();
        let base_secs = *base.get_or_insert(secs);
        t.row_owned(vec![
            workers.to_string(),
            f(secs, 2),
            f(result.reports.len() as f64 / secs.max(1e-9), 1),
            format!("{:.2}x", base_secs / secs.max(1e-9)),
        ]);
    }
    t.render()
}

/// Deterministic mixed candidate set: all 10 homogeneous quads plus
/// seeded-random heterogeneous ones, 60 unique configurations total.
fn scaling_candidates() -> Vec<Config> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for summation in [Summation::Accurate, Summation::CarryFree] {
        for leaf in Leaf::ALL {
            let cfg = Config::uniform(Config::Leaf(leaf), summation);
            seen.insert(cfg.key());
            out.push(cfg);
        }
    }
    let mut rng = StdRng::seed_from_u64(0xD5E_5CA1E);
    while out.len() < 60 {
        let cfg = Config::random(8, &mut rng);
        if seen.insert(cfg.key()) {
            out.push(cfg);
        }
    }
    out.sort_by_key(Config::key);
    out
}

/// A fast subset exploration used by unit tests and the Criterion
/// bench: the 10 homogeneous quads only.
#[must_use]
pub fn dse_subset() -> axmul_dse::DseResult {
    let candidates: Vec<Config> = [Summation::Accurate, Summation::CarryFree]
        .into_iter()
        .flat_map(|s| Leaf::ALL.map(|l| Config::uniform(Config::Leaf(l), s)))
        .collect();
    let opts = DseOptions::exhaustive_8x8();
    evaluate(&opts, &candidates).expect("generated netlists simulate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_contains_paper_points_with_table4_areas() {
        let result = dse_subset();
        assert_eq!(result.reports.len(), 10);
        assert_eq!(result.find("(a A A A A)").unwrap().luts, 57);
        assert_eq!(result.find("(c A A A A)").unwrap().luts, 56);
        // The all-exact Ca design has zero error and is non-dominated.
        let exact = result.find("(a X X X X)").unwrap();
        assert_eq!(exact.avg_error, 0.0);
        assert!(exact.on_lut_front);
    }

    #[test]
    fn scaling_candidates_are_unique_and_sized() {
        let c = scaling_candidates();
        assert_eq!(c.len(), 60);
        assert!(c.iter().all(|cfg| cfg.bits() == 8));
    }
}
