//! The `repro sim-bench` experiment: compiled bit-sliced simulator
//! throughput versus the interpretive [`WideSim`] path it replaced.
//!
//! For every 8×8 architecture in the Fig. 7 roster the experiment runs
//! the exhaustive 65 536-pair error-characterization sweep twice —
//! once through a faithful replica of the legacy interpretive loop
//! (64-lane [`WideSim`] passes with per-lane transpose and gather) and
//! once through the compiled instruction stream
//! ([`CompiledNetlist::for_each_operand_pair_in`]) — with the *same*
//! visitor workload, asserts the two product streams are bit-identical,
//! and reports pairs/second and the speedup. It also cross-checks that
//! [`ErrorStats`] built from the legacy product stream equal
//! [`ErrorStats::exhaustive_wide`] exactly, and times the NN product
//! table build (129×129 scalar [`eval_with_faults`] before the rework)
//! both ways.
//!
//! The energy section does the same for characterization: a faithful
//! replica of the pre-rework energy loop (scalar 64-lane passes,
//! per-batch bus transpose and boundary snapshot, per-batch float
//! accumulation, duplicate STA) against the packed wide-lane
//! [`measure_packed`] path, reporting net-transitions/second, the
//! roster-level characterize speedup, and whether the packed report is
//! bit-identical to the scalar interpretive [`measure_reference`] for
//! worker counts 1–4 (`"energy_identical"` — gated in CI). Full mode
//! also times a cold exhaustive 8×8 DSE end to end.
//!
//! `sim_bench_json` renders the same measurements as the
//! `BENCH_sim.json` machine-readable artifact.

use std::time::Instant;

use axmul_core::behavioral::Summation;
use axmul_core::Multiplier;
use axmul_dse::{run as dse_run, CharCache, Config, DseOptions};
use axmul_fabric::area::AreaReport;
use axmul_fabric::compile::{CompiledNetlist, CompiledSim};
use axmul_fabric::cost::Characterizer;
use axmul_fabric::fault::eval_with_faults;
use axmul_fabric::power::{
    measure_packed, measure_reference, uniform_stimulus, EnergyReport, PackedStimulus,
};
use axmul_fabric::sim::WideSim;
use axmul_fabric::timing::analyze;
use axmul_fabric::{Driver, NetId, Netlist};
use axmul_metrics::ErrorStats;
use axmul_nn::ProductTable;

use crate::report::{f, Table};
use crate::roster::{fig7_roster, RosterEntry};

/// Faithful replica of the pre-rework exhaustive sweep: 64 lanes per
/// interpretive `WideSim` pass, lane-major operand transpose on the way
/// in, per-lane output gather on the way out.
fn legacy_for_each_operand_pair(netlist: &Netlist, mut visit: impl FnMut(u64, u64, &[u64])) {
    let buses = netlist.input_buses();
    assert_eq!(buses.len(), 2, "sweep needs exactly two operand buses");
    let a_bits = buses[0].1.len() as u32;
    let b_bits = buses[1].1.len() as u32;
    let total: u64 = 1 << (a_bits + b_bits);
    let a_mask = (1u64 << a_bits) - 1;
    let mut sim = WideSim::new(netlist);
    let mut out_buf = vec![0u64; netlist.output_buses().len()];
    let mut idx = 0u64;
    while idx < total {
        let lanes = (total - idx).min(64);
        let a_vals: Vec<u64> = (0..lanes).map(|l| (idx + l) & a_mask).collect();
        let b_vals: Vec<u64> = (0..lanes).map(|l| (idx + l) >> a_bits).collect();
        let outs = sim.eval(&[&a_vals, &b_vals]).expect("valid lanes");
        for l in 0..lanes as usize {
            for (slot, bus) in out_buf.iter_mut().zip(&outs) {
                *slot = bus[l];
            }
            visit(a_vals[l], b_vals[l], &out_buf);
        }
        idx += lanes;
    }
}

/// The shared visitor workload: the same running quantities the error
/// characterization accumulates, so both paths pay identical per-pair
/// cost and any output divergence changes the digest.
#[derive(Debug, Default, PartialEq, Eq)]
struct SweepDigest {
    pairs: u64,
    sum_abs_error: u64,
    max_abs_error: u64,
    checksum: u64,
}

impl SweepDigest {
    fn push(&mut self, a: u64, b: u64, out: &[u64]) {
        let exact = a * b;
        let err = out[0].abs_diff(exact);
        self.pairs += 1;
        self.sum_abs_error += err;
        self.max_abs_error = self.max_abs_error.max(err);
        self.checksum = self
            .checksum
            .rotate_left(7)
            .wrapping_add(out[0] ^ (a << 32) ^ b);
    }
}

/// Table-backed [`Multiplier`] over the legacy sweep's products: feeds
/// [`ErrorStats::exhaustive`] the interpretive simulator's outputs so
/// the statistics cross-check is end-to-end bit-identical or not.
struct LegacyProducts {
    name: String,
    a_bits: u32,
    b_bits: u32,
    products: Vec<u64>,
}

impl Multiplier for LegacyProducts {
    fn a_bits(&self) -> u32 {
        self.a_bits
    }
    fn b_bits(&self) -> u32 {
        self.b_bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.products[((b << self.a_bits) | a) as usize]
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// One architecture's measurements.
struct ArchBench {
    name: String,
    pairs: u64,
    legacy_pairs_per_sec: f64,
    compiled_pairs_per_sec: f64,
    speedup: f64,
    stats_identical: bool,
}

fn time_runs(reps: u32, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_arch(entry: &RosterEntry, reps: u32) -> ArchBench {
    let nl = &entry.netlist;
    let a_bits = nl.input_buses()[0].1.len() as u32;
    let b_bits = nl.input_buses()[1].1.len() as u32;
    let pairs: u64 = 1 << (a_bits + b_bits);

    let mut legacy_digest = SweepDigest::default();
    let legacy_s = time_runs(reps, || {
        let mut d = SweepDigest::default();
        legacy_for_each_operand_pair(nl, |a, b, out| d.push(a, b, out));
        legacy_digest = d;
    });
    let mut compiled_digest = SweepDigest::default();
    let compiled_s = time_runs(reps, || {
        let mut d = SweepDigest::default();
        let prog = CompiledNetlist::compile(nl);
        prog.for_each_operand_pair_in(0..pairs, |a, b, out| d.push(a, b, out))
            .expect("two-bus netlist");
        compiled_digest = d;
    });
    assert_eq!(
        legacy_digest, compiled_digest,
        "{}: compiled sweep diverged from the interpretive reference",
        entry.name
    );

    // Statistics cross-check: ErrorStats over the legacy products must
    // equal the compiled exhaustive_wide record exactly, float bits
    // included.
    let mut products = vec![0u64; pairs as usize];
    legacy_for_each_operand_pair(nl, |a, b, out| {
        products[((b << a_bits) | a) as usize] = out[0];
    });
    let legacy_stats = ErrorStats::exhaustive(&LegacyProducts {
        name: nl.name().to_string(),
        a_bits,
        b_bits,
        products,
    });
    let compiled_stats = ErrorStats::exhaustive_wide(nl).expect("two-bus netlist");
    let stats_identical = legacy_stats == compiled_stats
        && legacy_stats.avg_relative_error.to_bits() == compiled_stats.avg_relative_error.to_bits();

    ArchBench {
        name: entry.name.clone(),
        pairs,
        legacy_pairs_per_sec: pairs as f64 / legacy_s,
        compiled_pairs_per_sec: pairs as f64 / compiled_s,
        speedup: legacy_s / compiled_s,
        stats_identical,
    }
}

/// Faithful replica of the pre-rework `characterize_with`: area walk,
/// the STA it ran for its cost record, step-major stimulus generation
/// (one heap `Vec` per vector), then the old `measure_with` loop —
/// scalar 64-lane passes with a `Vec<Vec<u64>>` bus transpose per
/// batch, a freshly allocated per-net `Vec<bool>` boundary snapshot
/// per batch, float weight accumulation inside the per-net loop, and a
/// *second* STA for the report's delay field.
fn legacy_characterize_energy(
    netlist: &Netlist,
    prog: &CompiledNetlist,
    ch: &Characterizer,
) -> EnergyReport {
    let (energy, delay) = (&ch.energy, &ch.delay);
    let area = AreaReport::of(netlist);
    std::hint::black_box(area.luts);
    let cost_timing = analyze(netlist, delay);
    std::hint::black_box(cost_timing.critical_path_ns);
    let stimulus = uniform_stimulus(netlist, ch.stimulus_len, ch.stimulus_seed);
    let n_buses = netlist.input_buses().len();
    let fanouts = netlist.fanouts();
    let drivers = netlist.drivers();
    let weights: Vec<f64> = drivers
        .iter()
        .enumerate()
        .map(|(net, d)| match d {
            Driver::Const(_) => 0.0,
            Driver::CarrySum(..) | Driver::CarryCout(..) => {
                energy.c_carry + energy.c_fanout * f64::from(fanouts[net])
            }
            _ => energy.c_lut + energy.c_fanout * f64::from(fanouts[net]),
        })
        .collect();

    let mut sim: CompiledSim<'_, 1> = prog.simulator();
    let mut total = 0.0f64;
    let mut transitions = 0u64;
    let mut boundary: Option<Vec<bool>> = None;
    let mut pos = 0usize;
    while pos < stimulus.len() {
        let n = (stimulus.len() - pos).min(64);
        let mut buses: Vec<Vec<u64>> = vec![Vec::with_capacity(n); n_buses];
        for step in &stimulus[pos..pos + n] {
            for (bus, &val) in step.iter().enumerate() {
                buses[bus].push(val);
            }
        }
        let refs: Vec<&[u64]> = buses.iter().map(Vec::as_slice).collect();
        sim.load(&refs).expect("stimulus matches netlist");
        sim.run();
        for (net, &weight) in weights.iter().enumerate() {
            if weight == 0.0 {
                continue;
            }
            let word = sim.net_word(NetId::new(net as u32))[0];
            let within = (word ^ (word >> 1)) & ((1u64 << (n - 1)) - 1);
            let mut t = u64::from(within.count_ones());
            if let Some(prev) = &boundary {
                if prev[net] != (word & 1 == 1) {
                    t += 1;
                }
            }
            total += weight * t as f64;
        }
        transitions += (n - 1) as u64 + u64::from(boundary.is_some());
        boundary = Some(
            (0..netlist.net_count())
                .map(|net| (sim.net_word(NetId::new(net as u32))[0] >> (n - 1)) & 1 == 1)
                .collect::<Vec<bool>>(),
        );
        pos += n;
    }

    let transitions = transitions.max(1);
    let energy_per_op = total / transitions as f64;
    let critical_path_ns = analyze(netlist, delay).critical_path_ns;
    EnergyReport {
        energy_per_op,
        critical_path_ns,
        edp: energy_per_op * critical_path_ns,
        transitions,
    }
}

/// One architecture's energy-characterization measurements.
struct EnergyBench {
    name: String,
    /// Scalar interpretive characterize: STA for the cost record, then
    /// a step-at-a-time [`measure_reference`] (with its own STA) — the
    /// pre-compiled-simulator shape of the energy path.
    scalar_char_s: f64,
    /// Compiled 64-lane batch characterize (the immediate
    /// predecessor): [`legacy_characterize_energy`].
    legacy_char_s: f64,
    /// Packed wide-lane characterize: `Characterizer::characterize_timed`.
    packed_char_s: f64,
    /// `scalar_char_s / packed_char_s` — the headline speedup against
    /// the scalar reference the report is gated bit-identical to.
    speedup: f64,
    /// `legacy_char_s / packed_char_s`.
    speedup_vs_batched: f64,
    /// Net-level adjacent-step transitions examined per second, in
    /// millions: `non-const nets × (steps − 1) / seconds / 1e6`.
    legacy_mtrans_per_sec: f64,
    packed_mtrans_per_sec: f64,
    /// Packed path bit-identical (`energy_per_op`, `edp`) to the
    /// scalar interpretive reference for worker counts 1–4.
    energy_identical: bool,
}

fn bench_energy(entry: &RosterEntry, reps: u32) -> EnergyBench {
    let nl = &entry.netlist;
    let prog = CompiledNetlist::compile(nl);
    let ch = Characterizer::virtex7();
    let stimulus = uniform_stimulus(nl, ch.stimulus_len, ch.stimulus_seed);
    let packed = PackedStimulus::uniform(nl, ch.stimulus_len, ch.stimulus_seed);

    let scalar_s = time_runs(reps, || {
        let cost_timing = analyze(nl, &ch.delay);
        std::hint::black_box(cost_timing.critical_path_ns);
        let stim = uniform_stimulus(nl, ch.stimulus_len, ch.stimulus_seed);
        let r = measure_reference(nl, &ch.energy, &ch.delay, &stim).expect("reference measures");
        std::hint::black_box(r.edp);
    });
    let legacy_s = time_runs(reps, || {
        let r = legacy_characterize_energy(nl, &prog, &ch);
        std::hint::black_box(r.edp);
    });
    let packed_s = time_runs(reps, || {
        let (cost, _) = ch
            .characterize_timed(nl, &prog)
            .expect("roster netlist characterizes");
        std::hint::black_box(cost.edp);
    });

    let reference =
        measure_reference(nl, &ch.energy, &ch.delay, &stimulus).expect("reference measures");
    let critical_path_ns = analyze(nl, &ch.delay).critical_path_ns;
    let energy_identical = (1..=4).all(|workers| {
        let r = measure_packed(nl, &prog, &ch.energy, critical_path_ns, &packed, workers)
            .expect("packed measure");
        r.energy_per_op.to_bits() == reference.energy_per_op.to_bits()
            && r.edp.to_bits() == reference.edp.to_bits()
    });

    let tracked = nl
        .drivers()
        .iter()
        .filter(|d| !matches!(d, Driver::Const(_)))
        .count() as u64;
    let net_transitions = (tracked * (ch.stimulus_len as u64 - 1)) as f64;
    EnergyBench {
        name: entry.name.clone(),
        scalar_char_s: scalar_s,
        legacy_char_s: legacy_s,
        packed_char_s: packed_s,
        speedup: scalar_s / packed_s,
        speedup_vs_batched: legacy_s / packed_s,
        legacy_mtrans_per_sec: net_transitions / legacy_s / 1e6,
        packed_mtrans_per_sec: net_transitions / packed_s / 1e6,
        energy_identical,
    }
}

/// NN product-table build: the pre-rework path evaluated 129×129
/// magnitude pairs through scalar [`eval_with_faults`]; the compiled
/// path sweeps all 2¹⁶ pairs bit-sliced.
fn bench_nn_table(reps: u32) -> (f64, f64) {
    let nl = axmul_core::structural::ca_netlist(8).expect("8-bit Ca");
    let legacy_s = time_runs(reps, || {
        let mut mags = vec![0i64; 129 * 129];
        for am in 0..=128u64 {
            for bm in 0..=128u64 {
                let out = eval_with_faults(&nl, &[am, bm], &[]).expect("valid vector");
                mags[(am * 129 + bm) as usize] = out[0] as i64;
            }
        }
        std::hint::black_box(&mags);
    });
    let compiled_s = time_runs(reps, || {
        let t = ProductTable::from_netlist_with_faults(&nl, &[], "ca8").expect("8x8 netlist");
        std::hint::black_box(&t);
    });
    (legacy_s, compiled_s)
}

/// Everything one `sim-bench` invocation measures.
struct SimBench {
    archs: Vec<ArchBench>,
    energy: Vec<EnergyBench>,
    nn_legacy_s: f64,
    nn_compiled_s: f64,
    /// Cold exhaustive 8×8 DSE wall clock (full mode only): the
    /// end-to-end number the characterization rework is accountable
    /// for.
    ext_dse_cold_s: Option<f64>,
}

fn run(quick: bool) -> SimBench {
    let reps = if quick { 1 } else { 3 };
    let mut roster = fig7_roster(8);
    if quick {
        roster.truncate(2);
    }
    let archs: Vec<ArchBench> = roster.iter().map(|e| bench_arch(e, reps)).collect();
    // The energy section also covers the two paper DSE points as
    // LUT-mapped quad netlists — several times larger than the
    // structural roster designs, and the shape the characterization
    // cache actually hammers.
    let cache = CharCache::new(Characterizer::virtex7());
    for summation in [Summation::Accurate, Summation::CarryFree] {
        let cfg = Config::paper(8, summation);
        let bc = cache
            .characterize(&cfg)
            .expect("paper config characterizes");
        roster.push(RosterEntry {
            name: format!("DSE {}", cfg.key()),
            netlist: (*bc.netlist).clone(),
        });
    }
    let energy: Vec<EnergyBench> = roster.iter().map(|e| bench_energy(e, reps)).collect();
    let (nn_legacy_s, nn_compiled_s) = bench_nn_table(reps);
    let ext_dse_cold_s = (!quick).then(|| {
        let t = Instant::now();
        let result = dse_run(&DseOptions::exhaustive_8x8()).expect("generated netlists simulate");
        std::hint::black_box(result.reports.len());
        t.elapsed().as_secs_f64()
    });
    SimBench {
        archs,
        energy,
        nn_legacy_s,
        nn_compiled_s,
        ext_dse_cold_s,
    }
}

fn render(b: &SimBench) -> String {
    let SimBench {
        archs,
        nn_legacy_s,
        nn_compiled_s,
        ..
    } = b;
    let (nn_legacy_s, nn_compiled_s) = (*nn_legacy_s, *nn_compiled_s);
    let mut t = Table::new(
        "Simulator throughput: exhaustive 8x8 characterization sweep",
        &[
            "design",
            "pairs",
            "legacy pairs/s",
            "compiled pairs/s",
            "speedup",
            "stats",
        ],
    );
    for a in archs {
        t.row_owned(vec![
            a.name.clone(),
            a.pairs.to_string(),
            f(a.legacy_pairs_per_sec, 0),
            f(a.compiled_pairs_per_sec, 0),
            format!("{}x", f(a.speedup, 1)),
            if a.stats_identical {
                "bit-identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    let mut out = t.render();
    let mut e = Table::new(
        "Energy characterization: packed wide-lane vs scalar reference and 64-lane batch loop",
        &[
            "design",
            "scalar ms",
            "batch ms",
            "packed ms",
            "vs scalar",
            "vs batch",
            "packed Mtr/s",
            "report",
        ],
    );
    for a in &b.energy {
        e.row_owned(vec![
            a.name.clone(),
            f(a.scalar_char_s * 1e3, 3),
            f(a.legacy_char_s * 1e3, 3),
            f(a.packed_char_s * 1e3, 3),
            format!("{}x", f(a.speedup, 1)),
            format!("{}x", f(a.speedup_vs_batched, 1)),
            f(a.packed_mtrans_per_sec, 1),
            if a.energy_identical {
                "bit-identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    out.push('\n');
    out.push_str(&e.render());
    let scalar_total: f64 = b.energy.iter().map(|a| a.scalar_char_s).sum();
    let legacy_total: f64 = b.energy.iter().map(|a| a.legacy_char_s).sum();
    let packed_total: f64 = b.energy.iter().map(|a| a.packed_char_s).sum();
    out.push_str(&format!(
        "\ncharacterize (STA + energy) over the roster: scalar {} s, 64-lane batch {} s, \
         packed {} s ({}x vs scalar, {}x vs batch)\n",
        f(scalar_total, 4),
        f(legacy_total, 4),
        f(packed_total, 4),
        f(scalar_total / packed_total, 1),
        f(legacy_total / packed_total, 1),
    ));
    if let Some(cold) = b.ext_dse_cold_s {
        out.push_str(&format!(
            "cold exhaustive 8x8 DSE (repro ext-dse): {} s\n",
            f(cold, 2),
        ));
    }
    out.push_str(&format!(
        "\nNN product table build (Ca 8x8, fault-free): legacy {} s, compiled {} s ({}x)\n",
        f(nn_legacy_s, 3),
        f(nn_compiled_s, 3),
        f(nn_legacy_s / nn_compiled_s, 1),
    ));
    out
}

fn render_json(b: &SimBench, quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"bench\": \"sim\",\n  \"mode\": \"{}\",\n  \"archs\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, a) in b.archs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"pairs\": {}, \"legacy_pairs_per_sec\": {:.1}, \
             \"compiled_pairs_per_sec\": {:.1}, \"speedup\": {:.2}, \"stats_identical\": {}}}{}\n",
            a.name,
            a.pairs,
            a.legacy_pairs_per_sec,
            a.compiled_pairs_per_sec,
            a.speedup,
            a.stats_identical,
            if i + 1 < b.archs.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"energy\": [\n");
    for (i, a) in b.energy.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_char_s\": {:.6}, \"legacy_char_s\": {:.6}, \
             \"packed_char_s\": {:.6}, \"speedup_vs_scalar\": {:.2}, \
             \"speedup_vs_batched\": {:.2}, \"legacy_mtrans_per_sec\": {:.1}, \
             \"packed_mtrans_per_sec\": {:.1}}}{}\n",
            a.name,
            a.scalar_char_s,
            a.legacy_char_s,
            a.packed_char_s,
            a.speedup,
            a.speedup_vs_batched,
            a.legacy_mtrans_per_sec,
            a.packed_mtrans_per_sec,
            if i + 1 < b.energy.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    let scalar_total: f64 = b.energy.iter().map(|a| a.scalar_char_s).sum();
    let legacy_total: f64 = b.energy.iter().map(|a| a.legacy_char_s).sum();
    let packed_total: f64 = b.energy.iter().map(|a| a.packed_char_s).sum();
    s.push_str(&format!(
        "  \"characterize_speedup\": {:.2},\n  \"characterize_speedup_vs_batched\": {:.2},\n  \
         \"energy_identical\": {},\n",
        scalar_total / packed_total,
        legacy_total / packed_total,
        b.energy.iter().all(|a| a.energy_identical),
    ));
    if let Some(cold) = b.ext_dse_cold_s {
        s.push_str(&format!("  \"ext_dse_cold_s\": {cold:.3},\n"));
    }
    s.push_str(&format!(
        "  \"nn_table_build\": {{\"legacy_s\": {:.4}, \"compiled_s\": {:.4}, \"speedup\": {:.2}}}\n",
        b.nn_legacy_s,
        b.nn_compiled_s,
        b.nn_legacy_s / b.nn_compiled_s,
    ));
    s.push_str("}\n");
    s
}

/// Full simulator-throughput report over the Fig. 7 roster.
#[must_use]
pub fn sim_bench() -> String {
    render(&run(false))
}

/// CI smoke variant: two architectures, single repetition.
#[must_use]
pub fn sim_bench_quick() -> String {
    render(&run(true))
}

/// The same measurements as a `BENCH_sim.json` payload.
#[must_use]
pub fn sim_bench_json(quick: bool) -> String {
    render_json(&run(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_streams_agree() {
        let report = sim_bench_quick();
        assert!(report.contains("bit-identical"));
        assert!(!report.contains("DIVERGED"));
    }

    #[test]
    fn json_payload_is_well_formed_enough() {
        let json = sim_bench_json(true);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"bench\": \"sim\""));
        assert!(json.contains("\"stats_identical\": true"));
        assert!(!json.contains("\"stats_identical\": false"));
        assert!(json.contains("\"energy_identical\": true"));
        assert!(!json.contains("\"energy_identical\": false"));
        // The cold DSE run is a full-mode measurement only.
        assert!(!json.contains("\"ext_dse_cold_s\""));
    }

    #[test]
    fn legacy_energy_replica_agrees_on_totals() {
        // The replica's float accumulation order differs from the new
        // end-of-run fold, so the values agree to rounding, not bits —
        // which is exactly why the store records carry an algorithm
        // version.
        let entry = &fig7_roster(8)[0];
        let ch = Characterizer::virtex7();
        let prog = CompiledNetlist::compile(&entry.netlist);
        let legacy = legacy_characterize_energy(&entry.netlist, &prog, &ch);
        let (cost, _) = ch.characterize_timed(&entry.netlist, &prog).unwrap();
        assert!((legacy.energy_per_op - cost.energy_per_op).abs() / cost.energy_per_op < 1e-12);
        assert!((legacy.edp - cost.edp).abs() / cost.edp < 1e-12);
    }
}
