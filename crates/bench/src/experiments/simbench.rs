//! The `repro sim-bench` experiment: compiled bit-sliced simulator
//! throughput versus the interpretive [`WideSim`] path it replaced.
//!
//! For every 8×8 architecture in the Fig. 7 roster the experiment runs
//! the exhaustive 65 536-pair error-characterization sweep twice —
//! once through a faithful replica of the legacy interpretive loop
//! (64-lane [`WideSim`] passes with per-lane transpose and gather) and
//! once through the compiled instruction stream
//! ([`CompiledNetlist::for_each_operand_pair_in`]) — with the *same*
//! visitor workload, asserts the two product streams are bit-identical,
//! and reports pairs/second and the speedup. It also cross-checks that
//! [`ErrorStats`] built from the legacy product stream equal
//! [`ErrorStats::exhaustive_wide`] exactly, and times the NN product
//! table build (129×129 scalar [`eval_with_faults`] before the rework)
//! both ways.
//!
//! `sim_bench_json` renders the same measurements as the
//! `BENCH_sim.json` machine-readable artifact.

use std::time::Instant;

use axmul_core::Multiplier;
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::fault::eval_with_faults;
use axmul_fabric::sim::WideSim;
use axmul_fabric::Netlist;
use axmul_metrics::ErrorStats;
use axmul_nn::ProductTable;

use crate::report::{f, Table};
use crate::roster::{fig7_roster, RosterEntry};

/// Faithful replica of the pre-rework exhaustive sweep: 64 lanes per
/// interpretive `WideSim` pass, lane-major operand transpose on the way
/// in, per-lane output gather on the way out.
fn legacy_for_each_operand_pair(netlist: &Netlist, mut visit: impl FnMut(u64, u64, &[u64])) {
    let buses = netlist.input_buses();
    assert_eq!(buses.len(), 2, "sweep needs exactly two operand buses");
    let a_bits = buses[0].1.len() as u32;
    let b_bits = buses[1].1.len() as u32;
    let total: u64 = 1 << (a_bits + b_bits);
    let a_mask = (1u64 << a_bits) - 1;
    let mut sim = WideSim::new(netlist);
    let mut out_buf = vec![0u64; netlist.output_buses().len()];
    let mut idx = 0u64;
    while idx < total {
        let lanes = (total - idx).min(64);
        let a_vals: Vec<u64> = (0..lanes).map(|l| (idx + l) & a_mask).collect();
        let b_vals: Vec<u64> = (0..lanes).map(|l| (idx + l) >> a_bits).collect();
        let outs = sim.eval(&[&a_vals, &b_vals]).expect("valid lanes");
        for l in 0..lanes as usize {
            for (slot, bus) in out_buf.iter_mut().zip(&outs) {
                *slot = bus[l];
            }
            visit(a_vals[l], b_vals[l], &out_buf);
        }
        idx += lanes;
    }
}

/// The shared visitor workload: the same running quantities the error
/// characterization accumulates, so both paths pay identical per-pair
/// cost and any output divergence changes the digest.
#[derive(Debug, Default, PartialEq, Eq)]
struct SweepDigest {
    pairs: u64,
    sum_abs_error: u64,
    max_abs_error: u64,
    checksum: u64,
}

impl SweepDigest {
    fn push(&mut self, a: u64, b: u64, out: &[u64]) {
        let exact = a * b;
        let err = out[0].abs_diff(exact);
        self.pairs += 1;
        self.sum_abs_error += err;
        self.max_abs_error = self.max_abs_error.max(err);
        self.checksum = self
            .checksum
            .rotate_left(7)
            .wrapping_add(out[0] ^ (a << 32) ^ b);
    }
}

/// Table-backed [`Multiplier`] over the legacy sweep's products: feeds
/// [`ErrorStats::exhaustive`] the interpretive simulator's outputs so
/// the statistics cross-check is end-to-end bit-identical or not.
struct LegacyProducts {
    name: String,
    a_bits: u32,
    b_bits: u32,
    products: Vec<u64>,
}

impl Multiplier for LegacyProducts {
    fn a_bits(&self) -> u32 {
        self.a_bits
    }
    fn b_bits(&self) -> u32 {
        self.b_bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.products[((b << self.a_bits) | a) as usize]
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// One architecture's measurements.
struct ArchBench {
    name: String,
    pairs: u64,
    legacy_pairs_per_sec: f64,
    compiled_pairs_per_sec: f64,
    speedup: f64,
    stats_identical: bool,
}

fn time_runs(reps: u32, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_arch(entry: &RosterEntry, reps: u32) -> ArchBench {
    let nl = &entry.netlist;
    let a_bits = nl.input_buses()[0].1.len() as u32;
    let b_bits = nl.input_buses()[1].1.len() as u32;
    let pairs: u64 = 1 << (a_bits + b_bits);

    let mut legacy_digest = SweepDigest::default();
    let legacy_s = time_runs(reps, || {
        let mut d = SweepDigest::default();
        legacy_for_each_operand_pair(nl, |a, b, out| d.push(a, b, out));
        legacy_digest = d;
    });
    let mut compiled_digest = SweepDigest::default();
    let compiled_s = time_runs(reps, || {
        let mut d = SweepDigest::default();
        let prog = CompiledNetlist::compile(nl);
        prog.for_each_operand_pair_in(0..pairs, |a, b, out| d.push(a, b, out))
            .expect("two-bus netlist");
        compiled_digest = d;
    });
    assert_eq!(
        legacy_digest, compiled_digest,
        "{}: compiled sweep diverged from the interpretive reference",
        entry.name
    );

    // Statistics cross-check: ErrorStats over the legacy products must
    // equal the compiled exhaustive_wide record exactly, float bits
    // included.
    let mut products = vec![0u64; pairs as usize];
    legacy_for_each_operand_pair(nl, |a, b, out| {
        products[((b << a_bits) | a) as usize] = out[0];
    });
    let legacy_stats = ErrorStats::exhaustive(&LegacyProducts {
        name: nl.name().to_string(),
        a_bits,
        b_bits,
        products,
    });
    let compiled_stats = ErrorStats::exhaustive_wide(nl).expect("two-bus netlist");
    let stats_identical = legacy_stats == compiled_stats
        && legacy_stats.avg_relative_error.to_bits() == compiled_stats.avg_relative_error.to_bits();

    ArchBench {
        name: entry.name.clone(),
        pairs,
        legacy_pairs_per_sec: pairs as f64 / legacy_s,
        compiled_pairs_per_sec: pairs as f64 / compiled_s,
        speedup: legacy_s / compiled_s,
        stats_identical,
    }
}

/// NN product-table build: the pre-rework path evaluated 129×129
/// magnitude pairs through scalar [`eval_with_faults`]; the compiled
/// path sweeps all 2¹⁶ pairs bit-sliced.
fn bench_nn_table(reps: u32) -> (f64, f64) {
    let nl = axmul_core::structural::ca_netlist(8).expect("8-bit Ca");
    let legacy_s = time_runs(reps, || {
        let mut mags = vec![0i64; 129 * 129];
        for am in 0..=128u64 {
            for bm in 0..=128u64 {
                let out = eval_with_faults(&nl, &[am, bm], &[]).expect("valid vector");
                mags[(am * 129 + bm) as usize] = out[0] as i64;
            }
        }
        std::hint::black_box(&mags);
    });
    let compiled_s = time_runs(reps, || {
        let t = ProductTable::from_netlist_with_faults(&nl, &[], "ca8").expect("8x8 netlist");
        std::hint::black_box(&t);
    });
    (legacy_s, compiled_s)
}

fn run(quick: bool) -> (Vec<ArchBench>, f64, f64) {
    let reps = if quick { 1 } else { 3 };
    let mut roster = fig7_roster(8);
    if quick {
        roster.truncate(2);
    }
    let archs: Vec<ArchBench> = roster.iter().map(|e| bench_arch(e, reps)).collect();
    let (nn_legacy_s, nn_compiled_s) = bench_nn_table(reps);
    (archs, nn_legacy_s, nn_compiled_s)
}

fn render(archs: &[ArchBench], nn_legacy_s: f64, nn_compiled_s: f64) -> String {
    let mut t = Table::new(
        "Simulator throughput: exhaustive 8x8 characterization sweep",
        &[
            "design",
            "pairs",
            "legacy pairs/s",
            "compiled pairs/s",
            "speedup",
            "stats",
        ],
    );
    for a in archs {
        t.row_owned(vec![
            a.name.clone(),
            a.pairs.to_string(),
            f(a.legacy_pairs_per_sec, 0),
            f(a.compiled_pairs_per_sec, 0),
            format!("{}x", f(a.speedup, 1)),
            if a.stats_identical {
                "bit-identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nNN product table build (Ca 8x8, fault-free): legacy {} s, compiled {} s ({}x)\n",
        f(nn_legacy_s, 3),
        f(nn_compiled_s, 3),
        f(nn_legacy_s / nn_compiled_s, 1),
    ));
    out
}

fn render_json(archs: &[ArchBench], nn_legacy_s: f64, nn_compiled_s: f64, quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"bench\": \"sim\",\n  \"mode\": \"{}\",\n  \"archs\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, a) in archs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"pairs\": {}, \"legacy_pairs_per_sec\": {:.1}, \
             \"compiled_pairs_per_sec\": {:.1}, \"speedup\": {:.2}, \"stats_identical\": {}}}{}\n",
            a.name,
            a.pairs,
            a.legacy_pairs_per_sec,
            a.compiled_pairs_per_sec,
            a.speedup,
            a.stats_identical,
            if i + 1 < archs.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"nn_table_build\": {{\"legacy_s\": {:.4}, \"compiled_s\": {:.4}, \"speedup\": {:.2}}}\n",
        nn_legacy_s,
        nn_compiled_s,
        nn_legacy_s / nn_compiled_s,
    ));
    s.push_str("}\n");
    s
}

/// Full simulator-throughput report over the Fig. 7 roster.
#[must_use]
pub fn sim_bench() -> String {
    let (archs, nn_l, nn_c) = run(false);
    render(&archs, nn_l, nn_c)
}

/// CI smoke variant: two architectures, single repetition.
#[must_use]
pub fn sim_bench_quick() -> String {
    let (archs, nn_l, nn_c) = run(true);
    render(&archs, nn_l, nn_c)
}

/// The same measurements as a `BENCH_sim.json` payload.
#[must_use]
pub fn sim_bench_json(quick: bool) -> String {
    let (archs, nn_l, nn_c) = run(quick);
    render_json(&archs, nn_l, nn_c, quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_streams_agree() {
        let report = sim_bench_quick();
        assert!(report.contains("bit-identical"));
        assert!(!report.contains("DIVERGED"));
    }

    #[test]
    fn json_payload_is_well_formed_enough() {
        let json = sim_bench_json(true);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"bench\": \"sim\""));
        assert!(json.contains("\"stats_identical\": true"));
        assert!(!json.contains("\"stats_identical\": false"));
    }
}
