//! Serve-daemon experiments: the load-generator benchmark (cold vs
//! warm persistent store) and the CI smoke check, both driving a real
//! daemon over real sockets.

use axmul_serve::loadgen::{self, LoadgenOptions};

/// **Serve benchmark (full).** Tens of thousands of mixed requests over
/// concurrent TCP connections against a cold store, then the identical
/// workload against the warmed store; reports p50/p99 latency,
/// throughput and the build/disk-hit counters of both phases.
#[must_use]
pub fn serve_bench() -> String {
    bench(&LoadgenOptions::full())
}

/// CI-sized variant of [`serve_bench`].
#[must_use]
pub fn serve_bench_quick() -> String {
    bench(&LoadgenOptions::quick())
}

fn bench(opts: &LoadgenOptions) -> String {
    match loadgen::run(opts) {
        Ok(report) => report.render_text(),
        Err(e) => format!("serve-bench FAILED: {e}\n"),
    }
}

/// Machine-readable serve benchmark — the contents of
/// `BENCH_serve.json`. Errors become a JSON object with an `"error"`
/// key so the artifact is always parseable.
#[must_use]
pub fn serve_bench_json(quick: bool) -> String {
    let opts = if quick {
        LoadgenOptions::quick()
    } else {
        LoadgenOptions::full()
    };
    match loadgen::run(&opts) {
        Ok(report) => report.to_json(),
        Err(e) => format!(
            "{{\"bench\":\"serve\",\"error\":\"{}\"}}",
            e.replace('"', "'")
        ),
    }
}

/// **Serve smoke.** Boots a daemon on a Unix socket, issues one request
/// of every type, and prints a per-type verdict plus a final
/// `serve smoke: PASS`/`FAIL` line for CI to grep.
#[must_use]
pub fn serve_smoke() -> String {
    match loadgen::smoke() {
        Ok(lines) => {
            let mut s = lines.join("\n");
            s.push_str("\nserve smoke: PASS\n");
            s
        }
        Err(e) => format!("{e}\nserve smoke: FAIL\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_reports_pass_and_every_type() {
        let out = serve_smoke();
        assert!(out.contains("serve smoke: PASS"), "{out}");
        for ty in [
            "characterize-config",
            "lint-netlist",
            "nn-classify-batch",
            "dse-query",
        ] {
            assert!(out.contains(ty), "missing {ty} in {out}");
        }
    }
}
