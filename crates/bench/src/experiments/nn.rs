//! The `repro nn` experiment: quantized int8 inference accuracy on
//! approximate multipliers.
//!
//! Three artifacts, mirroring the paper's accelerator case studies but
//! for a neural workload:
//!
//! 1. **Accuracy vs architecture** — top-1 accuracy of the reference
//!    classifier when every MAC routes through a given 8×8 multiplier,
//!    alongside that multiplier's standalone RMSE so the
//!    severity→degradation trend is visible in one table.
//! 2. **Fault robustness** — stuck-at faults injected into the Ca 8×8
//!    netlist; the product table is rebuilt from the faulty netlist
//!    and network accuracy re-measured (satellite of the fabric fault
//!    model).
//! 3. **Accuracy-constrained DSE** — the cheapest recursive 8×8
//!    configuration that keeps the network at ≥95% of the all-exact
//!    baseline accuracy, at strictly fewer LUTs.
//!
//! `nn_quick` is the CI smoke variant: a 64-sample slice, a reduced
//! roster, a 2-point fault sweep, and the homogeneous candidate set.

use axmul_baselines::{evo, Drum, IpOpt, Kulkarni, RehmanW, Truncated, VivadoIp};
use axmul_core::behavioral::{Ca, Cc};
use axmul_core::structural::ca_netlist;
use axmul_core::{Exact, Multiplier};
use axmul_metrics::ErrorStats;
use axmul_nn::{
    accuracy_search, evaluate, fault_sites, fault_sweep, quick_candidates, reference_model,
    test_set, Dataset, ProductTable,
};

use crate::report::{f, Table};

/// Worker count for the sharded batch pool. Determinism is guaranteed
/// for any value; 2 exercises the sharding even on a single-core host.
const WORKERS: usize = 2;

fn behavioral_roster(quick: bool) -> Vec<Box<dyn Multiplier>> {
    let mut r: Vec<Box<dyn Multiplier>> = vec![
        Box::new(Exact::new(8, 8)),
        Box::new(Ca::new(8).expect("8-bit Ca")),
        Box::new(Cc::new(8).expect("8-bit Cc")),
        Box::new(Kulkarni::new(8).expect("8-bit K")),
        Box::new(RehmanW::new(8).expect("8-bit W")),
        Box::new(Truncated::new(8, 2)),
    ];
    if !quick {
        r.push(Box::new(Truncated::new(8, 1)));
        r.push(Box::new(Truncated::new(8, 3)));
        r.push(Box::new(Drum::new(8, 4)));
        r.push(Box::new(VivadoIp::new(8, IpOpt::Area)));
        r.push(Box::new(VivadoIp::new(8, IpOpt::Speed)));
        // A low/medium/high-error slice of the EvoApprox-style library.
        let lib = evo::library();
        let n = lib.len();
        for idx in [0, n / 2, n - 1] {
            r.push(Box::new(lib[idx].clone()));
        }
    }
    r
}

fn accuracy_table(dataset: &Dataset, quick: bool) -> String {
    let model = reference_model();
    let mut rows: Vec<(String, f64, f64, f64, usize, usize)> = Vec::new();
    for mult in behavioral_roster(quick) {
        let stats = ErrorStats::exhaustive(mult.as_ref());
        let table = ProductTable::new(mult.as_ref()).expect("8x8 fits a product table");
        let eval = evaluate(model, &table, dataset, WORKERS).expect("reference dataset is sound");
        rows.push((
            mult.name().to_string(),
            stats.avg_relative_error,
            stats.rmse,
            eval.accuracy(),
            eval.correct,
            eval.total,
        ));
    }
    // Sort by average relative error — the severity metric that tracks
    // decision-level damage (absolute RMSE overweights proportional
    // underestimates like K's, which argmax tolerates).
    rows.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let mut t = Table::new(
        format!(
            "NN top-1 accuracy vs multiplier ({} samples, {} MACs/inference)",
            dataset.len(),
            model.macs_per_inference()
        ),
        &["multiplier", "avg rel e", "RMSE", "accuracy", "correct"],
    );
    for (name, rel, rmse, acc, correct, total) in rows {
        t.row_owned(vec![
            name,
            format!("{rel:.4}"),
            f(rmse, 1),
            format!("{:.2}%", 100.0 * acc),
            format!("{correct}/{total}"),
        ]);
    }
    t.render()
}

fn fault_table(dataset: &Dataset, quick: bool) -> String {
    let model = reference_model();
    let netlist = ca_netlist(8).expect("8-bit Ca netlist");
    let sites = fault_sites(&netlist).len();
    let (counts, trials): (&[usize], usize) = if quick {
        (&[0, 2], 2)
    } else {
        (&[0, 1, 2, 4, 8, 16], 3)
    };
    let points = fault_sweep(
        model,
        dataset,
        &netlist,
        counts,
        trials,
        0xDAC1_8F04,
        WORKERS,
    )
    .expect("Ca netlist simulates under faults");
    let mut t = Table::new(
        format!("NN accuracy under stuck-at faults in the Ca 8x8 netlist ({sites} fault sites)"),
        &["faults", "trials", "mean acc", "min acc"],
    );
    for p in points {
        t.row_owned(vec![
            p.faults.to_string(),
            p.trials.to_string(),
            format!("{:.2}%", 100.0 * p.mean_accuracy),
            format!("{:.2}%", 100.0 * p.min_accuracy),
        ]);
    }
    t.render()
}

fn dse_section(dataset: &Dataset, quick: bool) -> String {
    let model = reference_model();
    let configs = if quick {
        Some(quick_candidates())
    } else {
        None
    };
    let search = accuracy_search(model, dataset, 0.95, WORKERS, configs)
        .expect("DSE candidates characterize");
    let mut t = Table::new(
        format!(
            "Accuracy-constrained DSE ({} configurations, floor {:.2}% = 95% of baseline)",
            search.points.len(),
            100.0 * search.floor
        ),
        &["configuration", "LUTs", "EDP", "RMSE", "accuracy"],
    );
    let mut shown = 0;
    for p in &search.points {
        if p.accuracy >= search.floor {
            t.row_owned(vec![
                p.key.clone(),
                p.luts.to_string(),
                f(p.edp, 1),
                f(p.rmse, 1),
                format!("{:.2}%", 100.0 * p.accuracy),
            ]);
            shown += 1;
            if shown >= 10 {
                break;
            }
        }
    }
    let mut s = t.render();
    s.push_str(&format!(
        "baseline {}: {} LUTs, {:.2}% accuracy\n",
        search.baseline.key,
        search.baseline.luts,
        100.0 * search.baseline.accuracy
    ));
    match &search.best {
        Some(best) => s.push_str(&format!(
            "best {}: {} LUTs ({} fewer than baseline) at {:.2}% accuracy\n",
            best.key,
            best.luts,
            search.baseline.luts - best.luts,
            100.0 * best.accuracy
        )),
        None => s.push_str("no configuration beat the baseline under the floor\n"),
    }
    s
}

fn nn_report(quick: bool) -> String {
    let full = test_set();
    let dataset = if quick {
        Dataset {
            images: full.images[..64].to_vec(),
            labels: full.labels[..64].to_vec(),
        }
    } else {
        full
    };
    let mut s = accuracy_table(&dataset, quick);
    s.push('\n');
    s.push_str(&fault_table(&dataset, quick));
    s.push('\n');
    s.push_str(&dse_section(&dataset, quick));
    s
}

/// **NN inference accuracy.** The full experiment: complete roster,
/// 256-sample test set, 6-point fault sweep, exhaustive 1250-config
/// accuracy-constrained DSE.
#[must_use]
pub fn nn_full() -> String {
    nn_report(false)
}

/// **NN smoke run** (`repro nn --quick`): reduced roster, 64 samples,
/// 2-point fault sweep, homogeneous DSE candidates. Fast enough for CI.
#[must_use]
pub fn nn_quick() -> String {
    nn_report(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_contains_all_three_sections() {
        let s = nn_quick();
        assert!(s.contains("NN top-1 accuracy vs multiplier"));
        assert!(s.contains("stuck-at faults"));
        assert!(s.contains("Accuracy-constrained DSE"));
        assert!(s.contains("baseline (a X X X X)"));
    }
}
