//! The `repro netio` experiment: the interchange layer's headline
//! guarantee — `export → import → export` is a **byte fixpoint** — plus
//! import throughput over the paper roster.
//!
//! Three parts:
//!
//! 1. **Roster fixpoint** — every Fig. 7 design (4/8/16 bits; 4/8 in
//!    `--quick` mode) re-imports from its own Verilog to the identical
//!    byte string, keeps its fingerprint, and survives an axnl-v1 JSON
//!    round trip losslessly.
//! 2. **Config-space fixpoint** — a stride of the 1250-point 8×8 DSE
//!    space gets the same treatment, so the guarantee holds across the
//!    whole generator, not just the named designs.
//! 3. **Import throughput** — repeated parses of the roster's Verilog,
//!    reported in MiB/s and designs/s.
//!
//! `netio_json` renders the same measurements as the
//! `BENCH_netio.json` artifact the CI gate greps for
//! `"fixpoint": true`.

use std::time::Instant;

use axmul_dse::Config;
use axmul_fabric::export::to_verilog;
use axmul_netio::{fingerprint, from_axnl, from_verilog, to_axnl};

use crate::report::Table;
use crate::roster::fig7_roster;

/// One design's round-trip verdict.
struct TripRow {
    name: String,
    bits: u32,
    verilog_bytes: usize,
    axnl_bytes: usize,
    fixpoint: bool,
    lossless_json: bool,
}

/// Runs both round trips on one netlist.
fn round_trip(name: &str, bits: u32, n: &axmul_fabric::Netlist) -> TripRow {
    let v = to_verilog(n);
    let doc = to_axnl(n);
    let fixpoint = match from_verilog(&v) {
        Ok(back) => to_verilog(&back) == v && fingerprint(&back) == fingerprint(n),
        Err(_) => false,
    };
    let lossless_json = match from_axnl(&doc) {
        Ok(back) => to_axnl(&back) == doc && to_verilog(&back) == v,
        Err(_) => false,
    };
    TripRow {
        name: name.to_string(),
        bits,
        verilog_bytes: v.len(),
        axnl_bytes: doc.len(),
        fixpoint,
        lossless_json,
    }
}

/// Round-trips the Fig. 7 roster at the given widths.
fn sweep_roster(widths: &[u32]) -> Vec<TripRow> {
    let mut rows = Vec::new();
    for &bits in widths {
        for entry in fig7_roster(bits) {
            rows.push(round_trip(&entry.name, bits, &entry.netlist));
        }
    }
    rows
}

/// Round-trips every `stride`-th enumerable 8×8 configuration.
fn sweep_configs(stride: usize) -> (usize, usize) {
    let configs = Config::enumerate(8);
    let mut checked = 0;
    let mut ok = 0;
    for cfg in configs.iter().step_by(stride) {
        let row = round_trip(&cfg.key(), 8, &cfg.assemble());
        checked += 1;
        if row.fixpoint && row.lossless_json {
            ok += 1;
        }
    }
    (checked, ok)
}

/// Import throughput over the roster's Verilog text.
struct Throughput {
    designs_per_s: f64,
    mib_per_s: f64,
    designs: usize,
}

fn measure_throughput(widths: &[u32], reps: usize) -> Throughput {
    let texts: Vec<String> = widths
        .iter()
        .flat_map(|&bits| fig7_roster(bits))
        .map(|e| to_verilog(&e.netlist))
        .collect();
    let bytes: usize = texts.iter().map(String::len).sum();
    let start = Instant::now();
    for _ in 0..reps {
        for t in &texts {
            let n = from_verilog(t).expect("roster Verilog imports");
            assert!(n.lut_count() > 0);
        }
    }
    let dt = start.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        designs_per_s: (texts.len() * reps) as f64 / dt,
        mib_per_s: (bytes * reps) as f64 / dt / (1024.0 * 1024.0),
        designs: texts.len(),
    }
}

struct Measurements {
    roster: Vec<TripRow>,
    configs_checked: usize,
    configs_ok: usize,
    throughput: Throughput,
}

impl Measurements {
    /// The headline verdict: every round trip on every design held.
    fn fixpoint(&self) -> bool {
        self.roster.iter().all(|r| r.fixpoint && r.lossless_json)
            && self.configs_ok == self.configs_checked
    }
}

fn measure(quick: bool) -> Measurements {
    let (widths, stride, reps) = if quick {
        (&[4u32, 8][..], 125, 3)
    } else {
        (&[4u32, 8, 16][..], 25, 20)
    };
    let (configs_checked, configs_ok) = sweep_configs(stride);
    Measurements {
        roster: sweep_roster(widths),
        configs_checked,
        configs_ok,
        throughput: measure_throughput(widths, reps),
    }
}

fn render(m: &Measurements) -> String {
    let mut t = Table::new(
        "Interchange round trips over the Fig. 7 roster",
        &[
            "design",
            "bits",
            "verilog B",
            "axnl B",
            "fixpoint",
            "axnl lossless",
        ],
    );
    for r in &m.roster {
        t.row_owned(vec![
            r.name.clone(),
            r.bits.to_string(),
            r.verilog_bytes.to_string(),
            r.axnl_bytes.to_string(),
            if r.fixpoint { "yes" } else { "NO" }.to_string(),
            if r.lossless_json { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut out = t.render();
    let p = &m.throughput;
    out.push_str(&format!(
        "\n8x8 config space: {}/{} sampled configurations round-trip\n\
         import throughput: {:.0} designs/s, {:.1} MiB/s over {} roster designs\n\
         \nnetio verdict: {}\n",
        m.configs_ok,
        m.configs_checked,
        p.designs_per_s,
        p.mib_per_s,
        p.designs,
        if m.fixpoint() { "FIXPOINT" } else { "DIVERGED" }
    ));
    out
}

fn render_json(m: &Measurements, quick: bool) -> String {
    let p = &m.throughput;
    format!(
        "{{\n  \"bench\": \"netio\",\n  \"mode\": \"{}\",\n\
         \x20 \"roster_designs\": {},\n  \"roster_fixpoint\": {},\n\
         \x20 \"roster_axnl_lossless\": {},\n\
         \x20 \"configs_checked\": {},\n  \"configs_ok\": {},\n\
         \x20 \"import_designs_per_s\": {:.1},\n  \"import_mib_per_s\": {:.2},\n\
         \x20 \"fixpoint\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        m.roster.len(),
        m.roster.iter().filter(|r| r.fixpoint).count(),
        m.roster.iter().filter(|r| r.lossless_json).count(),
        m.configs_checked,
        m.configs_ok,
        p.designs_per_s,
        p.mib_per_s,
        m.fixpoint(),
    )
}

/// Full report: roster at 4/8/16 bits, every 25th 8×8 configuration,
/// 20 throughput repetitions.
#[must_use]
pub fn netio_report() -> String {
    render(&measure(false))
}

/// CI smoke variant: roster at 4/8 bits, every 125th configuration,
/// 3 throughput repetitions.
#[must_use]
pub fn netio_quick() -> String {
    render(&measure(true))
}

/// The same measurements as a `BENCH_netio.json` payload.
#[must_use]
pub fn netio_json(quick: bool) -> String {
    render_json(&measure(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_a_fixpoint() {
        let m = measure(true);
        assert!(m.fixpoint(), "interchange round trip diverged");
        let report = render(&m);
        assert!(report.contains("netio verdict: FIXPOINT"));
        assert!(!report.contains("NO"));
    }

    #[test]
    fn json_payload_carries_the_gate_fields() {
        let json = netio_json(true);
        assert!(json.contains("\"bench\": \"netio\""));
        assert!(json.contains("\"fixpoint\": true"));
    }
}
