//! The `repro absint` experiment: the abstract interpreter's headline
//! soundness claim, checked against bit-identical ground truth.
//!
//! Three parts:
//!
//! 1. **8×8 containment** — for every configuration in the (strided in
//!    `--quick` mode) 1250-point design space, the static bracket
//!    `[wce_lb, wce_ub]` must contain the exhaustive worst-case error,
//!    the certificate must replay, and the static witness must achieve
//!    at least `wce_lb` deviation on the real evaluator. The paper's
//!    two named designs must be bounded *exactly*.
//! 2. **Roster containment** — the generic netlist analyzer's output
//!    intervals and deviation bounds must contain observed behavior on
//!    every Fig. 7 roster design (exhaustively at 4/8 bits, on sampled
//!    vectors at 16).
//! 3. **16×16 bound-guided search** — a hill-climb under a worst-case
//!    error budget, reporting how many candidates static pruning
//!    skipped before any exact characterization.
//!
//! `absint_json` renders the same measurements as the
//! `BENCH_absint.json` artifact the CI gate greps for
//! `"sound": true` and a nonzero `"pruned_16x16"`.

use axmul_absint::analyze_netlist;
use axmul_core::Multiplier;
use axmul_dse::{run, static_bounds, CharCache, Config, DseOptions, PruneOptions, Strategy};
use axmul_fabric::cost::Characterizer;
use axmul_fabric::fault::eval_with_faults;
use axmul_metrics::ErrorStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::Table;
use crate::roster::fig7_roster;

/// Aggregate verdict of the 8×8 configuration-space sweep.
struct ConfigSweep {
    checked: usize,
    contained: usize,
    certified: usize,
    witness_ok: usize,
    exact_brackets: usize,
    paper_exact: bool,
    max_gap: u128,
}

/// Sweeps the 8×8 configuration space with the given stride (1 = all
/// 1250), comparing static brackets against exhaustive statistics.
fn sweep_configs(stride: usize) -> ConfigSweep {
    let cache = CharCache::new(Characterizer::virtex7());
    let mut configs: Vec<Config> = Config::enumerate(8).into_iter().step_by(stride).collect();
    // The paper's two named designs are always in the sample: they are
    // the points the issue requires the bound to hit exactly.
    for s in [
        axmul_core::behavioral::Summation::Accurate,
        axmul_core::behavioral::Summation::CarryFree,
    ] {
        let p = Config::paper(8, s);
        if !configs.iter().any(|c| c.key() == p.key()) {
            configs.push(p);
        }
    }

    let mut out = ConfigSweep {
        checked: 0,
        contained: 0,
        certified: 0,
        witness_ok: 0,
        exact_brackets: 0,
        paper_exact: true,
        max_gap: 0,
    };
    for cfg in &configs {
        let block = cache.characterize(cfg).expect("8x8 configs simulate");
        let analysis = static_bounds(cfg).expect("8x8 fits the interpreter");
        let wce = block.stats.max_error.unsigned_abs() as u128;
        let (lb, ub) = (analysis.bound.wce_lb, analysis.bound.wce_ub());

        out.checked += 1;
        if lb <= wce && wce <= ub {
            out.contained += 1;
        }
        if analysis.certificate.verify().is_ok() {
            out.certified += 1;
        }
        if lb == ub {
            out.exact_brackets += 1;
        }
        out.max_gap = out.max_gap.max(ub - lb);

        // The static witness must *achieve* the claimed lower bound on
        // the exact evaluator, and the bound must cover every witnessed
        // worst-case pair of the exhaustive sweep.
        let m = block.multiplier();
        let achieves_lb = match analysis.bound.witness {
            Some((wa, wb)) => {
                let dev = (m.multiply(wa, wb) as i128 - (wa as i128) * (wb as i128)).unsigned_abs();
                dev >= lb
            }
            None => lb == 0,
        };
        let covers_exact_witnesses = block.stats.worst_case_inputs.iter().all(|&(wa, wb)| {
            let dev = (m.multiply(wa, wb) as i128 - (wa as i128) * (wb as i128)).unsigned_abs();
            dev == wce && dev <= ub
        });
        if achieves_lb && covers_exact_witnesses {
            out.witness_ok += 1;
        }

        if cfg.key() == Config::paper(8, axmul_core::behavioral::Summation::Accurate).key()
            && !(lb == wce && ub == wce)
        {
            out.paper_exact = false;
        }
    }
    out
}

/// One roster design's generic-netlist containment verdict.
struct RosterRow {
    name: String,
    bits: u32,
    value_hi: u128,
    wce_ub: Option<u128>,
    vectors: u64,
    contained: bool,
}

/// Checks the generic netlist analyzer over the Fig. 7 roster:
/// exhaustive product sweeps at 4 and 8 bits, seeded random vectors at
/// 16 bits (2³² pairs is out of reach for an experiment).
fn sweep_roster(widths: &[u32], samples_16: u64) -> Vec<RosterRow> {
    let mut rows = Vec::new();
    for &bits in widths {
        for entry in fig7_roster(bits) {
            let nl = &entry.netlist;
            let analysis = analyze_netlist(nl);
            let value = analysis.outputs[0].interval;
            let err = analysis.error;
            let mut contained = true;
            let vectors;
            if bits <= 8 {
                let stats = ErrorStats::exhaustive_wide(nl).expect("two-bus roster netlist");
                vectors = stats.samples;
                let wce = stats.max_error.unsigned_abs() as u128;
                contained &= err.as_ref().is_some_and(|e| wce <= e.wce_ub());
            } else {
                vectors = samples_16;
                let mut rng = StdRng::seed_from_u64(0xAB51_u64 ^ u64::from(bits));
                let mask = (1u64 << bits) - 1;
                for _ in 0..samples_16 {
                    let a = rng.random::<u64>() & mask;
                    let b = rng.random::<u64>() & mask;
                    let out = eval_with_faults(nl, &[a, b], &[]).expect("valid vector")[0];
                    let dev = out as i128 - (a as i128) * (b as i128);
                    contained &= value.contains(out as u128);
                    contained &= err
                        .as_ref()
                        .is_some_and(|e| e.err_lo <= dev && dev <= e.err_hi);
                }
            }
            rows.push(RosterRow {
                name: entry.name.clone(),
                bits,
                value_hi: value.hi,
                wce_ub: err.as_ref().map(axmul_absint::ErrorBound::wce_ub),
                vectors,
                contained,
            });
        }
    }
    rows
}

/// Outcome of the bound-guided 16×16 hill-climb.
struct PrunedSearch {
    evaluated: usize,
    pruned: u64,
    pruned_constraint: u64,
    pruned_dominance: u64,
    best_key: String,
    elapsed_s: f64,
}

/// Runs the 16×16 hill-climb with an error budget of 2²⁰ and dominance
/// pruning on; single worker keeps the walk reproducible.
fn pruned_search(budget: usize, restarts: usize) -> PrunedSearch {
    let mut opts = DseOptions::exhaustive_8x8();
    opts.bits = 16;
    opts.strategy = Strategy::HillClimb {
        budget,
        restarts,
        seed: 0xDAC18,
    };
    opts.workers = 1;
    opts.samples = 4096;
    opts.prune = Some(PruneOptions {
        max_wce: Some(1 << 20),
        dominance: true,
    });
    let result = run(&opts).expect("generated netlists simulate");
    let best = result
        .reports
        .iter()
        .min_by_key(|r| (r.max_error, r.luts))
        .expect("hill-climb evaluated at least the restart starts");
    PrunedSearch {
        evaluated: result.reports.len(),
        pruned: result.pruned(),
        pruned_constraint: result.pruned_constraint,
        pruned_dominance: result.pruned_dominance,
        best_key: best.key.clone(),
        elapsed_s: result.elapsed.as_secs_f64(),
    }
}

struct Measurements {
    sweep: ConfigSweep,
    roster: Vec<RosterRow>,
    search: PrunedSearch,
}

impl Measurements {
    /// The headline verdict: every check on every design passed.
    fn sound(&self) -> bool {
        let s = &self.sweep;
        s.contained == s.checked
            && s.certified == s.checked
            && s.witness_ok == s.checked
            && s.paper_exact
            && self.roster.iter().all(|r| r.contained)
    }
}

fn measure(quick: bool) -> Measurements {
    let (stride, widths, samples_16, budget, restarts) = if quick {
        (25, &[4u32, 8][..], 0, 8, 1)
    } else {
        (1, &[4u32, 8, 16][..], 2048, 24, 2)
    };
    Measurements {
        sweep: sweep_configs(stride),
        roster: sweep_roster(widths, samples_16),
        search: pruned_search(budget, restarts),
    }
}

fn render(m: &Measurements) -> String {
    let s = &m.sweep;
    let mut out = format!(
        "== Static analysis: sound bounds vs exhaustive truth ==\n\
         8x8 configuration space: {} configs checked\n\
         \x20 bracket contains exact WCE : {}/{}\n\
         \x20 certificate replays        : {}/{}\n\
         \x20 witnesses achieve bounds   : {}/{}\n\
         \x20 exact brackets (lb == ub)  : {}  (worst bracket gap {})\n\
         \x20 paper approx-Ca bounded exactly: {}\n\n",
        s.checked,
        s.contained,
        s.checked,
        s.certified,
        s.checked,
        s.witness_ok,
        s.checked,
        s.exact_brackets,
        s.max_gap,
        if s.paper_exact { "yes" } else { "NO" },
    );

    let mut t = Table::new(
        "Generic netlist bounds over the Fig. 7 roster",
        &[
            "design",
            "bits",
            "value hi",
            "static WCE ub",
            "vectors",
            "verdict",
        ],
    );
    for r in &m.roster {
        t.row_owned(vec![
            r.name.clone(),
            r.bits.to_string(),
            r.value_hi.to_string(),
            r.wce_ub.map_or_else(|| "-".to_string(), |u| u.to_string()),
            r.vectors.to_string(),
            if r.contained {
                "contained".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    out.push_str(&t.render());

    let p = &m.search;
    out.push_str(&format!(
        "\n16x16 bound-guided hill-climb (WCE budget 2^20, dominance on):\n\
         \x20 {} candidates pruned statically ({} over budget, {} dominated), \
         {} characterized exactly in {:.2} s\n\
         \x20 best surviving design: {}\n",
        p.pruned, p.pruned_constraint, p.pruned_dominance, p.evaluated, p.elapsed_s, p.best_key,
    ));
    out.push_str(&format!(
        "\nabsint verdict: {}\n",
        if m.sound() { "SOUND" } else { "UNSOUND" }
    ));
    out
}

fn render_json(m: &Measurements, quick: bool) -> String {
    let s = &m.sweep;
    let p = &m.search;
    format!(
        "{{\n  \"bench\": \"absint\",\n  \"mode\": \"{}\",\n\
         \x20 \"configs_checked\": {},\n  \"contained\": {},\n\
         \x20 \"certificates_verified\": {},\n  \"witnesses_ok\": {},\n\
         \x20 \"exact_brackets\": {},\n  \"max_bracket_gap\": {},\n\
         \x20 \"paper_exact\": {},\n\
         \x20 \"roster_designs\": {},\n  \"roster_contained\": {},\n\
         \x20 \"pruned_16x16\": {},\n  \"pruned_constraint\": {},\n\
         \x20 \"pruned_dominance\": {},\n  \"evaluated_16x16\": {},\n\
         \x20 \"sound\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        s.checked,
        s.contained,
        s.certified,
        s.witness_ok,
        s.exact_brackets,
        s.max_gap,
        s.paper_exact,
        m.roster.len(),
        m.roster.iter().filter(|r| r.contained).count(),
        p.pruned,
        p.pruned_constraint,
        p.pruned_dominance,
        p.evaluated,
        m.sound(),
    )
}

/// Full report: all 1250 configurations, the roster at 4/8/16 bits,
/// and a 2×24-step bound-guided 16×16 hill-climb.
#[must_use]
pub fn absint_report() -> String {
    render(&measure(false))
}

/// CI smoke variant: every 25th configuration plus the paper designs,
/// roster at 4/8 bits, a single 8-step 16×16 hill-climb.
#[must_use]
pub fn absint_quick() -> String {
    render(&measure(true))
}

/// The same measurements as a `BENCH_absint.json` payload.
#[must_use]
pub fn absint_json(quick: bool) -> String {
    render_json(&measure(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_sound_and_prunes() {
        let m = measure(true);
        assert!(m.sound(), "static bounds failed containment");
        assert!(m.sweep.paper_exact);
        assert!(
            m.search.pruned > 0,
            "16x16 hill-climb must hit statically-bad mutants"
        );
        let report = render(&m);
        assert!(report.contains("absint verdict: SOUND"));
        assert!(!report.contains("VIOLATED"));
    }

    #[test]
    fn json_payload_carries_the_gate_fields() {
        let json = absint_json(true);
        assert!(json.contains("\"bench\": \"absint\""));
        assert!(json.contains("\"sound\": true"));
        assert!(!json.contains("\"pruned_16x16\": 0,"));
    }
}
