//! One function per paper artifact. Every function is pure (returns a
//! report string) so the `repro` binary, tests, and Criterion benches
//! can all drive the same code.

mod ablations;
mod absint;
mod dse;
mod extensions;
mod figures;
mod lint;
mod netio;
mod nn;
mod sat;
mod serve;
mod simbench;
mod tables;

pub use ablations::{ablate_4x2_trunc, ablate_cc_depth, ablate_elem, ablate_swap};
pub use absint::{absint_json, absint_quick, absint_report};
pub use dse::{dse_scaling, dse_subset, ext_dse, ext_dse_cached, ext_dse_json};
pub use extensions::{ablate_cfree_op, ext_adders, ext_correction, ext_signed};
pub use figures::{fig1, fig10, fig12, fig7, fig8, fig9};
pub use lint::{lint_all_reports, lint_roster};
pub use netio::{netio_json, netio_quick, netio_report};
pub use nn::{nn_full, nn_quick};
pub use sat::{sat_json, sat_quick, sat_report};
pub use serve::{serve_bench, serve_bench_json, serve_bench_quick, serve_smoke};
pub use simbench::{sim_bench, sim_bench_json, sim_bench_quick};
pub use tables::{susan_area, table1, table2, table3, table4, table5, table6};

/// Runs every experiment in paper order and concatenates the reports.
#[must_use]
pub fn all() -> String {
    [
        table1(),
        fig1(),
        table2(),
        table3(),
        table4(),
        table5(),
        fig7(),
        fig8(),
        fig9(),
        fig10(),
        table6(),
        fig12(),
        susan_area(),
        ablate_cc_depth(),
        ablate_4x2_trunc(),
        ablate_elem(),
        ablate_swap(),
        ablate_cfree_op(),
        ext_correction(),
        ext_adders(),
        ext_signed(),
        ext_dse(),
        dse_scaling(),
        nn_full(),
        lint_roster(),
        absint_report(),
        netio_report(),
        sat_report(),
    ]
    .join("\n")
}
