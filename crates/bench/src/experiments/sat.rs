//! The `repro sat` experiment: SAT-proven ground truth past the sweep
//! horizon.
//!
//! Two parts:
//!
//! 1. **Exact worst-case error** — [`axmul_sat::prove_wce`] pins the
//!    true `wce` of every roster design: at 8×8 in `--quick` mode
//!    (where the proof must *equal* the exhaustive sweep, bit for
//!    bit), at 16×16 and 32×32 in full mode (where no sweep exists and
//!    the proof *is* the truth). Every proven value must sit inside
//!    the abstract interpreter's `[wce_lb, wce_ub]` bracket — the
//!    `bounds_certified` gate certifies absint's soundness at widths
//!    `repro absint` can only sample.
//! 2. **Equivalence** — export → import round trips must miter to
//!    UNSAT (the interchange loop preserves *semantics*, not just
//!    bytes), a renamed structural variant must be discharged by
//!    structural hashing alone, and a deliberately distinct pair must
//!    come back `NotEquivalent` with a counterexample that replays on
//!    the real evaluator. Together these feed the `all_equiv` gate.
//!
//! The 16×16 roster holds 14 designs: the four named architectures and
//! ten mixed configuration trees with approximate leaves throughout.
//! Fully-exact subblocks are deliberately absent — proving `wce = 0`
//! of a structurally alien exact multiplier is the classically hard
//! case of multiplier equivalence checking and exhausts any reasonable
//! conflict budget (the table in `EXPERIMENTS.md` records which Fig. 7
//! entries that excludes), while every approximate design here closes
//! in seconds.
//!
//! `sat_json` renders the same measurements as the `BENCH_sat.json`
//! artifact the CI gate greps for `"all_equiv": true` and
//! `"bounds_certified": true`.

use axmul_absint::analyze_netlist;
use axmul_baselines::{kulkarni_netlist, pp_truncated_netlist, rehman_netlist};
use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_dse::{static_bounds, Config};
use axmul_fabric::export::to_verilog;
use axmul_fabric::Netlist;
use axmul_metrics::ErrorStats;
use axmul_sat::{check_equiv, prove_wce, EquivOutcome, ProofOptions, WceOptions};

use crate::report::Table;

/// The ten 16×16 mixed configuration trees of the full-mode roster.
/// All leaves are approximate (`A` or partial-product truncation) —
/// see the module docs for why exact subblocks are excluded.
const MIX16: &[(&str, &str)] = &[
    (
        "Mix1 16x16",
        "(c (a A A A A) (a A A A A) (a A A A A) (a A A A A))",
    ),
    (
        "Mix2 16x16",
        "(a (c A A A A) (c A A A A) (c A A A A) (c A A A A))",
    ),
    (
        "Mix3 16x16",
        "(c (a T3 T3 T3 T3) (a A A A A) (a A A A A) (a A A A A))",
    ),
    (
        "Mix4 16x16",
        "(a (a T2 T2 T2 T2) (a A A A A) (c A A A A) (a A A A A))",
    ),
    (
        "Mix5 16x16",
        "(c (c A A A A) (a A A A A) (a A A A A) (a A A A A))",
    ),
    (
        "Mix6 16x16",
        "(a (a A A A A) (c A A A A) (c A A A A) (a A A A A))",
    ),
    (
        "Mix7 16x16",
        "(a (a T3 A A A) (a A T3 A A) (a A A T3 A) (a A A A T3))",
    ),
    (
        "Mix8 16x16",
        "(c (a A A A A) (c A A A A) (a T2 A A T2) (a A A A A))",
    ),
    (
        "Mix9 16x16",
        "(c (a A A A A) (a T3 A A T3) (c A A A A) (a T2 A A A))",
    ),
    (
        "Mix10 16x16",
        "(a (c T2 A A A) (a A A A A) (a A A A A) (c A A T3 A))",
    ),
];

/// One design queued for a wce proof: its absint bracket and witness
/// hint ride along.
struct WceCase {
    name: String,
    key: Option<String>,
    netlist: Netlist,
    lb: u128,
    ub: u128,
    hint: Option<(u64, u64)>,
}

/// One proven design.
struct WceRow {
    name: String,
    key: Option<String>,
    bits: u32,
    wce: u128,
    lb: u128,
    ub: u128,
    /// `lb ≤ wce ≤ ub`: the SAT proof certifies absint's bracket.
    certified: bool,
    /// At sweepable widths: the proof equals the exhaustive truth.
    exact_match: Option<bool>,
    witness: (u64, u64),
    ascent_steps: u32,
    conflicts: u64,
    elapsed_ms: f64,
}

/// A structural roster design with its bracket from the generic
/// netlist analyzer.
fn structural_case(name: &str, netlist: Netlist) -> WceCase {
    let analysis = analyze_netlist(&netlist);
    let bound = analysis
        .error
        .expect("roster multipliers carry a deviation bound");
    WceCase {
        name: name.to_string(),
        key: None,
        netlist,
        lb: bound.wce_lb,
        ub: bound.wce_ub(),
        hint: bound.witness,
    }
}

/// A configuration-tree roster design with its bracket from the tree
/// analyzer (the same bracket the DSE pruning screen consults).
fn config_case(name: &str, key: &str) -> WceCase {
    let cfg: Config = key.parse().expect("roster keys parse");
    let analysis = static_bounds(&cfg).expect("roster configs analyze");
    WceCase {
        name: name.to_string(),
        key: Some(analysis.key),
        netlist: cfg.assemble(),
        lb: analysis.bound.wce_lb,
        ub: analysis.bound.wce_ub(),
        hint: analysis.bound.witness,
    }
}

/// The sweepable quick-mode roster: the named architectures at 8×8.
fn roster8() -> Vec<WceCase> {
    vec![
        structural_case("K 8x8", kulkarni_netlist(8).expect("valid width")),
        structural_case("W 8x8", rehman_netlist(8).expect("valid width")),
        structural_case("Ca 8x8", ca_netlist(8).expect("valid width")),
        structural_case("Cc 8x8", cc_netlist(8).expect("valid width")),
        structural_case("Trunc(8,5)", pp_truncated_netlist(8, 8, 5)),
    ]
}

/// The 14-design 16×16 roster of the full mode.
fn roster16() -> Vec<WceCase> {
    let mut v = vec![
        structural_case("K 16x16", kulkarni_netlist(16).expect("valid width")),
        structural_case("W 16x16", rehman_netlist(16).expect("valid width")),
        structural_case("Ca 16x16", ca_netlist(16).expect("valid width")),
        structural_case("Cc 16x16", cc_netlist(16).expect("valid width")),
    ];
    v.extend(MIX16.iter().map(|(name, key)| config_case(name, key)));
    v
}

/// The 32×32 extension: the two named architectures whose proofs stay
/// tractable at full width, plus two all-approximate depth-3 trees.
fn roster32() -> Vec<WceCase> {
    let q1 = "(c (a A A A A) (a A A A A) (a A A A A) (a A A A A))";
    let q2 = "(a (c A A A A) (c A A A A) (c A A A A) (c A A A A))";
    let q3 = "(c (a T3 T3 T3 T3) (a A A A A) (a A A A A) (a A A A A))";
    let q4 = "(c (c A A A A) (c A A A A) (c A A A A) (c A A A A))";
    vec![
        structural_case("K 32x32", kulkarni_netlist(32).expect("valid width")),
        structural_case("Cc 32x32", cc_netlist(32).expect("valid width")),
        config_case("Mix11 32x32", &format!("(c {q1} {q2} {q3} {q4})")),
        config_case("Mix12 32x32", &format!("(c {q4} {q4} {q1} {q1})")),
    ]
}

/// Proves one case, comparing against exhaustive truth at ≤ 8 bits.
fn prove_case(case: WceCase) -> WceRow {
    let bits = case
        .netlist
        .input_buses()
        .first()
        .map_or(0, |(_, nets)| u32::try_from(nets.len()).expect("bus width"));
    let opts = WceOptions {
        hint: case.hint,
        ..WceOptions::default()
    };
    let proof = prove_wce(&case.netlist, &opts).expect("roster proofs fit the conflict budget");
    let exact_match = (bits <= 8).then(|| {
        let stats = ErrorStats::exhaustive_wide(&case.netlist).expect("two-bus roster netlist");
        u128::from(stats.max_error.unsigned_abs()) == proof.wce
    });
    WceRow {
        name: case.name,
        key: case.key,
        bits,
        wce: proof.wce,
        lb: case.lb,
        ub: case.ub,
        certified: case.lb <= proof.wce && proof.wce <= case.ub,
        exact_match,
        witness: proof.witness,
        ascent_steps: proof.ascent_steps,
        conflicts: proof.stats.conflicts,
        elapsed_ms: proof.stats.elapsed_ms,
    }
}

/// One equivalence check.
struct EquivRow {
    name: String,
    expect_equiv: bool,
    ok: bool,
    structural: bool,
    conflicts: u64,
    elapsed_ms: f64,
}

/// Export → import → miter: the round trip must preserve semantics.
fn roundtrip_check(name: &str, netlist: &Netlist) -> EquivRow {
    let imported = axmul_netio::import(&to_verilog(netlist)).expect("exported dialect re-imports");
    let report = check_equiv(netlist, &imported, &ProofOptions::default()).expect("same interface");
    EquivRow {
        name: name.to_string(),
        expect_equiv: true,
        ok: report.is_equivalent(),
        structural: report.structural,
        conflicts: report.stats.conflicts,
        elapsed_ms: report.stats.elapsed_ms,
    }
}

/// The equivalence suite: round trips, a renamed structural variant,
/// and a distinct pair whose counterexample must replay.
fn equiv_checks(full: bool) -> Vec<EquivRow> {
    let ca8 = ca_netlist(8).expect("valid width");
    let cc8 = cc_netlist(8).expect("valid width");
    let mut rows = vec![roundtrip_check("roundtrip Ca 8x8", &ca8)];
    if full {
        rows.push(roundtrip_check(
            "roundtrip K 16x16",
            &kulkarni_netlist(16).expect("valid width"),
        ));
        rows.push(roundtrip_check(
            "roundtrip Cc 16x16",
            &cc_netlist(16).expect("valid width"),
        ));
        // A renamed twin exports different bytes (the fingerprint
        // covers the module name) yet must be discharged structurally.
        let w16 = rehman_netlist(16).expect("valid width");
        let twin = Netlist::from_parts(
            "renamed_twin".to_string(),
            w16.drivers().to_vec(),
            w16.cells().to_vec(),
            w16.input_buses().to_vec(),
            w16.output_buses().to_vec(),
        );
        let report = check_equiv(&w16, &twin, &ProofOptions::default()).expect("same interface");
        rows.push(EquivRow {
            name: "renamed W 16x16 twin".to_string(),
            expect_equiv: true,
            ok: report.is_equivalent() && report.structural,
            structural: report.structural,
            conflicts: report.stats.conflicts,
            elapsed_ms: report.stats.elapsed_ms,
        });
    }
    // Negative control: two different designs must be refuted with a
    // counterexample that replays to a real mismatch.
    let report = check_equiv(&ca8, &cc8, &ProofOptions::default()).expect("same interface");
    let ok = match &report.outcome {
        EquivOutcome::Equivalent => false,
        EquivOutcome::NotEquivalent(cex) => {
            let vals: Vec<u64> = cex.inputs.iter().map(|(_, v)| *v).collect();
            ca8.eval(&vals).expect("replay") == cex.lhs_outputs
                && cc8.eval(&vals).expect("replay") == cex.rhs_outputs
                && cex.lhs_outputs != cex.rhs_outputs
        }
    };
    rows.push(EquivRow {
        name: "Ca 8x8 vs Cc 8x8 (distinct)".to_string(),
        expect_equiv: false,
        ok,
        structural: report.structural,
        conflicts: report.stats.conflicts,
        elapsed_ms: report.stats.elapsed_ms,
    });
    rows
}

struct Measurements {
    proofs: Vec<WceRow>,
    equiv: Vec<EquivRow>,
}

impl Measurements {
    /// Every equivalence check came back as expected.
    fn all_equiv(&self) -> bool {
        self.equiv.iter().all(|r| r.ok)
    }

    /// Every proven wce sits inside its absint bracket, and matches
    /// the exhaustive truth wherever one exists.
    fn bounds_certified(&self) -> bool {
        self.proofs
            .iter()
            .all(|r| r.certified && r.exact_match.unwrap_or(true))
    }

    fn total_conflicts(&self) -> u64 {
        self.proofs.iter().map(|r| r.conflicts).sum()
    }

    fn max_conflicts(&self) -> u64 {
        self.proofs.iter().map(|r| r.conflicts).max().unwrap_or(0)
    }

    fn total_solve_ms(&self) -> f64 {
        self.proofs.iter().map(|r| r.elapsed_ms).sum()
    }
}

fn measure(quick: bool) -> Measurements {
    let cases = if quick {
        roster8()
    } else {
        let mut v = roster16();
        v.extend(roster32());
        v
    };
    Measurements {
        proofs: cases.into_iter().map(prove_case).collect(),
        equiv: equiv_checks(!quick),
    }
}

fn render(m: &Measurements) -> String {
    let mut t = Table::new(
        "SAT-proven exact worst-case error vs absint brackets",
        &[
            "design",
            "bits",
            "proven wce",
            "absint [lb, ub]",
            "witness",
            "conflicts",
            "time ms",
            "verdict",
        ],
    );
    for r in &m.proofs {
        let verdict = match (r.certified, r.exact_match) {
            (true, Some(true)) => "certified+exact".to_string(),
            (true, None) => "certified".to_string(),
            _ => "REFUTED".to_string(),
        };
        t.row_owned(vec![
            r.name.clone(),
            r.bits.to_string(),
            r.wce.to_string(),
            format!("[{}, {}]", r.lb, r.ub),
            format!("({:#x}, {:#x})", r.witness.0, r.witness.1),
            r.conflicts.to_string(),
            format!("{:.1}", r.elapsed_ms),
            verdict,
        ]);
    }
    let mut out = format!(
        "== SAT proofs: exact error bounds and equivalence ==\n{}",
        t.render()
    );

    let mut e = Table::new(
        "Equivalence checks",
        &["check", "expected", "result", "conflicts", "time ms"],
    );
    for r in &m.equiv {
        e.row_owned(vec![
            r.name.clone(),
            if r.expect_equiv {
                "equivalent".to_string()
            } else {
                "not-equivalent".to_string()
            },
            match (r.ok, r.structural) {
                (true, true) => "ok (structural)".to_string(),
                (true, false) => "ok".to_string(),
                (false, _) => "FAILED".to_string(),
            },
            r.conflicts.to_string(),
            format!("{:.1}", r.elapsed_ms),
        ]);
    }
    out.push('\n');
    out.push_str(&e.render());

    out.push_str(&format!(
        "\n{} wce proofs: {} conflicts total (max {} on one design), {:.1} s solving\n\
         sat verdict: {}\n",
        m.proofs.len(),
        m.total_conflicts(),
        m.max_conflicts(),
        m.total_solve_ms() / 1000.0,
        if m.all_equiv() && m.bounds_certified() {
            "CERTIFIED"
        } else {
            "REFUTED"
        }
    ));
    out
}

fn render_json(m: &Measurements, quick: bool) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"sat\",\n  \"mode\": \"{}\",\n  \"wce_proofs\": [\n",
        if quick { "quick" } else { "full" }
    );
    for (i, r) in m.proofs.iter().enumerate() {
        let key = r
            .key
            .as_ref()
            .map_or("null".to_string(), |k| format!("\"{k}\""));
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"key\": {}, \"bits\": {}, \"wce\": {}, \
             \"wce_lb\": {}, \"wce_ub\": {}, \"certified\": {}, \
             \"witness\": [{}, {}], \"ascent_steps\": {}, \"conflicts\": {}, \
             \"elapsed_ms\": {:.1}}}{}\n",
            r.name,
            key,
            r.bits,
            r.wce,
            r.lb,
            r.ub,
            r.certified,
            r.witness.0,
            r.witness.1,
            r.ascent_steps,
            r.conflicts,
            r.elapsed_ms,
            if i + 1 < m.proofs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"equiv_checks\": [\n");
    for (i, r) in m.equiv.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"check\": \"{}\", \"expect_equiv\": {}, \"ok\": {}, \
             \"structural\": {}, \"conflicts\": {}, \"elapsed_ms\": {:.1}}}{}\n",
            r.name,
            r.expect_equiv,
            r.ok,
            r.structural,
            r.conflicts,
            r.elapsed_ms,
            if i + 1 < m.equiv.len() { "," } else { "" },
        ));
    }
    let designs_16 = m.proofs.iter().filter(|r| r.bits == 16).count();
    let designs_32 = m.proofs.iter().filter(|r| r.bits == 32).count();
    out.push_str(&format!(
        "  ],\n  \"designs_16x16\": {},\n  \"designs_32x32\": {},\n\
         \x20 \"total_conflicts\": {},\n  \"max_conflicts\": {},\n\
         \x20 \"total_solve_ms\": {:.1},\n\
         \x20 \"all_equiv\": {},\n  \"bounds_certified\": {}\n}}\n",
        designs_16,
        designs_32,
        m.total_conflicts(),
        m.max_conflicts(),
        m.total_solve_ms(),
        m.all_equiv(),
        m.bounds_certified(),
    ));
    out
}

/// Full report: the 14-design 16×16 roster plus four 32×32 designs,
/// and the five-check equivalence suite.
#[must_use]
pub fn sat_report() -> String {
    render(&measure(false))
}

/// CI smoke variant: the 8×8 roster (proofs checked against the
/// exhaustive truth) and two equivalence checks.
#[must_use]
pub fn sat_quick() -> String {
    render(&measure(true))
}

/// The same measurements as a `BENCH_sat.json` payload.
#[must_use]
pub fn sat_json(quick: bool) -> String {
    render_json(&measure(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_proofs_match_exhaustive_truth() {
        let m = measure(true);
        assert!(m.all_equiv(), "equivalence suite failed");
        assert!(m.bounds_certified(), "a proof escaped its bracket");
        for r in &m.proofs {
            assert_eq!(r.exact_match, Some(true), "{} proof != sweep", r.name);
        }
        let ca8 = m.proofs.iter().find(|r| r.name == "Ca 8x8").unwrap();
        assert_eq!(ca8.wce, 2312, "the paper's approx-Ca worst case");
        let report = render(&m);
        assert!(report.contains("sat verdict: CERTIFIED"));
        assert!(!report.contains("REFUTED"));
        assert!(!report.contains("FAILED"));
    }

    #[test]
    fn json_payload_carries_the_gate_fields() {
        let json = sat_json(true);
        assert!(json.contains("\"bench\": \"sat\""));
        assert!(json.contains("\"all_equiv\": true"));
        assert!(json.contains("\"bounds_certified\": true"));
        assert!(json.contains("\"wce\": 2312"));
    }

    #[test]
    fn full_rosters_have_the_required_sizes() {
        let r16 = roster16();
        assert_eq!(r16.len(), 14);
        let r32 = roster32();
        assert!(r32.len() >= 3);
        // Roster keys are distinct designs (no duplicated mixes).
        let keys: Vec<&String> = r16.iter().filter_map(|c| c.key.as_ref()).collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(keys.len(), deduped.len());
    }
}
