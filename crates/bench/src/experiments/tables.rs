//! Reproductions of the paper's tables.

use axmul_apps::casestudy;
use axmul_baselines::{IpOpt, Kulkarni, RehmanW, VivadoIp};
use axmul_core::behavioral::{Approx4x4, Ca, Cc};
use axmul_core::structural::{ca_netlist, cc_netlist, verify_table3};
use axmul_core::{Exact, Multiplier, Swapped};
use axmul_fabric::cost::CostModel;
use axmul_fabric::timing::{analyze, DelayModel};
use axmul_metrics::ErrorStats;
use axmul_susan::{accelerator_area, susan_smooth, synthetic_test_image, SusanParams};

use crate::report::{f, pct, Table};
use crate::roster::table5_roster;

/// **Table 1** — logic vs DSP implementations of the Reed-Solomon and
/// JPEG encoders.
#[must_use]
pub fn table1() -> String {
    let cost = CostModel::virtex7();
    let delay = DelayModel::virtex7();
    let mut t = Table::new(
        "Table 1: logic vs DSP implementations (model)",
        &[
            "design",
            "DSP: delay[ns]",
            "DSP: LUTs",
            "DSP: DSPs",
            "LUT: delay[ns]",
            "LUT: LUTs",
            "LUT: DSPs",
        ],
    );
    for (name, dsp, lut) in casestudy::table1(&cost, &delay) {
        t.row_owned(vec![
            name,
            f(dsp.critical_path_ns, 3),
            dsp.luts.to_string(),
            dsp.dsp_blocks.to_string(),
            f(lut.critical_path_ns, 3),
            lut.luts.to_string(),
            lut.dsp_blocks.to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "paper: RS 5.115ns/2826/22 vs 4.358ns/2867/0; \
         JPEG 8.637ns/71362/631 vs 9.732ns/14780/0\n",
    );
    s
}

/// **Table 2** — the six erroneous input pairs of the proposed 4×4.
#[must_use]
pub fn table2() -> String {
    let mut t = Table::new(
        "Table 2: 4x4 multiplier error values",
        &["multiplier", "multiplicand", "actual", "computed", "diff"],
    );
    let mut cases = Approx4x4::error_cases();
    cases.sort_by_key(|c| (c.multiplier, c.multiplicand));
    for c in cases {
        t.row_owned(vec![
            c.multiplier.to_string(),
            c.multiplicand.to_string(),
            c.actual.to_string(),
            c.computed.to_string(),
            c.difference.to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str("paper: exactly these six cases, each with difference 8\n");
    s
}

/// **Table 3** — the published INIT values, re-derived from the logic
/// equations and verified against the behavioral model.
#[must_use]
pub fn table3() -> String {
    let mut t = Table::new(
        "Table 3: LUT INIT values (published vs re-derived)",
        &["LUT", "published INIT", "reachable idxs", "matches"],
    );
    for c in verify_table3() {
        t.row_owned(vec![
            c.name.to_string(),
            format!("{:016X}", c.published.raw()),
            c.reachable.to_string(),
            if c.matches { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "the 12-LUT netlist built from these INITs equals the behavioral \
         model on all 256 operand pairs (asserted in tests)\n",
    );
    s
}

/// **Table 4** — area and latency of the proposed multipliers.
#[must_use]
pub fn table4() -> String {
    let model = DelayModel::virtex7();
    let paper = [
        (4u32, 12, 5.846, 12, 5.846),
        (8, 57, 7.746, 56, 6.946),
        (16, 245, 10.765, 240, 7.613),
    ];
    let mut t = Table::new(
        "Table 4: area and latency of proposed multipliers",
        &[
            "size",
            "Ca LUTs",
            "Ca ns (model)",
            "Ca ns (paper)",
            "Cc LUTs",
            "Cc ns (model)",
            "Cc ns (paper)",
        ],
    );
    for (bits, ca_luts, ca_ns, cc_luts, cc_ns) in paper {
        let ca = ca_netlist(bits).expect("valid width");
        let cc = cc_netlist(bits).expect("valid width");
        assert_eq!(ca.lut_count(), ca_luts, "Ca LUT count mismatch");
        assert_eq!(cc.lut_count(), cc_luts, "Cc LUT count mismatch");
        t.row_owned(vec![
            format!("{bits}x{bits}"),
            ca.lut_count().to_string(),
            f(analyze(&ca, &model).critical_path_ns, 3),
            f(ca_ns, 3),
            cc.lut_count().to_string(),
            f(analyze(&cc, &model).critical_path_ns, 3),
            f(cc_ns, 3),
        ]);
    }
    let mut s = t.render();
    s.push_str("LUT counts match the paper exactly; delays within 3.6%\n");
    s
}

/// **Table 5** — error analysis of the 8×8 approximate multipliers.
#[must_use]
pub fn table5() -> String {
    let mut t = Table::new(
        "Table 5: error analysis of 8x8 approximate multipliers",
        &["metric", "Ca", "Cc", "W[19]", "K[6]", "Mult(8,4)"],
    );
    let stats: Vec<ErrorStats> = table5_roster().iter().map(ErrorStats::exhaustive).collect();
    let col =
        |sel: &dyn Fn(&ErrorStats) -> String| -> Vec<String> { stats.iter().map(sel).collect() };
    let mut push = |metric: &str, vals: Vec<String>| {
        let mut row = vec![metric.to_string()];
        row.extend(vals);
        t.row_owned(row);
    };
    push("max error magnitude", col(&|s| s.max_error.to_string()));
    push("average error", col(&|s| f(s.avg_error, 4)));
    push(
        "average relative error",
        col(&|s| f(s.avg_relative_error, 6)),
    );
    push(
        "error occurrences",
        col(&|s| s.error_occurrences.to_string()),
    );
    push(
        "max error occurrences",
        col(&|s| s.max_error_occurrences.to_string()),
    );
    let mut s = t.render();
    s.push_str(
        "paper: max 2312/8288/7225/14450/15; avg 54.1875/1592.265/1354.687/903.125/6.5;\n\
         ARE .002917/.129390/.1438777/.032549/.0037; occ 5482/52731/53375/30625/53248;\n\
         max-occ 14/1/31/1/2048 — all columns reproduce exactly\n",
    );
    s
}

/// **Table 6 / Fig. 11** — SUSAN accelerator PSNR per multiplier,
/// including the operand-swapped variants.
#[must_use]
pub fn table6() -> String {
    let img = synthetic_test_image(128, 128, 11);
    let params = SusanParams::default();
    let golden = susan_smooth(&img, &params, &Exact::new(8, 8));
    let psnr_of = |m: &dyn Multiplier| -> f64 { golden.psnr(&susan_smooth(&img, &params, &m)) };

    let ca = Ca::new(8).expect("valid");
    let cc = Cc::new(8).expect("valid");
    let entries: Vec<(String, f64)> = vec![
        ("Accurate".to_string(), f64::INFINITY),
        ("Ca".to_string(), psnr_of(&ca)),
        ("Cc".to_string(), psnr_of(&cc)),
        (
            "W[19]".to_string(),
            psnr_of(&RehmanW::new(8).expect("valid")),
        ),
        (
            "K[6]".to_string(),
            psnr_of(&Kulkarni::new(8).expect("valid")),
        ),
        ("Cas (swapped)".to_string(), psnr_of(&Swapped::new(ca))),
        ("Ccs (swapped)".to_string(), psnr_of(&Swapped::new(cc))),
    ];
    let mut t = Table::new(
        "Table 6: SUSAN accelerator PSNR (synthetic image)",
        &["multiplier", "PSNR [dB]"],
    );
    for (name, p) in entries {
        let shown = if p.is_infinite() {
            "inf".to_string()
        } else {
            f(p, 4)
        };
        t.row_owned(vec![name, shown]);
    }
    let mut s = t.render();
    s.push_str(
        "paper (photo input): inf / 33.72 / 25.60 / 47.49 / 17.94 / 59.12 / 27.37;\n\
         orderings preserved: swapped > unswapped, proposed > K, Ca > Cc\n",
    );
    s
}

/// **§5.2** — area gain of the whole SUSAN accelerator when the
/// accurate multiplier is replaced by Ca or Cc.
#[must_use]
pub fn susan_area() -> String {
    let baseline_mult = VivadoIp::new(8, IpOpt::Speed).netlist().lut_count();
    let base = accelerator_area(baseline_mult);
    let with_ca = accelerator_area(ca_netlist(8).expect("valid").lut_count());
    let with_cc = accelerator_area(cc_netlist(8).expect("valid").lut_count());
    let mut t = Table::new(
        "SUSAN accelerator area (LUTs)",
        &["configuration", "total LUTs", "gain"],
    );
    t.row_owned(vec![
        "accurate (IP) multiplier".to_string(),
        base.total().to_string(),
        pct(0.0),
    ]);
    t.row_owned(vec![
        "Ca multipliers".to_string(),
        with_ca.total().to_string(),
        pct(with_ca.gain_over(&base)),
    ]);
    t.row_owned(vec![
        "Cc multipliers".to_string(),
        with_cc.total().to_string(),
        pct(with_cc.gain_over(&base)),
    ]);
    let mut s = t.render();
    s.push_str("paper: 17% (Ca) and 17.2% (Cc) accelerator-level area gains\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_report_contains_all_cases() {
        let s = table2();
        let rows: Vec<Vec<&str>> = s
            .lines()
            .map(|l| l.split_whitespace().collect::<Vec<&str>>())
            .filter(|c| c.len() == 5 && c[4] == "8")
            .collect();
        assert_eq!(rows.len(), 6, "six error rows:\n{s}");
        assert!(rows.contains(&vec!["5", "15", "75", "67", "8"]));
        assert!(rows.contains(&vec!["13", "13", "169", "161", "8"]));
    }

    #[test]
    fn table3_all_match() {
        let s = table3();
        assert!(!s.contains("NO"), "an INIT failed verification:\n{s}");
        assert_eq!(s.matches("yes").count(), 12);
    }

    #[test]
    fn table4_asserts_and_renders() {
        let s = table4();
        assert!(s.contains("245"));
        assert!(s.contains("10.765"));
    }

    #[test]
    fn table5_has_published_numbers() {
        let s = table5();
        for v in ["2312", "8288", "7225", "14450", "30625", "53375"] {
            assert!(s.contains(v), "missing {v}:\n{s}");
        }
    }

    #[test]
    fn table6_orderings() {
        let s = table6();
        // Parse the PSNRs back out to check the headline orderings.
        let get = |name: &str| -> f64 {
            s.lines()
                .find(|l| l.trim_start().starts_with(name))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("row {name} in:\n{s}"))
        };
        let (ca, cc, k) = (get("Ca"), get("Cc"), get("K[6]"));
        let (cas, ccs) = (get("Cas"), get("Ccs"));
        assert!(ca > k, "Ca {ca} vs K {k}");
        assert!(ca > cc, "Ca {ca} vs Cc {cc}");
        assert!(cas > ca, "Cas {cas} vs Ca {ca}");
        assert!(ccs >= cc, "Ccs {ccs} vs Cc {cc}");
    }

    #[test]
    fn table1_shape() {
        let s = table1();
        assert!(s.contains("Reed-Solomon"));
        assert!(s.contains("JPEG"));
    }

    #[test]
    fn susan_area_near_17_percent() {
        let s = susan_area();
        assert!(s.contains("+1"), "gains should be double digit:\n{s}");
    }
}
