//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment>... [--quick]
//! repro sim-bench [--quick] [--json]
//! repro serve-bench [--quick] [--json]
//! repro absint [--quick] [--json]
//! repro netio [--quick] [--json]
//! repro sat [--quick] [--json]
//! repro ext-dse [--json]
//! repro ext-dse --cache-dir DIR
//! repro all
//! repro list
//! ```
//!
//! `--quick` switches experiments that have a smoke variant (currently
//! `nn`, `sim-bench`, `serve-bench`, `absint`, `netio` and `sat`) to
//! their reduced CI-friendly form. `--json` additionally writes
//! `sim-bench` results to `BENCH_sim.json`, `serve-bench` results to
//! `BENCH_serve.json`, `absint` results to `BENCH_absint.json`,
//! `netio` results to `BENCH_netio.json`, `sat` results to
//! `BENCH_sat.json` and `ext-dse` results (with
//! the error/energy/STA wall-clock split) to `BENCH_extdse.json` in
//! the working directory. `--cache-dir DIR` routes `ext-dse` through
//! the persistent characterization store rooted at `DIR`, so a second
//! run warm-starts with zero recharacterizations.

use std::process::ExitCode;

use axmul_bench::experiments;

type Experiment = (&'static str, fn() -> String, &'static str);

const EXPERIMENTS: &[Experiment] = &[
    (
        "table1",
        experiments::table1,
        "RS/JPEG encoders, DSP vs LUT",
    ),
    ("fig1", experiments::fig1, "ASIC vs FPGA gains of W and K"),
    (
        "table2",
        experiments::table2,
        "error cases of the proposed 4x4",
    ),
    (
        "table3",
        experiments::table3,
        "published INIT values, verified",
    ),
    ("table4", experiments::table4, "area & latency of Ca/Cc"),
    ("table5", experiments::table5, "8x8 error analysis"),
    ("fig7", experiments::fig7, "area/latency/EDP gains"),
    ("fig8", experiments::fig8, "bit accuracy + error PMFs"),
    ("fig9", experiments::fig9, "Pareto: error vs area"),
    ("fig10", experiments::fig10, "Pareto: error vs latency"),
    ("table6", experiments::table6, "SUSAN PSNR (incl. swapped)"),
    ("fig12", experiments::fig12, "SUSAN operand histogram"),
    (
        "susan-area",
        experiments::susan_area,
        "accelerator-level area gain",
    ),
    (
        "ablate-cc-depth",
        experiments::ablate_cc_depth,
        "carry-free depth",
    ),
    (
        "ablate-4x2-trunc",
        experiments::ablate_4x2_trunc,
        "truncated bit choice",
    ),
    (
        "ablate-elem",
        experiments::ablate_elem,
        "elementary block choice",
    ),
    (
        "ablate-swap",
        experiments::ablate_swap,
        "operand orientation",
    ),
    (
        "ablate-cfree-op",
        experiments::ablate_cfree_op,
        "XOR vs OR columns",
    ),
    (
        "ext-correction",
        experiments::ext_correction,
        "switchable error correction",
    ),
    (
        "ext-adders",
        experiments::ext_adders,
        "approximate adder substrate",
    ),
    ("ext-signed", experiments::ext_signed, "signed operation"),
    (
        "ext-dse",
        experiments::ext_dse,
        "8x8 design-space exploration",
    ),
    (
        "dse-scaling",
        experiments::dse_scaling,
        "DSE worker-pool speedup",
    ),
    (
        "nn",
        experiments::nn_full,
        "int8 NN accuracy on approx MACs",
    ),
    (
        "lint",
        experiments::lint_roster,
        "static-analysis gate over the roster",
    ),
    (
        "sim-bench",
        experiments::sim_bench,
        "compiled-simulator throughput vs legacy",
    ),
    (
        "serve-bench",
        experiments::serve_bench,
        "daemon load test, cold vs warm store",
    ),
    (
        "serve-smoke",
        experiments::serve_smoke,
        "daemon round-trip on a Unix socket",
    ),
    (
        "absint",
        experiments::absint_report,
        "sound static bounds vs exhaustive truth",
    ),
    (
        "netio",
        experiments::netio_report,
        "interchange byte fixpoint + import throughput",
    ),
    (
        "sat",
        experiments::sat_report,
        "SAT-proven exact wce + equivalence gate",
    ),
];

/// Smoke variants selected by `--quick`.
type Smoke = (&'static str, fn() -> String);
const QUICK: &[Smoke] = &[
    ("nn", experiments::nn_quick),
    ("sim-bench", experiments::sim_bench_quick),
    ("serve-bench", experiments::serve_bench_quick),
    ("absint", experiments::absint_quick),
    ("netio", experiments::netio_quick),
    ("sat", experiments::sat_quick),
];

fn usage() {
    eprintln!("usage: repro <experiment>... [--quick] [--json] [--cache-dir DIR] | all | list");
    eprintln!("experiments:");
    for (name, _, what) in EXPERIMENTS {
        eprintln!("  {name:<18} {what}");
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--quick" && a != "--json");
    let cache_dir = match args.iter().position(|a| a == "--cache-dir") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--cache-dir needs a directory argument");
                return ExitCode::FAILURE;
            }
            let dir = std::path::PathBuf::from(args.remove(i + 1));
            args.remove(i);
            Some(dir)
        }
        None => None,
    };
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    for arg in &args {
        match arg.as_str() {
            "all" => print!("{}", experiments::all()),
            "list" => usage(),
            "sim-bench" if json => {
                let payload = experiments::sim_bench_json(quick);
                if let Err(e) = std::fs::write("BENCH_sim.json", &payload) {
                    eprintln!("cannot write BENCH_sim.json: {e}");
                    return ExitCode::FAILURE;
                }
                print!("{payload}");
                eprintln!("wrote BENCH_sim.json");
            }
            "serve-bench" if json => {
                let payload = experiments::serve_bench_json(quick);
                if let Err(e) = std::fs::write("BENCH_serve.json", &payload) {
                    eprintln!("cannot write BENCH_serve.json: {e}");
                    return ExitCode::FAILURE;
                }
                print!("{payload}");
                eprintln!("wrote BENCH_serve.json");
            }
            "absint" if json => {
                let payload = experiments::absint_json(quick);
                if let Err(e) = std::fs::write("BENCH_absint.json", &payload) {
                    eprintln!("cannot write BENCH_absint.json: {e}");
                    return ExitCode::FAILURE;
                }
                print!("{payload}");
                eprintln!("wrote BENCH_absint.json");
            }
            "netio" if json => {
                let payload = experiments::netio_json(quick);
                if let Err(e) = std::fs::write("BENCH_netio.json", &payload) {
                    eprintln!("cannot write BENCH_netio.json: {e}");
                    return ExitCode::FAILURE;
                }
                print!("{payload}");
                eprintln!("wrote BENCH_netio.json");
            }
            "sat" if json => {
                let payload = experiments::sat_json(quick);
                if let Err(e) = std::fs::write("BENCH_sat.json", &payload) {
                    eprintln!("cannot write BENCH_sat.json: {e}");
                    return ExitCode::FAILURE;
                }
                print!("{payload}");
                eprintln!("wrote BENCH_sat.json");
            }
            "ext-dse" if json => {
                let payload = experiments::ext_dse_json();
                if let Err(e) = std::fs::write("BENCH_extdse.json", &payload) {
                    eprintln!("cannot write BENCH_extdse.json: {e}");
                    return ExitCode::FAILURE;
                }
                print!("{payload}");
                eprintln!("wrote BENCH_extdse.json");
            }
            "ext-dse" if cache_dir.is_some() => {
                let dir = cache_dir.as_deref().expect("checked above");
                print!("{}", experiments::ext_dse_cached(dir));
            }
            name => {
                let smoke = quick
                    .then(|| QUICK.iter().find(|(n, _)| *n == name))
                    .flatten();
                match smoke {
                    Some((_, run)) => print!("{}", run()),
                    None => match EXPERIMENTS.iter().find(|(n, _, _)| *n == name) {
                        Some((_, run, _)) => print!("{}", run()),
                        None => {
                            eprintln!("unknown experiment `{name}`");
                            usage();
                            return ExitCode::FAILURE;
                        }
                    },
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}
