//! # axmul-bench
//!
//! The experiment harness that regenerates **every table and figure**
//! of the DAC'18 paper. Each experiment is a library function returning
//! a formatted report (so it is unit-testable and reusable from both
//! the `repro` binary and the Criterion benches):
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (RS/JPEG, DSP vs LUT) | [`experiments::table1`] |
//! | Fig. 1 (ASIC vs FPGA gains of W, K) | [`experiments::fig1`] |
//! | Table 2 (4×4 error cases) | [`experiments::table2`] |
//! | Table 3 (INIT values, verified) | [`experiments::table3`] |
//! | Table 4 (area & latency of Ca/Cc) | [`experiments::table4`] |
//! | Table 5 (8×8 error analysis) | [`experiments::table5`] |
//! | Fig. 7 (area/latency/EDP gains) | [`experiments::fig7`] |
//! | Fig. 8 (bit accuracy + error PMFs) | [`experiments::fig8`] |
//! | Fig. 9 (Pareto: error vs area) | [`experiments::fig9`] |
//! | Fig. 10 (Pareto: error vs latency) | [`experiments::fig10`] |
//! | Table 6 / Fig. 11 (SUSAN PSNR) | [`experiments::table6`] |
//! | Fig. 12 (operand histogram) | [`experiments::fig12`] |
//! | §5.2 (accelerator area gain) | [`experiments::susan_area`] |
//!
//! Ablations of the design choices called out in `DESIGN.md` live in
//! [`experiments`] as the `ablate_*` functions.
//!
//! Run everything with `cargo run -p axmul-bench --bin repro --release -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod roster;
