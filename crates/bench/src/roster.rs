//! Design rosters and netlist characterization shared by the
//! experiments: one place that knows how to turn an architecture name
//! into (behavioral model, structural netlist, area, delay, energy).

use axmul_baselines::{
    kulkarni_netlist, pp_truncated_netlist, rehman_netlist, IpOpt, Kulkarni, RehmanW, VivadoIp,
};
use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_fabric::power::{measure, uniform_stimulus, EnergyModel};
use axmul_fabric::timing::DelayModel;
use axmul_fabric::Netlist;

/// Full physical characterization of one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Architecture name.
    pub name: String,
    /// LUT count (the paper's area unit).
    pub luts: usize,
    /// STA critical path under [`DelayModel::virtex7`], in ns.
    pub latency_ns: f64,
    /// Average toggle energy per operation (relative units).
    pub energy: f64,
    /// Energy-delay product (relative units × ns).
    pub edp: f64,
}

/// Characterizes a netlist: area from the structure, latency from STA,
/// energy from 2 000 uniform-random stimulus transitions.
///
/// # Panics
///
/// Panics if simulation fails (indicates a malformed netlist, which the
/// builders prevent).
#[must_use]
pub fn characterize(name: &str, netlist: &Netlist) -> Characterization {
    let delay = DelayModel::virtex7();
    let energy = EnergyModel::virtex7();
    let stim = uniform_stimulus(netlist, 2000, 0xDAC18u64);
    let report = measure(netlist, &energy, &delay, &stim).expect("netlist simulates");
    Characterization {
        name: name.to_string(),
        luts: netlist.lut_count(),
        latency_ns: report.critical_path_ns,
        energy: report.energy_per_op,
        edp: report.edp,
    }
}

/// A named structural design at a given operand width.
#[derive(Debug)]
pub struct RosterEntry {
    /// Display name (matches the behavioral `Multiplier::name` style).
    pub name: String,
    /// The netlist.
    pub netlist: Netlist,
}

/// The Fig. 7 roster at one operand width: the proposed designs, the
/// state-of-the-art baselines, truncated, and both IP variants.
///
/// # Panics
///
/// Panics unless `bits` ∈ {4, 8, 16}.
#[must_use]
pub fn fig7_roster(bits: u32) -> Vec<RosterEntry> {
    assert!(matches!(bits, 4 | 8 | 16), "Fig. 7 covers 4/8/16 bits");
    let mut v = vec![
        RosterEntry {
            name: format!("K {bits}x{bits}"),
            netlist: kulkarni_netlist(bits).expect("valid width"),
        },
        RosterEntry {
            name: format!("W {bits}x{bits}"),
            netlist: rehman_netlist(bits).expect("valid width"),
        },
        RosterEntry {
            name: format!("Ca {bits}x{bits}"),
            netlist: ca_netlist(bits).expect("valid width"),
        },
        RosterEntry {
            name: format!("Cc {bits}x{bits}"),
            netlist: cc_netlist(bits).expect("valid width"),
        },
        RosterEntry {
            name: format!("Trunc({bits},{})", bits / 2 + 1),
            netlist: pp_truncated_netlist(bits, bits, bits / 2 + 1),
        },
        RosterEntry {
            name: format!("VivadoIP-Area {bits}x{bits}"),
            netlist: VivadoIp::new(bits, IpOpt::Area).netlist(),
        },
    ];
    v.push(RosterEntry {
        name: format!("VivadoIP-Speed {bits}x{bits}"),
        netlist: VivadoIp::new(bits, IpOpt::Speed).netlist(),
    });
    v
}

/// The behavioral 8×8 multipliers of Table 5 (excluding the exact
/// reference), boxed for uniform handling.
#[must_use]
pub fn table5_roster() -> Vec<Box<dyn axmul_core::Multiplier>> {
    use axmul_baselines::Truncated;
    use axmul_core::behavioral::{Ca, Cc};
    vec![
        Box::new(Ca::new(8).expect("8 is valid")),
        Box::new(Cc::new(8).expect("8 is valid")),
        Box::new(RehmanW::new(8).expect("8 is valid")),
        Box::new(Kulkarni::new(8).expect("8 is valid")),
        Box::new(Truncated::new(8, 4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterize_ca8() {
        let c = characterize("Ca 8x8", &ca_netlist(8).unwrap());
        assert_eq!(c.luts, 57);
        assert!(c.latency_ns > 7.0 && c.latency_ns < 9.0);
        assert!(c.energy > 0.0);
        assert!((c.edp - c.energy * c.latency_ns).abs() < 1e-9);
    }

    #[test]
    fn fig7_roster_is_complete() {
        let r = fig7_roster(8);
        assert_eq!(r.len(), 7);
        assert!(r.iter().any(|e| e.name.starts_with("Ca")));
        assert!(r.iter().any(|e| e.name.contains("VivadoIP-Speed")));
    }

    #[test]
    fn table5_roster_names() {
        let names: Vec<String> = table5_roster()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(names, ["Ca 8x8", "Cc 8x8", "W 8x8", "K 8x8", "Mult(8,4)"]);
    }
}
