//! Criterion benches, one group per paper artifact: each group runs
//! the computation that regenerates that table or figure, so
//! `cargo bench` both re-measures the library's performance and
//! re-derives every experimental result.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use axmul_baselines::{Kulkarni, RehmanW};
use axmul_bench::roster::{characterize, fig7_roster, table5_roster};
use axmul_core::behavioral::{approx_4x4, Ca, Cc};
use axmul_core::structural::{approx_4x4_netlist, ca_netlist, verify_table3};
use axmul_core::{Exact, Multiplier};
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::sim::{for_each_operand_pair, WideSim};
use axmul_fabric::timing::{analyze, DelayModel};
use axmul_metrics::{bit_accuracy, pareto_front, DesignPoint, ErrorPmf, ErrorStats};
use axmul_susan::{operand_histogram, susan_smooth, synthetic_test_image, Recording, SusanParams};

fn bench_table2_elementary(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_elementary_4x4");
    g.bench_function("behavioral_exhaustive_256", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for a in 0..16u64 {
                for bb in 0..16u64 {
                    acc = acc.wrapping_add(approx_4x4(black_box(a), black_box(bb)));
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_table3_netlist(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_init_verification");
    g.bench_function("verify_published_inits", |b| b.iter(verify_table3));
    let nl = approx_4x4_netlist();
    g.bench_function("netlist_exhaustive_sim_256", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for_each_operand_pair(&nl, |_, _, out| acc ^= out[0]).expect("simulates");
            acc
        })
    });
    g.finish();
}

fn bench_table4_structural(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_build_and_sta");
    let model = DelayModel::virtex7();
    for bits in [4u32, 8, 16] {
        g.bench_function(format!("ca_{bits}x{bits}"), |b| {
            b.iter(|| {
                let nl = ca_netlist(black_box(bits)).expect("valid");
                analyze(&nl, &model).critical_path_ns
            })
        });
    }
    g.finish();
}

fn bench_table5_error_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_exhaustive_stats");
    g.sample_size(10);
    for m in table5_roster() {
        g.bench_function(m.name().replace(' ', "_"), |b| {
            b.iter(|| ErrorStats::exhaustive(&m))
        });
    }
    g.finish();
}

fn bench_fig7_characterization(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_characterize_8x8");
    g.sample_size(10);
    let roster = fig7_roster(8);
    for entry in &roster {
        g.bench_function(entry.name.replace(' ', "_"), |b| {
            b.iter(|| characterize(&entry.name, &entry.netlist))
        });
    }
    g.finish();
}

fn bench_fig8_profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_bit_profiles");
    g.sample_size(10);
    let ca = Ca::new(8).expect("valid");
    g.bench_function("bit_accuracy_ca8", |b| b.iter(|| bit_accuracy(&ca)));
    g.bench_function("error_pmf_ca8", |b| b.iter(|| ErrorPmf::exhaustive(&ca)));
    g.finish();
}

fn bench_fig9_pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_pareto_front");
    // Front extraction over a synthetic 1000-point cloud.
    let points: Vec<DesignPoint> = (0..1000)
        .map(|i| {
            let x = f64::from(i);
            DesignPoint::new(format!("p{i}"), (x * 7.3) % 13.0, (x * 3.1) % 11.0)
        })
        .collect();
    g.bench_function("front_1000_points", |b| b.iter(|| pareto_front(&points)));
    g.finish();
}

fn bench_table6_susan(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_susan_smoothing");
    g.sample_size(10);
    let img = synthetic_test_image(64, 64, 11);
    let params = SusanParams::default();
    for m in [
        Box::new(Exact::new(8, 8)) as Box<dyn Multiplier>,
        Box::new(Ca::new(8).expect("valid")),
        Box::new(Cc::new(8).expect("valid")),
        Box::new(Kulkarni::new(8).expect("valid")),
        Box::new(RehmanW::new(8).expect("valid")),
    ] {
        g.bench_function(
            format!("smooth_64x64_{}", m.name().replace(' ', "_")),
            |b| b.iter(|| susan_smooth(&img, &params, &m)),
        );
    }
    g.finish();
}

fn bench_fig12_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_operand_histogram");
    g.sample_size(10);
    let img = synthetic_test_image(48, 48, 9);
    let params = SusanParams::default();
    g.bench_function("trace_and_bin", |b| {
        b.iter(|| {
            let rec = Recording::new(Exact::new(8, 8));
            let _ = susan_smooth(&img, &params, &rec);
            operand_histogram(&rec.into_trace(), 16)
        })
    });
    g.finish();
}

fn bench_table1_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_applications");
    let enc = axmul_apps::reed_solomon::RsEncoder::rs_255_239();
    let msg: Vec<u8> = (0..239).map(|i| i as u8).collect();
    g.bench_function("rs_encode_255_239", |b| b.iter(|| enc.encode(&msg)));
    let pixels: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
    g.bench_function("jpeg_encode_64x64_q75", |b| {
        b.iter(|| axmul_apps::jpeg::encode_gray(64, 64, &pixels, 75).expect("valid input"))
    });
    g.finish();
}

fn bench_multiplier_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("multiplier_throughput");
    let designs: Vec<Box<dyn Multiplier>> = vec![
        Box::new(Exact::new(8, 8)),
        Box::new(Ca::new(8).expect("valid")),
        Box::new(Cc::new(8).expect("valid")),
        Box::new(Kulkarni::new(8).expect("valid")),
        Box::new(RehmanW::new(8).expect("valid")),
        Box::new(Ca::new(16).expect("valid")),
    ];
    for m in designs {
        g.bench_function(format!("mul_{}", m.name().replace(' ', "_")), |b| {
            let mut x = 17u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.multiply(black_box(x & 0xFFFF), black_box(x >> 16 & 0xFFFF))
            })
        });
    }
    g.finish();
}

fn bench_netlist_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist_simulation");
    let nl = ca_netlist(8).expect("valid");
    let a_vals: Vec<u64> = (0..64).map(|i| i * 3 % 256).collect();
    let b_vals: Vec<u64> = (0..64).map(|i| i * 7 % 256).collect();
    g.bench_function("wide_sim_64_lanes_ca8", |b| {
        b.iter_batched(
            || WideSim::new(&nl),
            |mut sim| sim.eval(&[&a_vals, &b_vals]).expect("simulates"),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    // Exhaustive 65 536-pair sweep per architecture: pairs/sec of the
    // compiled bit-sliced path (compile included, as in exhaustive_wide).
    for entry in fig7_roster(8) {
        g.bench_function(
            format!("exhaustive_sweep_{}", entry.name.replace(' ', "_")),
            |b| {
                b.iter(|| {
                    let prog = CompiledNetlist::compile(&entry.netlist);
                    let mut acc = 0u64;
                    prog.for_each_operand_pair_in(0..1 << 16, |_, _, out| {
                        acc = acc.wrapping_add(out[0]);
                    })
                    .expect("two-bus netlist");
                    acc
                })
            },
        );
    }
    // The full characterization record (stats accumulation included).
    let nl = ca_netlist(8).expect("valid");
    g.bench_function("error_stats_exhaustive_wide_ca8", |b| {
        b.iter(|| ErrorStats::exhaustive_wide(black_box(&nl)).expect("two-bus netlist"))
    });
    g.finish();
}

fn bench_dse(c: &mut Criterion) {
    let mut g = c.benchmark_group("design_space_exploration");
    g.sample_size(10);
    // End-to-end subset exploration: characterization cache, worker
    // pool and Pareto annotation included.
    g.bench_function("homogeneous_subset_10_configs", |b| {
        b.iter(axmul_bench::experiments::dse_subset)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_elementary,
    bench_table3_netlist,
    bench_table4_structural,
    bench_table5_error_analysis,
    bench_fig7_characterization,
    bench_fig8_profiles,
    bench_fig9_pareto,
    bench_table6_susan,
    bench_fig12_trace,
    bench_table1_apps,
    bench_multiplier_throughput,
    bench_netlist_sim,
    bench_sim_throughput,
    bench_dse
);
criterion_main!(benches);
