//! `axmul` — generate, characterize and exercise the approximate
//! multiplier library from the command line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match axmul_cli::run(&args) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("axmul: {e}");
            ExitCode::FAILURE
        }
    }
}
